//! Minimal foreign sequences in the wild (§4.1 / experiment NAT1):
//! generate sendmail-like system-call traces, write/parse them in the
//! UNM on-disk format, and census the MFSs one run contains relative to
//! another.
//!
//! ```text
//! cargo run --release --example trace_census
//! ```

use detdiv::trace::{generate_sendmail_like, mfs_census, TraceGenConfig, TraceSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Monday's traffic: the training corpus.
    let monday = generate_sendmail_like(&TraceGenConfig {
        processes: 8,
        events_per_process: 4000,
        seed: 100,
    })?;
    // Tuesday's traffic: behaviourally overlapping, not identical.
    let tuesday = generate_sendmail_like(&TraceGenConfig {
        processes: 4,
        events_per_process: 3000,
        seed: 200,
    })?;

    // Round-trip Tuesday through the UNM on-disk format, as a user
    // with real trace files would.
    let on_disk = tuesday.to_unm_string();
    println!(
        "tuesday.trace: {} processes, {} events, first lines:",
        tuesday.process_count(),
        tuesday.total_events()
    );
    for line in on_disk.lines().take(5) {
        println!("  {line}");
    }
    let parsed = TraceSet::parse(&on_disk)?;
    assert_eq!(parsed, tuesday);

    // Census: how many minimal foreign sequences (relative to Monday)
    // does Tuesday contain, per length?
    let training = monday.concatenated();
    let monitored = parsed.concatenated();
    let report = mfs_census(&training, &monitored, 8)?;
    println!(
        "\ntrained on {} events ({} processes); scanning {} events:",
        training.len(),
        monday.process_count(),
        monitored.len()
    );
    println!("{report}");
    println!(
        "\nAs the paper observes, natural(-looking) data is replete with minimal\n\
         foreign sequences of varying lengths — each one invisible to Stide at\n\
         any window shorter than the sequence itself."
    );

    // Per-process view: the census varies by process.
    println!("\nper-process totals:");
    for (pid, stream) in parsed.iter() {
        let r = mfs_census(&training, stream, 8)?;
        println!(
            "  pid {pid}: {} MFS occurrences in {} events",
            r.total(),
            stream.len()
        );
    }

    Ok(())
}

//! Regenerates the paper's Figures 3-6 — the detection-coverage maps of
//! the four diverse detectors — plus the §7 coverage relations.
//!
//! ```text
//! cargo run --release --example coverage_maps [training_len]
//! ```
//!
//! `training_len` defaults to 120,000; pass 1000000 for the paper's full
//! scale.

use detdiv::eval::{comb1_stide_markov_subset, comb2_stide_lb_union, coverage_map};
use detdiv::obs;
use detdiv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::var_os("DETDIV_LOG").is_none() {
        obs::set_max_level(obs::Level::Info);
    }
    let training_len: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(120_000);

    let config = SynthesisConfig::builder()
        .training_len(training_len)
        .build()?;
    obs::info!(
        "synthesizing the paper's corpus",
        training_elements = config.training_len(),
        anomaly_sizes = "2-9",
        windows = "2-15",
    );
    let corpus = Corpus::synthesize(&config)?;

    // Figures 3-6, in the paper's order.
    for (figure, kind, expectation) in [
        (
            "Figure 3",
            DetectorKind::LaneBrodley,
            "blind across the entire space",
        ),
        (
            "Figure 4",
            DetectorKind::Markov,
            "detects across the entire space",
        ),
        (
            "Figure 5",
            DetectorKind::Stide,
            "detects exactly when DW >= AS",
        ),
        (
            "Figure 6",
            DetectorKind::neural_default(),
            "mimics the Markov detector",
        ),
    ] {
        obs::info!(
            "computing coverage map",
            figure = figure,
            detector = kind.name()
        );
        let map = coverage_map(&corpus, &kind)?;
        println!("--- {figure}: paper expectation: {expectation} ---");
        println!("{}", map.render());
    }

    // The §7 coverage relations.
    let subset = comb1_stide_markov_subset(&corpus)?;
    println!(
        "Stide detection region is a subset of Markov's: {} ({} vs {} cells, Jaccard {:.3})",
        subset.stide_subset_of_markov,
        subset.stide_detections,
        subset.markov_detections,
        subset.jaccard
    );
    let union = comb2_stide_lb_union(&corpus)?;
    println!(
        "Adding L&B to Stide gains {} cells (L&B detects {} cells on its own)",
        union.lb_gain_over_stide, union.lb_detections
    );

    Ok(())
}

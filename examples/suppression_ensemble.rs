//! The paper's §7 deployment recipe, end to end: use the Markov-based
//! detector for coverage and Stide as a false-alarm suppressor.
//!
//! "Any alarms raised by the Markov-based detector, and not raised by
//! Stide, may be ignored as false alarms; alarms raised by both Stide
//! and the Markov-based detector are possible hits."
//!
//! ```text
//! cargo run --release --example suppression_ensemble
//! ```

use detdiv::core::{alarms_at, analyze_alarms, suppress_alarms, IncidentSpan, LabeledCase};
use detdiv::detectors::MarkovDetector;
use detdiv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SynthesisConfig::builder()
        .training_len(120_000)
        .anomaly_sizes(2..=5)
        .windows(2..=8)
        .background_len(1024)
        .seed(42)
        .build()?;
    let corpus = Corpus::synthesize(&config)?;

    // A realistic monitoring stream: noisy background (the generation
    // matrix's rare-but-benign escapes included) with one injected
    // attack manifestation — an MFS of size 3.
    let anomaly_size = 3;
    let case = corpus.noisy_case(anomaly_size, 16_384, 7)?;
    let test = case.test_stream();
    println!(
        "monitoring stream: {} events, anomaly of size {anomaly_size} at position {}",
        test.len(),
        case.injection_position()
    );

    let window = 4;
    let span = IncidentSpan::compute(test.len(), window, case.injection_position(), anomaly_size)?;

    // The Markov detector, tuned sensitively (floor 0.98) so that it
    // also fires on the background's rare transitions — the regime in
    // which it "can only be expected to produce greater numbers of
    // false alarms than Stide".
    let mut markov = MarkovDetector::with_rare_threshold(window, 0.02);
    markov.train(case.training());
    let markov_alarms = alarms_at(&markov.scores(test), markov.maximal_response_floor());

    // Stide at the same window: blind to rare-but-known sequences.
    let mut stide = Stide::new(window);
    stide.train(case.training());
    let stide_alarms = alarms_at(&stide.scores(test), stide.maximal_response_floor());

    // The combination: keep only Markov alarms that Stide confirms.
    let suppressed = suppress_alarms(&markov_alarms, &stide_alarms)?;

    println!(
        "\n{:<28} {:>5} {:>14} {:>10}",
        "detector", "hit", "false alarms", "FA rate"
    );
    for (name, alarms) in [
        ("markov (floor 0.98)", &markov_alarms),
        ("stide", &stide_alarms),
        ("markov + stide suppression", &suppressed),
    ] {
        let a = analyze_alarms(alarms, span)?;
        println!(
            "{:<28} {:>5} {:>14} {:>10.5}",
            name,
            if a.hit { "yes" } else { "no" },
            a.false_alarms,
            a.false_alarm_rate()
        );
    }

    println!(
        "\nNote the §8 caveat: suppression is safe only while DW >= AS — at a window\n\
         smaller than the attack's manifestation, Stide would veto the true alarm too."
    );
    Ok(())
}

//! Quickstart: synthesize the paper's evaluation data at a reduced
//! scale, train one of each detector, and see who notices the injected
//! minimal foreign sequence.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use detdiv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a corpus: 60k-element training stream (98 % cycle,
    //    2 % rare material), anomaly sizes 2-5, windows 2-8.
    let config = SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=5)
        .windows(2..=8)
        .background_len(1024)
        .seed(2005)
        .build()?;
    let corpus = Corpus::synthesize(&config)?;

    println!(
        "training stream: {} elements over {}",
        corpus.training().len(),
        corpus.alphabet()
    );
    for anomaly in corpus.anomalies() {
        println!("  injected MFS of size {}: {}", anomaly.len(), anomaly);
    }

    // 2. Pick one cell of the evaluation grid: anomaly size 4, window 4.
    let (anomaly_size, window) = (4, 4);
    let case = corpus.case(anomaly_size, window)?;
    println!(
        "\nevaluating at anomaly size {anomaly_size}, detector window {window} \
         (anomaly injected at position {})",
        case.injection_position()
    );

    // 3. Train each detector on the same normal data and classify its
    //    response to the anomaly: blind, weak, or capable.
    for kind in DetectorKind::paper_four() {
        let mut detector = kind.build(window);
        detector.train(case.training());
        let outcome = evaluate_case(&detector, &case)?;
        println!(
            "  {:<16} -> {:<8} (max in-span response {:.4})",
            detector.name(),
            outcome.classification().to_string(),
            outcome.max_response()
        );
    }

    // 4. The same detectors at a window smaller than the anomaly: Stide
    //    goes blind; the probabilistic detectors keep detecting. This is
    //    the paper's central diversity result.
    let small_window = 2;
    let case_small = corpus.case(anomaly_size, small_window)?;
    println!("\nsame anomaly, detector window {small_window} (< anomaly size):");
    for kind in DetectorKind::paper_four() {
        let mut detector = kind.build(small_window);
        detector.train(case_small.training());
        let outcome = evaluate_case(&detector, &case_small)?;
        println!(
            "  {:<16} -> {:<8} (max in-span response {:.4})",
            detector.name(),
            outcome.classification().to_string(),
            outcome.max_response()
        );
    }

    Ok(())
}

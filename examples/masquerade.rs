//! Lane & Brodley on its home turf: masquerade detection over user
//! command streams (experiment MASQ1).
//!
//! The paper's §8 finds L&B blind to minimal foreign sequences "despite
//! its previous application to masquerade detection". This example shows
//! both halves of that sentence: the detector that never stars on the
//! MFS grid separates a masquerading user from the profiled one cleanly,
//! because a masquerader manifests as *systematically lower positional
//! similarity*, not as a foreign sequence. Detector diversity is anomaly
//! -type diversity.
//!
//! ```text
//! cargo run --release --example masquerade
//! ```

use detdiv::eval::masq1_lane_brodley_masquerade;
use detdiv::prelude::*;
use detdiv::trace::{generate_command_stream, UserProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = detdiv::sequence::SymbolTable::new();
    let developer = UserProfile::developer();
    let analyst = UserProfile::analyst();

    let history = generate_command_stream(&developer, 4000, 11, &mut table)?;
    let self_session = generate_command_stream(&developer, 400, 12, &mut table)?;
    let masquerade_session = generate_command_stream(&analyst, 400, 13, &mut table)?;

    println!(
        "profiled {} commands of '{}' history; vocabulary of {} commands\n",
        history.len(),
        developer.name,
        table.len()
    );

    // Show a few windows of each session with their similarity scores.
    let window = 5;
    let mut lb = LaneBrodley::new(window);
    lb.train(&history);

    let show = |label: &str, stream: &[Symbol]| {
        let scores = lb.scores(stream);
        println!("{label}: first three windows");
        for (w, score) in stream.windows(window).zip(&scores).take(3) {
            let names: Vec<&str> = w.iter().map(|s| table.name(*s).unwrap_or("?")).collect();
            println!("  [{}] similarity {:.2}", names.join(" "), 1.0 - score);
        }
        let mean: f64 = scores.iter().map(|s| 1.0 - s).sum::<f64>() / scores.len() as f64;
        println!("  mean profile similarity: {mean:.3}\n");
    };
    show("genuine developer session", &self_session);
    show("masquerading analyst session", &masquerade_session);

    // The packaged experiment, with segment-level separability.
    let r = masq1_lane_brodley_masquerade(window, 11)?;
    println!(
        "MASQ1 at DW {}: self {:.3} vs masquerader {:.3} (margin {:.3}); every\n\
         50-window segment separable by one threshold: {}",
        r.window, r.self_similarity, r.masquerader_similarity, r.margin, r.separable
    );
    println!(
        "\n...and the same detector's MFS coverage map (the paper's Figure 3) has\n\
         no stars at all — fit between detector and anomaly type is everything."
    );
    Ok(())
}

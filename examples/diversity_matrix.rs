//! The informed-choice aid of the paper's §1: a pairwise diversity
//! matrix over six detector families, answering "which detectors are
//! worth combining, and which combinations are redundant?"
//!
//! ```text
//! cargo run --release --example diversity_matrix
//! ```

use detdiv::eval::div1_diversity_matrix;
use detdiv::obs;
use detdiv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::var_os("DETDIV_LOG").is_none() {
        obs::set_max_level(obs::Level::Info);
    }
    let config = SynthesisConfig::builder()
        .training_len(80_000)
        .anomaly_sizes(2..=5)
        .windows(2..=8)
        .background_len(1024)
        .seed(2005)
        .build()?;
    obs::info!("synthesizing corpus and computing six coverage maps");
    let corpus = Corpus::synthesize(&config)?;

    let result = div1_diversity_matrix(&corpus)?;
    println!("{}", result.matrix.render());

    println!("pairs affording no coverage gain (deploy the stronger one alone,");
    println!("or pair them for false-alarm suppression as in the paper's §7):");
    for (a, b) in &result.no_gain_pairs {
        println!("  {a} + {b}");
    }

    println!("\nsubset relations (the smaller detector's alarms are all confirmed");
    println!("by the larger — the Stide-suppresses-Markov precondition):");
    for (small, large) in &result.subset_pairs {
        println!("  {small} ⊂ {large}");
    }

    if result.complementary_pairs.is_empty() {
        println!(
            "\nno genuinely complementary pairs on this anomaly space: every\n\
             rare-sequence-aware detector already covers the whole grid, exactly\n\
             as the paper's coverage analysis predicts."
        );
    } else {
        println!("\ncomplementary pairs (union strictly beats both):");
        for (a, b) in &result.complementary_pairs {
            println!("  {a} ⊕ {b}");
        }
    }

    Ok(())
}

//! Runs a reduced-grid evaluation and prints the run-telemetry summary
//! the observability layer collected along the way: per-detector
//! train/score histograms, event counters, per-(AS × DW) cell wall
//! times, and the self-profile (inclusive/exclusive time per span
//! path, worker utilization).
//!
//! The run also arms the per-thread event recorder and writes a Chrome
//! trace-event file to `target/telemetry_trace.json` — open it in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing` to see
//! the span hierarchy, the `par-worker-N` threads, and every
//! evaluation-grid cell as an `X` slice carrying its
//! `(detector, window, anomaly_size)` args.
//!
//! ```text
//! cargo run --release --example telemetry [-- --serve HOST:PORT]
//! ```
//!
//! With `--serve 127.0.0.1:0` the run also arms the live introspection
//! server: the example prints the scrape URL as soon as it binds, and
//! `curl` against `/metrics`, `/healthz`, `/snapshot.json` or
//! `/profilez` while the experiments run shows the counters moving.
//!
//! Set `DETDIV_LOG=debug` to also watch per-span timings stream to
//! stderr while the experiments run, or `DETDIV_LOG=off` to see the
//! collection disabled end to end (the summary comes back empty —
//! while the trace file is still written, because tracing is armed
//! explicitly and is independent of the log level).

use detdiv::prelude::*;
use detdiv_obs as obs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--serve HOST:PORT` arms the live metrics server for the run;
    // port 0 picks an ephemeral port, echoed below.
    let mut serve = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--serve" => serve = Some(args.next().ok_or("--serve needs HOST:PORT")?),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let scope = match serve {
        Some(addr) => {
            let scope =
                detdiv::scope::Scope::start(&addr, detdiv::scope::ScopeConfig::from_env()?)?;
            println!(
                "serving live metrics on http://{}/metrics — try:\n  curl http://{0}/metrics\n  curl http://{0}/healthz",
                scope.local_addr()
            );
            Some(scope)
        }
        None => None,
    };

    let config = SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=4)
        .windows(2..=5)
        .background_len(512)
        .plant_repeats(4)
        .seed(3)
        .build()?;

    // Arm the event recorder for the whole run; the trace is exported
    // after the report is generated.
    obs::trace::arm();

    // `generate` resets telemetry, synthesizes the corpus under a
    // `synthesize` span, runs every experiment, and attaches the
    // snapshot to the report.
    let report = FullReport::generate(&config)?;
    let telemetry = &report.telemetry;

    // The report (and its attached snapshot, sampled time series
    // included) is complete; the server has nothing more to show.
    if let Some(scope) = scope {
        if let Err(e) = scope.shutdown() {
            println!("scope shutdown: {e}");
        }
    }

    obs::trace::disarm();
    let trace_path = "target/telemetry_trace.json";
    match obs::trace::write_chrome_trace(trace_path) {
        Ok(events) => {
            println!("wrote {events} trace events to {trace_path} (load it in ui.perfetto.dev)")
        }
        Err(e) => println!("could not write {trace_path}: {e}"),
    }

    if telemetry.is_empty() {
        println!("telemetry disabled (DETDIV_LOG=off); nothing else to report");
        return Ok(());
    }

    println!("{}", telemetry.render_text());

    // The four paper detectors side by side: where does the wall time go?
    println!("per-detector totals (train + score):");
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>12}",
        "detector", "train_ms", "score_ms", "windows", "alarms"
    );
    for name in ["lane-brodley", "markov", "stide", "neural-network"] {
        let train_ms = telemetry
            .histogram(&format!("detector/{name}/train_ns"))
            .map_or(0.0, |h| h.sum_ns as f64 / 1e6);
        let score_ms = telemetry
            .histogram(&format!("detector/{name}/score_ns"))
            .map_or(0.0, |h| h.sum_ns as f64 / 1e6);
        let windows = telemetry.counter(&format!("detector/{name}/windows_scored"));
        let alarms = telemetry.counter(&format!("detector/{name}/alarms_raised"));
        println!("{name:<16} {train_ms:>12.1} {score_ms:>12.1} {windows:>14} {alarms:>12}");
    }

    // The slowest grid cells, from the per-cell records.
    let mut cells = telemetry.cells.clone();
    cells.sort_by_key(|c| std::cmp::Reverse(c.nanos));
    println!("\nslowest evaluation-grid cells:");
    println!(
        "{:<28} {:<16} {:>4} {:>4} {:>12}",
        "experiment", "detector", "DW", "AS", "ms"
    );
    for cell in cells.iter().take(8) {
        println!(
            "{:<28} {:<16} {:>4} {:>4} {:>12.2}",
            cell.experiment,
            cell.detector,
            cell.window,
            cell.anomaly_size,
            cell.nanos as f64 / 1e6
        );
    }

    // The self-profile: inclusive vs exclusive time per span path plus
    // worker utilization, the table `render_text` appends and
    // `paper_telemetry.json` serializes.
    println!();
    print!("{}", telemetry.profile.render_text(10));

    Ok(())
}

//! Runs a reduced-grid evaluation and prints the run-telemetry summary
//! the observability layer collected along the way: per-detector
//! train/score histograms, event counters, and per-(AS × DW) cell wall
//! times.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```
//!
//! Set `DETDIV_LOG=debug` to also watch per-span timings stream to
//! stderr while the experiments run, or `DETDIV_LOG=off` to see the
//! collection disabled end to end (the summary comes back empty).

use detdiv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=4)
        .windows(2..=5)
        .background_len(512)
        .plant_repeats(4)
        .seed(3)
        .build()?;

    // `generate` resets telemetry, synthesizes the corpus under a
    // `synthesize` span, runs every experiment, and attaches the
    // snapshot to the report.
    let report = FullReport::generate(&config)?;
    let telemetry = &report.telemetry;

    if telemetry.is_empty() {
        println!("telemetry disabled (DETDIV_LOG=off); nothing to report");
        return Ok(());
    }

    println!("{}", telemetry.render_text());

    // The four paper detectors side by side: where does the wall time go?
    println!("per-detector totals (train + score):");
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>12}",
        "detector", "train_ms", "score_ms", "windows", "alarms"
    );
    for name in ["lane-brodley", "markov", "stide", "neural-network"] {
        let train_ms = telemetry
            .histogram(&format!("detector/{name}/train_ns"))
            .map_or(0.0, |h| h.sum_ns as f64 / 1e6);
        let score_ms = telemetry
            .histogram(&format!("detector/{name}/score_ns"))
            .map_or(0.0, |h| h.sum_ns as f64 / 1e6);
        let windows = telemetry.counter(&format!("detector/{name}/windows_scored"));
        let alarms = telemetry.counter(&format!("detector/{name}/alarms_raised"));
        println!("{name:<16} {train_ms:>12.1} {score_ms:>12.1} {windows:>14} {alarms:>12}");
    }

    // The slowest grid cells, from the per-cell records.
    let mut cells = telemetry.cells.clone();
    cells.sort_by_key(|c| std::cmp::Reverse(c.nanos));
    println!("\nslowest evaluation-grid cells:");
    println!(
        "{:<28} {:<16} {:>4} {:>4} {:>12}",
        "experiment", "detector", "DW", "AS", "ms"
    );
    for cell in cells.iter().take(8) {
        println!(
            "{:<28} {:<16} {:>4} {:>4} {:>12.2}",
            cell.experiment,
            cell.detector,
            cell.window,
            cell.anomaly_size,
            cell.nanos as f64 / 1e6
        );
    }

    // And the coarse phase breakdown from the span hierarchy.
    println!("\ntop-level spans:");
    for (name, h) in &telemetry.histograms {
        let path = name.trim_start_matches("span/");
        if name.starts_with("span/") && !path.contains('/') {
            println!("  {path:<28} {:>10.1} ms", h.sum_ns as f64 / 1e6);
        }
    }

    Ok(())
}

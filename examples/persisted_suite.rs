//! The evaluation suite as files on disk — the shape the paper actually
//! shipped ("one stream of training data and 8 streams of test data",
//! §5.4.2) — including what happens when a persisted suite is tampered
//! with.
//!
//! ```text
//! cargo run --release --example persisted_suite [dir]
//! ```

use detdiv::prelude::*;
use detdiv::synth::{load_corpus, save_corpus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("detdiv-suite"));

    let config = SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=5)
        .windows(2..=8)
        .background_len(1024)
        .seed(2005)
        .build()?;
    let corpus = Corpus::synthesize(&config)?;

    save_corpus(&corpus, &dir)?;
    println!("wrote evaluation suite to {}:", dir.display());
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        println!(
            "  {:<16} {:>9} bytes",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len()
        );
    }

    // Loading re-verifies every §5.4 invariant before handing the suite
    // back.
    let loaded = load_corpus(&dir)?;
    println!(
        "\nreloaded and re-verified: {} training elements, {} test streams",
        loaded.training().len(),
        loaded.anomalies().count()
    );

    // Evaluate straight from the loaded suite.
    let case = loaded.case(4, 6)?;
    let mut stide = Stide::new(6);
    stide.train(case.training());
    let outcome = evaluate_case(&stide, &case)?;
    println!(
        "stide at (AS 4, DW 6) on the loaded suite: {}",
        outcome.classification()
    );

    // Tamper with the training stream: append the size-4 anomaly so it
    // is no longer foreign. The loader must refuse.
    let training_file = dir.join("training.txt");
    let mut text = std::fs::read_to_string(&training_file)?;
    for s in loaded.anomaly(4).expect("synthesized size").symbols() {
        text.push_str(&format!("{}\n", s.id()));
    }
    std::fs::write(&training_file, text)?;
    match load_corpus(&dir) {
        Err(e) => println!("\ntampered suite correctly rejected:\n  {e}"),
        Ok(_) => println!("\nunexpected: tampered suite loaded"),
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

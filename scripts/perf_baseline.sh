#!/usr/bin/env bash
# Performance baseline for the experiment pipeline (PR 4).
#
# Runs the `perfbaseline` harness — a pinned reduced sweep executed
# three times: trained-model cache disabled, cache enabled from cold,
# and cache enabled with tracing armed — and writes the
# machine-readable baseline JSON (wall times, cache speed-up and hit
# statistics, tracing overhead, top phases by exclusive time, worker
# utilization).
#
# Usage: scripts/perf_baseline.sh [OUT_JSON] [TRAINING_LEN]
#   OUT_JSON      output path (default BENCH_pr4.json at the repo root)
#   TRAINING_LEN  training-stream length (default 60000; CI may pass a
#                 smaller value for a faster sweep — the committed
#                 baseline uses the default)
#
# The binary is built if missing. Exits non-zero if the sweep fails,
# the armed run dropped trace events (the sink cap must not be hit at
# baseline scale), or the cold cached run recorded no hits.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr4.json}"
TRAINING_LEN="${2:-60000}"

if [[ ! -x target/release/perfbaseline ]]; then
    cargo build --release -p detdiv-bench --bin perfbaseline
fi

./target/release/perfbaseline --out "$OUT" --training-len "$TRAINING_LEN"

# The baseline is meaningless if the sink overflowed: fail loudly.
if grep -q '"trace_dropped": *[1-9]' "$OUT"; then
    echo "perf_baseline.sh: armed run dropped trace events (see $OUT)" >&2
    exit 1
fi
# A cold cached run that never hits means the eval paths stopped
# sharing models — the speed-up figure would be measuring nothing.
if ! grep -q '"hits": *[1-9]' "$OUT"; then
    echo "perf_baseline.sh: cached run recorded zero cache hits (see $OUT)" >&2
    exit 1
fi
echo "perf_baseline.sh: wrote $OUT"

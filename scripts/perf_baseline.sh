#!/usr/bin/env bash
# Performance baseline for the experiment pipeline (PR 4).
#
# Runs the `perfbaseline` harness — a pinned reduced sweep executed
# four times: trained-model cache disabled, cache enabled from cold,
# cache enabled with tracing armed, and cache enabled with the flight
# recorder armed — plus a streaming throughput pass (the seven-family
# adapter bank fed one event at a time), and writes the
# machine-readable baseline JSON (wall times, cache speed-up and hit
# statistics, tracing and flight-recording overheads, streaming
# events/sec, top phases by exclusive time, worker utilization).
#
# Usage: scripts/perf_baseline.sh [OUT_JSON] [TRAINING_LEN]
#   OUT_JSON      output path (default BENCH_pr8.json at the repo root;
#                 the baseline's `bench` label is inferred from the
#                 filename, so BENCH_pr8.json labels itself pr8)
#   TRAINING_LEN  training-stream length (default 60000; CI may pass a
#                 smaller value for a faster sweep — the committed
#                 baseline uses the default)
#
# The binary is built if missing. Exits non-zero if the sweep fails,
# the armed run dropped trace events (the sink cap must not be hit at
# baseline scale), the cold cached run recorded no hits, or the
# perf-history gate (`perfhist` over the repo-root BENCH_*.json
# trajectory, the fresh baseline included when written there) detects
# a wall-time regression beyond its noise threshold.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr8.json}"
TRAINING_LEN="${2:-60000}"

if [[ ! -x target/release/perfbaseline ]]; then
    cargo build --release -p detdiv-bench --bin perfbaseline
fi

./target/release/perfbaseline --out "$OUT" --training-len "$TRAINING_LEN"

# The baseline is meaningless if the sink overflowed: fail loudly.
if grep -q '"trace_dropped": *[1-9]' "$OUT"; then
    echo "perf_baseline.sh: armed run dropped trace events (see $OUT)" >&2
    exit 1
fi
# A cold cached run that never hits means the eval paths stopped
# sharing models — the speed-up figure would be measuring nothing.
if ! grep -q '"hits": *[1-9]' "$OUT"; then
    echo "perf_baseline.sh: cached run recorded zero cache hits (see $OUT)" >&2
    exit 1
fi
# The flight-armed pass must actually record wide events, or its
# overhead figure is measuring a disarmed run.
if ! grep -q '"flight_records": *[1-9]' "$OUT"; then
    echo "perf_baseline.sh: flight-armed run recorded zero wide events (see $OUT)" >&2
    exit 1
fi
echo "perf_baseline.sh: wrote $OUT"

# Perf-history trajectory over the committed repo-root baselines (the
# fresh OUT is included automatically when it was written there). The
# gate only compares baselines measured at the same sweep shape, and
# the generous threshold targets structural regressions, not machine
# jitter.
if [[ ! -x target/release/perfhist ]]; then
    cargo build --release -p detdiv-bench --bin perfhist
fi
./target/release/perfhist --dir . --threshold 50

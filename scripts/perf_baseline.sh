#!/usr/bin/env bash
# Performance baseline for the observability stack (PR 3).
#
# Runs the `perfbaseline` harness — a pinned reduced sweep executed
# twice, tracing disarmed then armed — and writes the machine-readable
# baseline JSON (wall times, tracing overhead, top phases by exclusive
# time, worker utilization).
#
# Usage: scripts/perf_baseline.sh [OUT_JSON] [TRAINING_LEN]
#   OUT_JSON      output path (default BENCH_pr3.json at the repo root)
#   TRAINING_LEN  training-stream length (default 60000; CI may pass a
#                 smaller value for a faster sweep — the committed
#                 baseline uses the default)
#
# The binary is built if missing. Exits non-zero if the sweep fails or
# the armed run dropped trace events (the sink cap must not be hit at
# baseline scale).

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr3.json}"
TRAINING_LEN="${2:-60000}"

if [[ ! -x target/release/perfbaseline ]]; then
    cargo build --release -p detdiv-bench --bin perfbaseline
fi

./target/release/perfbaseline --out "$OUT" --training-len "$TRAINING_LEN"

# The baseline is meaningless if the sink overflowed: fail loudly.
if grep -q '"trace_dropped": *[1-9]' "$OUT"; then
    echo "perf_baseline.sh: armed run dropped trace events (see $OUT)" >&2
    exit 1
fi
echo "perf_baseline.sh: wrote $OUT"

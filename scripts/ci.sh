#!/usr/bin/env bash
# Local CI gate for the detdiv workspace.
#
# Runs the same checks a hosted pipeline would, in dependency order so
# the cheapest failures surface first:
#
#   1. cargo fmt --check      — formatting is canonical
#   2. cargo clippy           — lints as errors across the workspace
#   3. cargo build --release  — the artifacts the paper run uses
#   4. cargo test -q          — every unit, integration, and doc test
#
# Usage: scripts/ci.sh
# The script is silent on success for each phase beyond a one-line
# banner, and exits non-zero at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

banner() { printf '\n==> %s\n' "$*"; }

banner "cargo fmt --check"
cargo fmt --all --check

banner "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

banner "cargo build --release"
cargo build --release --workspace

banner "cargo test -q"
cargo test -q --workspace --release

banner "CI green"

#!/usr/bin/env bash
# Local CI gate for the detdiv workspace.
#
# Runs the same checks a hosted pipeline would, in dependency order so
# the cheapest failures surface first:
#
#   1. cargo fmt --check      — formatting is canonical
#   2. cargo clippy           — lints as errors across the workspace
#   3. cargo build --release  — the artifacts the paper run uses
#   4. cargo test -q          — every unit, integration, and doc test
#   5. determinism gate       — the JSON report regenerated at
#                               DETDIV_THREADS=1 and =4 must be
#                               byte-identical (DETDIV_LOG=off so the
#                               telemetry snapshot is empty and carries
#                               no wall times). Both runs are executed
#                               with --trace armed: tracing must not
#                               perturb results (the trace files
#                               themselves carry wall times and are
#                               excluded from the comparison)
#   6. cache gate             — the report regenerated with the
#                               single-flight trained-model cache
#                               disabled (--no-cache) must be
#                               byte-identical to the cached run; the
#                               detector-contract conformance suite
#                               runs explicitly; and a telemetry-on
#                               cached run must record a non-zero
#                               cache/hits counter (a silent cache is
#                               a disabled cache)
#   7. stream gate            — `streamcheck` bit-compares streamed
#                               against batch scores for every family ×
#                               window × anomaly-size cell of the full
#                               paper grid; the batch↔stream
#                               differential suite runs explicitly; and
#                               the report regenerated with streamed
#                               scoring (--stream, and once via
#                               DETDIV_STREAM=on) must be
#                               byte-identical to the batch runs —
#                               streaming is the batch pipeline
#                               reordered in time, not a new pipeline
#   8. trace gate             — the exported Chrome trace files must be
#                               valid trace-event JSON with per-thread
#                               monotonic timestamps and balanced B/E
#                               stacks (`tracecheck`), and the 4-thread
#                               trace must name its pool workers
#   9. scope gate             — `regenerate --serve 127.0.0.1:0` runs
#                               with the live metrics server armed at
#                               widths 1 and 4; `scopecheck` scrapes
#                               /metrics, /healthz, /snapshot.json and
#                               /profilez mid-run and validates each
#                               (Prometheus text format included), and
#                               the served runs' artifacts must be
#                               byte-identical to the unserved
#                               determinism-gate runs — observation
#                               must not perturb results. A telemetry-
#                               on served run is additionally scraped
#                               with --expect-telemetry to prove live
#                               counters are actually visible mid-run
#  10. perf baseline          — scripts/perf_baseline.sh runs the
#                               pinned reduced sweep and emits a
#                               baseline JSON (tracing and flight
#                               overheads, top phases, utilization,
#                               cache hit rate, streaming events/sec)
#  11. perf history gate      — `perfhist` parses every committed
#                               repo-root BENCH_*.json, prints the
#                               cross-PR trajectory table, and fails
#                               if the newest comparable baseline pair
#                               regressed a gated metric beyond the
#                               noise threshold (wall time growing, or
#                               streaming throughput dropping)
#  12. chaos gate             — the report regenerated under seeded
#                               ~1% training-panic injection
#                               (--fault 42:1%:panic) must be
#                               byte-identical to the fault-free runs
#                               at widths 1 and 4 — and once more with
#                               --stream on top of the injection; the
#                               width-4 chaos run is additionally
#                               SIGKILLed mid-run and finished with
#                               --resume, and must still match
#                               byte-for-byte (exit 0, no wedged
#                               process — every run is under `timeout`)
#  13. flight gate            — flight-armed runs (--flight at width 1,
#                               DETDIV_FLIGHT at width 4) must produce
#                               artifacts byte-identical to the unarmed
#                               runs; `flightcheck` validates each
#                               dump's wire format and reconstructs
#                               every coverage-map alarm count from the
#                               audit log alone; a repeated width-1 run
#                               must produce a byte-identical dump; and
#                               a chaos variant (--fault + --flight)
#                               must still match the fault-free
#                               artifacts while the panic hook leaves a
#                               parseable crash dump
#
# Usage: scripts/ci.sh
# The script is silent on success for each phase beyond a one-line
# banner, and exits non-zero at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

banner() { printf '\n==> %s\n' "$*"; }

banner "cargo fmt --check"
cargo fmt --all --check

banner "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

banner "cargo build --release"
cargo build --release --workspace

banner "cargo test -q"
cargo test -q --workspace --release

banner "determinism gate (DETDIV_THREADS=1 vs 4)"
# Regenerate the full report twice at different pool widths and demand
# byte-identical artifacts. DETDIV_LOG=off keeps the telemetry
# snapshot empty, so no wall-clock field can differ; a reduced
# training stream keeps the gate fast (ABL4 shows map shapes are
# length-invariant, and the gate is about scheduling, not scale).
GATE_DIR="$(mktemp -d)"
trap 'rm -rf "$GATE_DIR"' EXIT
mkdir -p "$GATE_DIR/t1" "$GATE_DIR/t4"
# Tracing is armed on both runs: an armed recorder must not perturb
# any output byte. The trace files carry wall times and thread counts,
# so they are validated (below) but never compared.
DETDIV_LOG=off DETDIV_THREADS=1 ./target/release/regenerate \
    --training-len 60000 --json "$GATE_DIR/t1/paper_report.json" \
    --trace "$GATE_DIR/t1/trace.json" \
    > "$GATE_DIR/t1/stdout.txt" 2> /dev/null
DETDIV_LOG=off DETDIV_THREADS=4 ./target/release/regenerate \
    --training-len 60000 --json "$GATE_DIR/t4/paper_report.json" \
    --trace "$GATE_DIR/t4/trace.json" \
    > "$GATE_DIR/t4/stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$GATE_DIR/t4/paper_report.json"
cmp "$GATE_DIR/t1/stdout.txt" "$GATE_DIR/t4/stdout.txt"
echo "report and stdout byte-identical at 1 and 4 threads (tracing armed)"

banner "cache gate (cached vs --no-cache byte identity + conformance + hit telemetry)"
# The determinism-gate runs above went through the single-flight
# trained-model cache (the default). Regenerate once more with the
# cache disabled and demand byte-identical artifacts: memoization may
# change when a model is trained, never what the report says.
mkdir -p "$GATE_DIR/nc"
DETDIV_LOG=off DETDIV_THREADS=4 ./target/release/regenerate \
    --training-len 60000 --no-cache \
    --json "$GATE_DIR/nc/paper_report.json" \
    > "$GATE_DIR/nc/stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$GATE_DIR/nc/paper_report.json"
cmp "$GATE_DIR/t1/stdout.txt" "$GATE_DIR/nc/stdout.txt"
echo "report and stdout byte-identical with cache on and off"
# The cache is only sound if every detector family honours the
# train-once/score-many contracts; run the conformance suite on its
# own so a violation is named here, not lost in the workspace run.
cargo test -q --release -p detdiv-core --test conformance
# A telemetry-on cached run must actually hit: the report's counter
# snapshot carries cache/hits, and zero hits would mean every eval
# path stopped sharing models (the gate that caught nothing).
DETDIV_THREADS=4 ./target/release/regenerate \
    --training-len 30000 --json "$GATE_DIR/telemetry_report.json" \
    > /dev/null 2> /dev/null
grep -q '"cache/hits": *[1-9]' "$GATE_DIR/telemetry_report.json" || {
    echo "cache gate: cache/hits is zero or missing in a cached telemetry-on report" >&2
    exit 1
}
echo "cache hit telemetry present ($(grep -o '"cache/hits": *[0-9]*' "$GATE_DIR/telemetry_report.json"))"

banner "stream gate (streamcheck grid + streamed-run byte identity)"
# Event-by-event streaming claims bit-identity with batch scoring;
# `streamcheck` enforces it for every family × window × anomaly-size
# cell of the full paper grid (DW 2-15 × AS 2-9, seven families).
./target/release/streamcheck
# The differential suite covers the structural edges the grid cannot:
# warmup boundaries, empty/short/duplicate-run streams, interleaved
# multi-stream feeds, and randomized training/test pairs.
cargo test -q --release -p detdiv-stream --test differential
# Report-level identity: the whole experiment suite scored through the
# streaming adapters must regenerate byte-identical artifacts — once
# via the --stream flag at width 4, once via DETDIV_STREAM=on at
# width 1, both compared against the batch determinism-gate runs.
mkdir -p "$GATE_DIR/stream"
DETDIV_LOG=off DETDIV_THREADS=4 ./target/release/regenerate \
    --training-len 60000 --stream \
    --json "$GATE_DIR/stream/flag.json" \
    > "$GATE_DIR/stream/flag_stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$GATE_DIR/stream/flag.json"
cmp "$GATE_DIR/t1/stdout.txt" "$GATE_DIR/stream/flag_stdout.txt"
DETDIV_LOG=off DETDIV_THREADS=1 DETDIV_STREAM=on ./target/release/regenerate \
    --training-len 60000 \
    --json "$GATE_DIR/stream/env.json" \
    > "$GATE_DIR/stream/env_stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$GATE_DIR/stream/env.json"
cmp "$GATE_DIR/t1/stdout.txt" "$GATE_DIR/stream/env_stdout.txt"
echo "streamed runs (--stream and DETDIV_STREAM=on) byte-identical to batch runs"

banner "trace gate (Chrome trace-event JSON validity + B/E balance)"
./target/release/tracecheck "$GATE_DIR/t1/trace.json"
./target/release/tracecheck "$GATE_DIR/t4/trace.json" \
    --expect-thread par-worker-1 --expect-thread par-worker-2

banner "scope gate (mid-run scrape + served-run byte identity)"
# A served run regenerates the same artifacts as the determinism-gate
# runs while exposing live metrics on an ephemeral port; scraping it
# mid-run must succeed, and the artifacts must still be byte-identical
# to the unserved runs — the introspection layer is read-only.
SCOPE_DIR="$GATE_DIR/scope"
mkdir -p "$SCOPE_DIR/t1" "$SCOPE_DIR/t4" "$SCOPE_DIR/tele"

# scope_serve_run THREADS DIR LOG [EXTRA_SCOPECHECK_FLAG]
# Launches a served regeneration in the background, waits for the
# "serving live metrics" stderr line to learn the ephemeral port, runs
# scopecheck against it mid-run, then waits for the run to finish.
scope_serve_run() {
    local threads="$1" dir="$2" log="$3" expect_flag="${4:-}"
    DETDIV_LOG="$log" DETDIV_THREADS="$threads" \
        timeout 900 ./target/release/regenerate \
        --training-len 60000 --serve 127.0.0.1:0 \
        --json "$dir/paper_report.json" --trace "$dir/trace.json" \
        > "$dir/stdout.txt" 2> "$dir/stderr.txt" &
    local pid=$!
    local addr=""
    for _ in $(seq 1 200); do
        addr="$(sed -n 's#.*serving live metrics on http://\([0-9.:]*\)/metrics.*#\1#p' \
            "$dir/stderr.txt" 2> /dev/null | head -n 1)"
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2> /dev/null; then break; fi
        sleep 0.05
    done
    if [ -z "$addr" ]; then
        echo "scope gate: served run never echoed its bound address" >&2
        cat "$dir/stderr.txt" >&2 || true
        kill "$pid" 2> /dev/null || true
        return 1
    fi
    # shellcheck disable=SC2086 — expect_flag is intentionally a word
    if ! ./target/release/scopecheck --addr "$addr" --retries 40 --delay-ms 50 \
        $expect_flag 2> "$dir/scopecheck.txt"; then
        cat "$dir/scopecheck.txt" >&2
        kill "$pid" 2> /dev/null || true
        return 1
    fi
    wait "$pid"
}

scope_serve_run 1 "$SCOPE_DIR/t1" off
cmp "$GATE_DIR/t1/paper_report.json" "$SCOPE_DIR/t1/paper_report.json"
cmp "$GATE_DIR/t1/stdout.txt" "$SCOPE_DIR/t1/stdout.txt"
scope_serve_run 4 "$SCOPE_DIR/t4" off
cmp "$GATE_DIR/t4/paper_report.json" "$SCOPE_DIR/t4/paper_report.json"
cmp "$GATE_DIR/t4/stdout.txt" "$SCOPE_DIR/t4/stdout.txt"
echo "served runs byte-identical to unserved runs at widths 1 and 4"
# Telemetry-on served run: the mid-run scrape must see live detdiv
# counters, a telemetry-enabled healthz, and a non-empty snapshot.
scope_serve_run 4 "$SCOPE_DIR/tele" warn --expect-telemetry
echo "telemetry-on served run scraped live counters mid-run"

banner "perf baseline (BENCH JSON)"
# A reduced training stream keeps CI fast; the committed BENCH_pr8.json
# at the repo root is regenerated at the default scale via
# `scripts/perf_baseline.sh` without arguments.
scripts/perf_baseline.sh "$GATE_DIR/bench.json" 30000
echo "perf baseline OK ($(grep -o '"trace_overhead_percent":[^,]*' "$GATE_DIR/bench.json" || true))"

banner "perf history gate (cross-PR BENCH trajectory)"
# Every committed repo-root baseline must parse, and the newest
# comparable pair must not show a wall-time regression beyond the
# noise threshold. The threshold is generous: this gate exists to
# catch structural slowdowns, not machine-to-machine jitter.
./target/release/perfhist --dir . --threshold 50

banner "chaos gate (seeded fault injection + mid-run SIGKILL + --resume)"
# Injected panics are absorbed by supervised retry; `panic` kinds only,
# so artifact writes themselves cannot be failed and byte-identity is
# the honest expectation. DETDIV_LOG=off keeps the telemetry snapshot
# (which now carries resil/* injection counters) out of the report.
CHAOS_DIR="$GATE_DIR/chaos"
mkdir -p "$CHAOS_DIR"
FAULT_SPEC="42:1%:panic"
# Width 1: chaos run, uninterrupted; must match the fault-free t1 run.
DETDIV_LOG=off DETDIV_THREADS=1 timeout 900 ./target/release/regenerate \
    --training-len 60000 --fault "$FAULT_SPEC" \
    --json "$CHAOS_DIR/t1.json" \
    > "$CHAOS_DIR/t1_stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$CHAOS_DIR/t1.json"
cmp "$GATE_DIR/t1/stdout.txt" "$CHAOS_DIR/t1_stdout.txt"
echo "width-1 chaos run byte-identical to the fault-free run"
# Streamed chaos: the same injection with streamed scoring on top —
# supervised retries around training and the streaming score path must
# compose without perturbing a byte.
DETDIV_LOG=off DETDIV_THREADS=1 timeout 900 ./target/release/regenerate \
    --training-len 60000 --fault "$FAULT_SPEC" --stream \
    --json "$CHAOS_DIR/stream.json" \
    > "$CHAOS_DIR/stream_stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$CHAOS_DIR/stream.json"
cmp "$GATE_DIR/t1/stdout.txt" "$CHAOS_DIR/stream_stdout.txt"
echo "streamed chaos run byte-identical to the fault-free run"
# Width 4: chaos run with a row journal, SIGKILLed once rows have
# committed, then finished with --resume; the resumed output must be
# byte-identical to the fault-free t4 run.
JOURNAL="$CHAOS_DIR/rows.journal"
rm -f "$JOURNAL"
DETDIV_LOG=off DETDIV_THREADS=4 timeout 900 ./target/release/regenerate \
    --training-len 60000 --fault "$FAULT_SPEC" --resume "$JOURNAL" \
    --json "$CHAOS_DIR/t4.json" \
    > "$CHAOS_DIR/t4_stdout.txt" 2> /dev/null &
CHAOS_PID=$!
# Kill only after real progress: a few coverage rows in the journal.
for _ in $(seq 1 600); do
    if [ -f "$JOURNAL" ] && [ "$(wc -l < "$JOURNAL")" -ge 5 ]; then break; fi
    if ! kill -0 "$CHAOS_PID" 2> /dev/null; then break; fi
    sleep 0.1
done
kill -9 "$CHAOS_PID" 2> /dev/null || true
wait "$CHAOS_PID" 2> /dev/null || true
if [ -f "$JOURNAL" ]; then
    # The expected path: the run died mid-sweep; resume it. Completed
    # rows are served from the journal, missing cells recomputed.
    DETDIV_LOG=off DETDIV_THREADS=4 timeout 900 ./target/release/regenerate \
        --training-len 60000 --fault "$FAULT_SPEC" --resume "$JOURNAL" \
        --json "$CHAOS_DIR/t4.json" \
        > "$CHAOS_DIR/t4_stdout.txt" 2> "$CHAOS_DIR/t4_resume_stderr.txt"
    echo "resumed after SIGKILL: $(grep -o 'resuming [0-9]* completed rows' \
        "$CHAOS_DIR/t4_resume_stderr.txt" || echo 'journal present, 0 rows')"
else
    # The run outpaced the kill (fast machine): it completed cleanly
    # and removed its journal, which is also a pass — just weaker.
    echo "chaos run finished before the kill landed; comparing its output directly"
fi
cmp "$GATE_DIR/t4/paper_report.json" "$CHAOS_DIR/t4.json"
cmp "$GATE_DIR/t4/stdout.txt" "$CHAOS_DIR/t4_stdout.txt"
[ ! -f "$JOURNAL" ] || { echo "chaos gate: journal survived a successful run" >&2; exit 1; }
echo "width-4 chaos+kill+resume run byte-identical to the fault-free run"

banner "flight gate (audit-log identity + flightcheck reconstruction + chaos crash dump)"
# The wide-event audit log is an observer: arming it must not perturb
# a single artifact byte, and the dump itself must be reconstructible
# evidence — every alarm the coverage maps count must be derivable
# from the log alone (`flightcheck --report`).
FLIGHT_DIR="$GATE_DIR/flight"
mkdir -p "$FLIGHT_DIR/t1" "$FLIGHT_DIR/t4" "$FLIGHT_DIR/chaos"
# Width 1, armed via the --flight flag.
DETDIV_LOG=off DETDIV_THREADS=1 timeout 900 ./target/release/regenerate \
    --training-len 60000 --flight "$FLIGHT_DIR/t1/audit.jsonl" \
    --json "$FLIGHT_DIR/t1/paper_report.json" \
    > "$FLIGHT_DIR/t1/stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t1/paper_report.json" "$FLIGHT_DIR/t1/paper_report.json"
cmp "$GATE_DIR/t1/stdout.txt" "$FLIGHT_DIR/t1/stdout.txt"
# Width 4, armed via the DETDIV_FLIGHT environment variable.
DETDIV_LOG=off DETDIV_THREADS=4 DETDIV_FLIGHT="$FLIGHT_DIR/t4/audit.jsonl" \
    timeout 900 ./target/release/regenerate \
    --training-len 60000 \
    --json "$FLIGHT_DIR/t4/paper_report.json" \
    > "$FLIGHT_DIR/t4/stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t4/paper_report.json" "$FLIGHT_DIR/t4/paper_report.json"
cmp "$GATE_DIR/t4/stdout.txt" "$FLIGHT_DIR/t4/stdout.txt"
echo "flight-armed runs byte-identical to unarmed runs at widths 1 and 4"
# Both dumps validate, and the width-1 log reconstructs every alarm the
# run's coverage maps counted.
./target/release/flightcheck --dump "$FLIGHT_DIR/t1/audit.jsonl" \
    --report "$FLIGHT_DIR/t1/paper_report.json"
./target/release/flightcheck --dump "$FLIGHT_DIR/t4/audit.jsonl" \
    --report "$FLIGHT_DIR/t4/paper_report.json"
# A repeated width-1 run must reproduce the dump byte-for-byte: the
# export sorts records, so flush interleaving can never leak in.
DETDIV_LOG=off DETDIV_THREADS=1 timeout 900 ./target/release/regenerate \
    --training-len 60000 --flight "$FLIGHT_DIR/t1/audit_repeat.jsonl" \
    --json "$FLIGHT_DIR/t1/repeat_report.json" \
    > /dev/null 2> /dev/null
cmp "$FLIGHT_DIR/t1/audit.jsonl" "$FLIGHT_DIR/t1/audit_repeat.jsonl"
echo "audit dump byte-deterministic across repeat runs ($(wc -l < "$FLIGHT_DIR/t1/audit.jsonl") lines)"
# Chaos + flight: seeded panic injection with the recorder armed. The
# artifacts must still match the fault-free runs (the recorder's own
# writes are exempt from injection and claim no fault-site hits), and
# every injected panic must have left a parseable crash dump via the
# panic hook.
DETDIV_LOG=off DETDIV_THREADS=4 timeout 900 ./target/release/regenerate \
    --training-len 60000 --fault "$FAULT_SPEC" \
    --flight "$FLIGHT_DIR/chaos/audit.jsonl" \
    --json "$FLIGHT_DIR/chaos/paper_report.json" \
    > "$FLIGHT_DIR/chaos/stdout.txt" 2> /dev/null
cmp "$GATE_DIR/t4/paper_report.json" "$FLIGHT_DIR/chaos/paper_report.json"
cmp "$GATE_DIR/t4/stdout.txt" "$FLIGHT_DIR/chaos/stdout.txt"
if [ ! -s "$FLIGHT_DIR/chaos/audit.jsonl.crash" ]; then
    echo "flight gate: chaos run left no crash dump from the panic hook" >&2
    exit 1
fi
./target/release/flightcheck --dump "$FLIGHT_DIR/chaos/audit.jsonl" \
    --crash "$FLIGHT_DIR/chaos/audit.jsonl.crash"
echo "chaos flight run byte-identical to fault-free, with a parseable crash dump"

banner "serve gate (loadgen determinism across widths + chaos + snapshot/resume)"
# The sharded ingest service: a loadgen smoke run's stdout (stream and
# event counts plus the per-shard verdict digest) must be identical at
# worker widths 1 and 4 — the cross-width determinism contract at the
# service layer. The chaos variant must survive injected panics with
# every event accounted for (its digest is legitimately different:
# which slots die depends on the fault plan's hit order, so it is not
# compared). A snapshot/resume chain must recover warm state.
SERVE_DIR="$GATE_DIR/serve"
mkdir -p "$SERVE_DIR"
LOADGEN_ARGS="--streams 20000 --events-per-stream 4 --shards 16 --queue-cap 1024"
DETDIV_LOG=off DETDIV_THREADS=1 timeout 300 ./target/release/loadgen \
    $LOADGEN_ARGS --threads 1 > "$SERVE_DIR/t1_stdout.txt" 2> /dev/null
DETDIV_LOG=off DETDIV_THREADS=4 timeout 300 ./target/release/loadgen \
    $LOADGEN_ARGS --threads 4 > "$SERVE_DIR/t4_stdout.txt" 2> /dev/null
cmp "$SERVE_DIR/t1_stdout.txt" "$SERVE_DIR/t4_stdout.txt"
echo "loadgen verdict digest identical at widths 1 and 4 ($(cat "$SERVE_DIR/t1_stdout.txt"))"
DETDIV_LOG=off DETDIV_THREADS=4 timeout 300 ./target/release/loadgen \
    $LOADGEN_ARGS --threads 4 --fault "$FAULT_SPEC" \
    > "$SERVE_DIR/chaos_stdout.txt" 2> "$SERVE_DIR/chaos_stderr.txt"
grep -q "events=80000" "$SERVE_DIR/chaos_stdout.txt" || {
    echo "serve gate: chaos run lost events" >&2
    exit 1
}
echo "chaos loadgen survived injected panics with every event processed"
DETDIV_LOG=off DETDIV_THREADS=1 timeout 300 ./target/release/loadgen \
    $LOADGEN_ARGS --threads 1 --snapshot "$SERVE_DIR/state.snap" \
    > /dev/null 2> /dev/null
DETDIV_LOG=off DETDIV_THREADS=1 timeout 300 ./target/release/loadgen \
    $LOADGEN_ARGS --threads 1 --resume "$SERVE_DIR/state.snap" \
    > /dev/null 2> "$SERVE_DIR/resume_stderr.txt"
grep -q "resumed 20000 stream(s)" "$SERVE_DIR/resume_stderr.txt" || {
    echo "serve gate: resume did not recover the snapshotted streams" >&2
    exit 1
}
echo "snapshot/resume chain recovered all 20000 streams warm"
# The serve test battery (differential, recovery, backpressure) must
# hold at both worker widths — the suites assert per-stream identity,
# which is the part width must never perturb.
DETDIV_THREADS=1 cargo test -q -p detdiv-serve > /dev/null
DETDIV_THREADS=4 cargo test -q -p detdiv-serve > /dev/null
echo "serve suites green at widths 1 and 4"

banner "overload gate (guard shedding determinism + accounting + flight reconstruction)"
# The overload-protection subsystem: loadgen --overload drives arrival
# far past drain capacity against a small resident-byte budget. The
# pinned properties: the overload stdout (offered/delivered/shed split,
# recovery cycles, verdict digest) is identical at worker widths 1 and
# 4; shed + delivered == offered (zero silent drops — loadgen itself
# exits non-zero on an accounting hole); shedding actually happened on
# both the queue-full and guard paths; the ladder returned to Full
# (loadgen refuses to print otherwise); and every ladder/breaker/
# hibernate move is reconstructable from the flight log. The chaos
# variant adds seeded tier-2 panics: the breaker must open and the
# guard audit trail must still chain cleanly.
OVERLOAD_DIR="$GATE_DIR/overload"
mkdir -p "$OVERLOAD_DIR"
OVERLOAD_ARGS="--streams 2000 --events-per-stream 40 --shards 16 --queue-cap 1024 \
    --overload --guard-bytes 65536"
DETDIV_LOG=off DETDIV_THREADS=1 timeout 300 ./target/release/loadgen \
    $OVERLOAD_ARGS --threads 1 > "$OVERLOAD_DIR/t1_stdout.txt" 2> /dev/null
DETDIV_LOG=off DETDIV_THREADS=4 timeout 300 ./target/release/loadgen \
    $OVERLOAD_ARGS --threads 4 > "$OVERLOAD_DIR/t4_stdout.txt" 2> /dev/null
cmp "$OVERLOAD_DIR/t1_stdout.txt" "$OVERLOAD_DIR/t4_stdout.txt"
echo "overload stdout identical at widths 1 and 4 ($(cat "$OVERLOAD_DIR/t1_stdout.txt"))"
grep -q "offered=80000" "$OVERLOAD_DIR/t1_stdout.txt" || {
    echo "overload gate: not every event was offered" >&2
    exit 1
}
grep -Eq "shed_guard=[1-9][0-9]* shed_queue=[1-9][0-9]*" "$OVERLOAD_DIR/t1_stdout.txt" || {
    echo "overload gate: shedding did not engage on both paths" >&2
    exit 1
}
DETDIV_LOG=off DETDIV_THREADS=4 timeout 300 ./target/release/loadgen \
    $OVERLOAD_ARGS --threads 4 --flight "$OVERLOAD_DIR/audit.jsonl" \
    > /dev/null 2> /dev/null
./target/release/flightcheck --dump "$OVERLOAD_DIR/audit.jsonl" --guard \
    > "$OVERLOAD_DIR/flightcheck.txt"
grep -q "guard trail intact" "$OVERLOAD_DIR/flightcheck.txt"
echo "guard audit trail reconstructs ($(cat "$OVERLOAD_DIR/flightcheck.txt"))"
DETDIV_LOG=off DETDIV_THREADS=4 timeout 300 ./target/release/loadgen \
    $OVERLOAD_ARGS --threads 4 --fault "$FAULT_SPEC" \
    --flight "$OVERLOAD_DIR/chaos_audit.jsonl" \
    > "$OVERLOAD_DIR/chaos_stdout.txt" 2> /dev/null
grep -q "offered=80000" "$OVERLOAD_DIR/chaos_stdout.txt" || {
    echo "overload gate: chaos run lost events" >&2
    exit 1
}
./target/release/flightcheck --dump "$OVERLOAD_DIR/chaos_audit.jsonl" --guard \
    > "$OVERLOAD_DIR/chaos_flightcheck.txt"
grep -Eq "[1-9][0-9]* breaker" "$OVERLOAD_DIR/chaos_flightcheck.txt" || {
    echo "overload gate: injected tier-2 panics never opened the breaker" >&2
    exit 1
}
echo "chaos overload run opened the breaker and its audit trail still chains"

banner "CI green"

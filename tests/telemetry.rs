//! Integration test for the observability layer: a full report run
//! must come back with a telemetry snapshot whose timings cover all
//! four paper detectors and whose counters are consistent with the
//! evaluation grid, and `DETDIV_LOG=off` must disable collection.
//!
//! The telemetry registry and level are process-global, so everything
//! lives in ONE `#[test]` function: the default parallel test runner
//! would otherwise interleave level changes across tests.

use detdiv::obs;
use detdiv::prelude::*;

const PAPER_FOUR: [&str; 4] = ["lane-brodley", "markov", "stide", "neural-network"];

fn grid_config() -> SynthesisConfig {
    SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=4)
        .windows(2..=5)
        .background_len(512)
        .plant_repeats(4)
        .seed(3)
        .build()
        .expect("grid config")
}

#[test]
fn full_report_telemetry_covers_the_four_detectors_and_the_grid() {
    obs::set_max_level(obs::Level::Warn);
    let config = grid_config();
    let windows = 4; // DW 2..=5
    let anomaly_sizes = 3; // AS 2..=4
    let corpus = Corpus::synthesize(&config).expect("corpus");
    let report = FullReport::generate_on(&corpus).expect("report");
    let telemetry = &report.telemetry;
    assert!(
        !telemetry.is_empty(),
        "telemetry must be collected by default"
    );

    // 1. Non-zero train and score timings for all four paper families.
    for name in PAPER_FOUR {
        let train = telemetry
            .histogram(&format!("detector/{name}/train_ns"))
            .unwrap_or_else(|| panic!("missing train histogram for {name}"));
        assert!(
            train.count >= windows as u64,
            "{name}: expected at least one train call per window, got {}",
            train.count
        );
        assert!(train.sum_ns > 0, "{name}: train time must be non-zero");
        assert!(train.max_ns >= train.min_ns);
        let score = telemetry
            .histogram(&format!("detector/{name}/score_ns"))
            .unwrap_or_else(|| panic!("missing score histogram for {name}"));
        assert!(
            score.count >= (windows * anomaly_sizes) as u64,
            "{name}: expected at least one score call per grid cell, got {}",
            score.count
        );
        assert!(score.sum_ns > 0, "{name}: score time must be non-zero");

        // Counters agree with the grid: every scored stream yields at
        // least one window position, so windows_scored >= score calls.
        let scored = telemetry.counter(&format!("detector/{name}/windows_scored"));
        assert!(
            scored >= score.count,
            "{name}: windows_scored {scored} < score calls {}",
            score.count
        );
        assert_eq!(
            telemetry.counter(&format!("detector/{name}/score_calls")),
            score.count,
            "{name}: score_calls counter disagrees with histogram count"
        );
    }

    // 2. Per-cell wall times for each figure cover the grid exactly.
    // Figures 3–6 share one parallel fan-out (`fig3_6_coverage`), so
    // cells are told apart by their detector label.
    for detector in PAPER_FOUR {
        let cells: Vec<_> = telemetry
            .cells
            .iter()
            .filter(|c| c.experiment.contains("fig3_6_coverage") && c.detector == detector)
            .collect();
        assert_eq!(
            cells.len(),
            windows * anomaly_sizes,
            "{detector}: expected one timed cell per (AS, DW) pair"
        );
        for cell in &cells {
            assert!((2..=5).contains(&cell.window), "{detector}: window range");
            assert!(
                (2..=4).contains(&cell.anomaly_size),
                "{detector}: anomaly-size range"
            );
            assert!(
                cell.experiment.starts_with("report/"),
                "cell experiment context must carry the report span path, got {}",
                cell.experiment
            );
        }
        // All (window, AS) pairs distinct => the grid is covered.
        let mut pairs: Vec<_> = cells.iter().map(|c| (c.window, c.anomaly_size)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), windows * anomaly_sizes);

        // The per-detector cell histogram aggregates the same rows.
        let cell_histogram = telemetry
            .histogram(&format!("grid/{detector}/cell_ns"))
            .unwrap_or_else(|| panic!("missing grid cell histogram for {detector}"));
        assert!(cell_histogram.count >= (windows * anomaly_sizes) as u64);
    }

    // 3. Aggregate counters are consistent with the per-figure grids:
    // the four figures alone contribute 4 * grid evaluate_case calls.
    let cases = telemetry.counter("eval/cases");
    assert!(
        cases >= (4 * windows * anomaly_sizes) as u64,
        "eval/cases {cases} below the four-figure floor"
    );
    let classified: u64 = ["blind", "weak", "capable"]
        .iter()
        .map(|c| telemetry.counter(&format!("eval/classified/{c}")))
        .sum();
    assert_eq!(
        classified, cases,
        "every evaluated case must be classified exactly once"
    );

    // 4. The span hierarchy made it into the snapshot — including the
    // spans opened inside parallel fan-out jobs, which re-root under
    // the submitting experiment via `obs::context`.
    for span in [
        "span/report",
        "span/report/fig3_6_coverage",
        "span/report/fig3_6_coverage/coverage",
        "span/report/fig3_6_coverage/coverage/train",
    ] {
        assert!(
            telemetry.histogram(span).is_some(),
            "missing span histogram {span}"
        );
    }

    // 4b. Pool execution counters are mirrored into the snapshot, and
    // every parallel map's jobs are accounted for.
    assert!(
        telemetry.counter("par/maps_run") > 0,
        "the report must run at least one parallel map"
    );
    let total_jobs = telemetry.counter("par/jobs_executed");
    assert!(
        total_jobs >= telemetry.counter("par/maps_run"),
        "jobs executed must cover every map at least once"
    );
    let per_worker_jobs: u64 = (0..64)
        .map(|id| telemetry.counter(&format!("par/worker{id}/jobs_executed")))
        .sum();
    assert_eq!(
        per_worker_jobs, total_jobs,
        "per-worker job counters must sum to the total"
    );

    // 5. The snapshot round-trips through JSON deterministically.
    let a = serde_json::to_string(telemetry).expect("serialize");
    let b = serde_json::to_string(&report.telemetry).expect("serialize");
    assert_eq!(a, b);

    // 6. DETDIV_LOG=off (via the programmatic override) disables
    // collection entirely: the attached snapshot comes back empty.
    obs::set_max_level(obs::Level::Off);
    let off_report = FullReport::generate_on(&corpus).expect("report with telemetry off");
    obs::set_max_level(obs::Level::Warn);
    assert!(
        off_report.telemetry.is_empty(),
        "telemetry must be empty under DETDIV_LOG=off"
    );
    // The evaluation itself is unaffected by the switch.
    assert_eq!(
        off_report.fig5.detection_count(),
        report.fig5.detection_count()
    );
}

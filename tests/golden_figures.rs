//! Golden-master tests for the paper's rendered ASCII figures.
//!
//! The expected renderings live under `tests/golden/` and are compared
//! byte-for-byte — any drift in synthesis, detector behaviour, grid
//! geometry, or rendering shows up as a diff against the blessed text.
//! Figures 3–6 are additionally regenerated through the parallel
//! fan-out at several pool widths and once with the single-flight
//! trained-model cache disabled, so the golden files also pin down the
//! executor's determinism and the cache's transparency.
//!
//! To re-bless after an intentional change:
//! `DETDIV_BLESS=1 cargo test --test golden_figures` (then inspect the
//! diff under `tests/golden/` before committing).

use std::path::PathBuf;

use detdiv::eval::{fig2_incident_span, fig7_similarity, paper_coverage_maps};
use detdiv::par;
use detdiv::prelude::*;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the blessed file, or rewrites the file
/// when `DETDIV_BLESS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("DETDIV_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); run with DETDIV_BLESS=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden master; if intentional, re-bless with DETDIV_BLESS=1"
    );
}

/// The corpus every figure golden is rendered from (the same grid the
/// coverage unit tests use).
fn corpus() -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(40_000)
        .anomaly_sizes(2..=4)
        .windows(2..=6)
        .background_len(512)
        .plant_repeats(4)
        .seed(77)
        .build()
        .expect("valid config");
    Corpus::synthesize(&config).expect("corpus")
}

/// Figures 3–6: byte-for-byte against the golden masters, rendered
/// serially and through the parallel fan-out at widths 2, 4 and 8.
/// One test, because the global pool override is process-wide.
#[test]
fn figures_3_to_6_match_their_golden_masters_serial_and_parallel() {
    const GOLDEN: [&str; 4] = [
        "fig3_lane_brodley.txt",
        "fig4_markov.txt",
        "fig5_stide.txt",
        "fig6_neural.txt",
    ];
    let corpus = corpus();
    par::global().set_threads(Some(1));
    let serial: Vec<String> = paper_coverage_maps(&corpus)
        .expect("maps")
        .iter()
        .map(detdiv::core::CoverageMap::render)
        .collect();
    for (name, rendering) in GOLDEN.iter().zip(&serial) {
        assert_golden(name, rendering);
    }
    for threads in [2usize, 4, 8] {
        par::global().set_threads(Some(threads));
        let parallel: Vec<String> = paper_coverage_maps(&corpus)
            .expect("maps")
            .iter()
            .map(detdiv::core::CoverageMap::render)
            .collect();
        assert_eq!(
            parallel, serial,
            "parallel rendering diverged at {threads} threads"
        );
    }
    par::global().set_threads(None);

    // The runs above flow through the single-flight trained-model
    // cache (the default). Re-render with the cache disabled and hold
    // the result to the same golden masters: memoization must never
    // move a figure, and the blessed files need no re-bless on either
    // path.
    detdiv::cache::set_enabled(false);
    let uncached: Vec<String> = paper_coverage_maps(&corpus)
        .expect("maps")
        .iter()
        .map(detdiv::core::CoverageMap::render)
        .collect();
    detdiv::cache::set_enabled(true);
    assert_eq!(uncached, serial, "cache-off rendering diverged");
}

/// Figure 2: the incident-span worked example is corpus-independent.
#[test]
fn figure_2_matches_its_golden_master() {
    let fig2 = fig2_incident_span(5, 8).expect("fig2");
    let text = format!(
        "{}\nboundary sequences per side: {}; span length: {}\n",
        fig2.rendering, fig2.boundary_sequences_per_side, fig2.span_len
    );
    assert_golden("fig2_incident_span.txt", &text);
}

/// Figure 7: the Lane & Brodley similarity worked example.
#[test]
fn figure_7_matches_its_golden_master() {
    let fig7 = fig7_similarity();
    let text = format!(
        "identical size-5 sequences:     Sim = {} (max {})\nfinal-element mismatch:         Sim = {} -> response {:.3}\n",
        fig7.sim_identical, fig7.sim_max, fig7.sim_final_mismatch, fig7.response_final_mismatch
    );
    assert_golden("fig7_similarity.txt", &text);
}

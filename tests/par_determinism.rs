//! The determinism harness for the parallel grid-sweep executor.
//!
//! The `detdiv-par` pool promises that its output is a function of the
//! *input* alone — never of the worker count, chunk boundaries, or
//! scheduling. These tests hold the whole evaluation pipeline to that
//! promise: coverage maps, full reports, and rendered figures must be
//! bit-for-bit identical at every thread count — and, since PR 4,
//! whether or not the single-flight trained-model cache is sharing
//! models across those threads — thousands of tiny jobs
//! must merge losslessly, panics must propagate without poisoning the
//! pool, and a property test checks parallel-map == serial-map for
//! arbitrary inputs and pool widths.
//!
//! The global pool's thread override is process-global, so every test
//! that touches it runs under [`POOL_LOCK`].

use std::sync::Mutex;

use detdiv::eval::{coverage_maps_for, paper_coverage_maps};
use detdiv::par;
use detdiv::prelude::*;
use proptest::prelude::*;

/// Serializes tests that reconfigure the global pool.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global pool pinned to `threads` workers, releasing
/// the override afterwards even on panic (the lock tolerates poison).
fn with_global_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Release;
    impl Drop for Release {
        fn drop(&mut self) {
            par::global().set_threads(None);
        }
    }
    let _release = Release;
    par::global().set_threads(Some(threads));
    f()
}

fn lock_pool() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn small_corpus() -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(30_000)
        .anomaly_sizes(2..=4)
        .windows(2..=5)
        .background_len(512)
        .plant_repeats(4)
        .seed(77)
        .build()
        .expect("valid config");
    Corpus::synthesize(&config).expect("corpus")
}

/// Headline: the paper's four coverage maps serialize to identical
/// bytes for every thread count, including widths far beyond the job
/// count.
#[test]
fn paper_coverage_maps_are_byte_identical_across_thread_counts() {
    let _guard = lock_pool();
    let corpus = small_corpus();
    let reference = with_global_threads(1, || paper_coverage_maps(&corpus).expect("maps"));
    let reference_bytes = serde_json::to_string(&reference).expect("serialize");
    for threads in [2usize, 4, 8] {
        let maps = with_global_threads(threads, || paper_coverage_maps(&corpus).expect("maps"));
        assert_eq!(
            maps, reference,
            "coverage maps diverged at {threads} threads"
        );
        let bytes = serde_json::to_string(&maps).expect("serialize");
        assert_eq!(
            bytes, reference_bytes,
            "serialized bytes diverged at {threads} threads"
        );
    }
}

/// The rendered ASCII figures (what EXPERIMENTS.md quotes) are equally
/// schedule-independent.
#[test]
fn rendered_figures_are_identical_across_thread_counts() {
    let _guard = lock_pool();
    let corpus = small_corpus();
    let render = |threads: usize| {
        with_global_threads(threads, || {
            paper_coverage_maps(&corpus)
                .expect("maps")
                .iter()
                .map(detdiv::core::CoverageMap::render)
                .collect::<Vec<String>>()
        })
    };
    let serial = render(1);
    assert_eq!(serial, render(4));
    assert_eq!(serial, render(8));
}

/// A single-kind fan-out and the all-kinds fan-out agree with each
/// other at every width: the merge is independent of how jobs were
/// grouped.
#[test]
fn grouped_and_ungrouped_fanouts_agree() {
    let _guard = lock_pool();
    let corpus = small_corpus();
    let kinds = [DetectorKind::Stide, DetectorKind::Markov];
    let grouped = with_global_threads(3, || coverage_maps_for(&corpus, &kinds).expect("maps"));
    for (kind, map) in kinds.iter().zip(&grouped) {
        let single = with_global_threads(5, || coverage_map(&corpus, kind).expect("map"));
        assert_eq!(&single, map, "{}", kind.name());
    }
}

/// The full report — every figure, combination, ablation and analysis
/// of the paper — serializes to identical bytes at 1 and 4 threads once
/// the wall-time telemetry attachment is cleared. (Telemetry is the
/// *only* field allowed to differ: it records durations. The
/// `DETDIV_LOG=off` path, where the snapshot is empty and the raw bytes
/// must match, is exercised end-to-end by `scripts/ci.sh`'s
/// determinism gate.)
#[test]
fn full_report_is_byte_identical_across_thread_counts() {
    let _guard = lock_pool();
    let corpus = small_corpus();
    let report_at = |threads: usize| {
        with_global_threads(threads, || {
            let mut report = FullReport::generate_on(&corpus).expect("report");
            report.telemetry = Default::default();
            report
        })
    };
    let serial = report_at(1);
    let parallel = report_at(4);
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize"),
        serde_json::to_string(&parallel).expect("serialize"),
        "report bytes diverged between 1 and 4 threads"
    );
    assert_eq!(serial.render_text(), parallel.render_text());
}

/// The cache axis: the full report serializes to identical bytes across
/// {cache on, cache off} × {1, 4} threads. The single-flight
/// trained-model cache may only change *when* a model is trained, never
/// what any detector reports — and the cached passes must actually hit
/// (a zero hit count would mean the axis was not exercised).
#[test]
fn full_report_is_byte_identical_across_cache_and_thread_axes() {
    let _guard = lock_pool();
    struct RestoreCache;
    impl Drop for RestoreCache {
        fn drop(&mut self) {
            detdiv::cache::set_enabled(true);
        }
    }
    let _restore = RestoreCache;

    let corpus = small_corpus();
    let report_at = |cache_on: bool, threads: usize| {
        detdiv::cache::set_enabled(cache_on);
        with_global_threads(threads, || {
            let mut report = FullReport::generate_on(&corpus).expect("report");
            report.telemetry = Default::default();
            serde_json::to_string(&report).expect("serialize")
        })
    };

    let reference = report_at(true, 1);
    let stats_before = detdiv::cache::global().stats();
    for (cache_on, threads) in [(true, 4), (false, 1), (false, 4)] {
        assert_eq!(
            report_at(cache_on, threads),
            reference,
            "report bytes diverged at cache={cache_on} threads={threads}"
        );
    }
    let stats_after = detdiv::cache::global().stats();
    assert!(
        stats_after.hits > stats_before.hits,
        "the cached pass must share models (hits {} -> {})",
        stats_before.hits,
        stats_after.hits
    );
}

/// The streaming axis: with streamed scoring switched on (the
/// `regenerate --stream` path, where every test stream is pushed
/// event-by-event through the sliding-window adapters instead of being
/// scored in one batch call), the full report serializes to the *same
/// bytes as the batch reference* — at pool widths 1, 2, 4 and 8, with
/// the trained-model cache on and off. This is the report-level face of
/// the bit-identity contract `crates/stream/tests/differential.rs`
/// proves score-by-score.
#[test]
fn full_report_is_byte_identical_across_stream_cache_and_thread_axes() {
    let _guard = lock_pool();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            detdiv::eval::set_stream_scoring(false);
            detdiv::cache::set_enabled(true);
        }
    }
    let _restore = Restore;

    let corpus = small_corpus();
    let report_at = |streamed: bool, cache_on: bool, threads: usize| {
        detdiv::eval::set_stream_scoring(streamed);
        detdiv::cache::set_enabled(cache_on);
        with_global_threads(threads, || {
            let mut report = FullReport::generate_on(&corpus).expect("report");
            report.telemetry = Default::default();
            serde_json::to_string(&report).expect("serialize")
        })
    };

    let batch_reference = report_at(false, true, 1);
    for (cache_on, threads) in [(true, 1), (true, 2), (true, 4), (true, 8), (false, 2)] {
        assert_eq!(
            report_at(true, cache_on, threads),
            batch_reference,
            "streamed report bytes diverged from batch at cache={cache_on} threads={threads}"
        );
    }
}

/// Stress: thousands of tiny jobs with data-dependent results merge
/// into exactly the serial output, repeatedly, on one shared pool.
#[test]
fn stress_thousands_of_tiny_jobs_merge_losslessly() {
    let pool = par::Pool::with_threads(8);
    let items: Vec<u64> = (0..5_000).collect();
    let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0x9e37).collect();
    for round in 0..20 {
        let got = pool.map(&items, |&x| x.wrapping_mul(x) ^ 0x9e37);
        assert_eq!(got, expected, "round {round}");
    }
    assert_eq!(pool.stats().total_jobs(), 20 * 5_000);
}

/// Stress: a panicking job propagates its payload, the remaining jobs
/// still complete, and the pool stays usable afterwards.
#[test]
fn stress_panicking_jobs_do_not_poison_the_pool() {
    let pool = par::Pool::with_threads(4);
    let items: Vec<usize> = (0..1_000).collect();
    for _ in 0..5 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, |&x| {
                if x == 613 {
                    panic!("job 613 exploded");
                }
                x * 2
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(message.contains("613"), "unexpected payload {message:?}");
        // The pool is immediately reusable.
        let ok = pool.map(&items, |&x| x + 1);
        assert_eq!(ok[999], 1_000);
    }
}

/// Stress: errors abort deterministically — the reported failure is
/// always the smallest failing index, at every width.
#[test]
fn stress_error_selection_is_schedule_independent() {
    let items: Vec<usize> = (0..2_000).collect();
    for threads in [1usize, 2, 4, 8] {
        let pool = par::Pool::with_threads(threads);
        let err = pool
            .try_map(&items, |&x| {
                if x % 977 == 976 {
                    Err(format!("fail at {x}"))
                } else {
                    Ok(x)
                }
            })
            .expect_err("some job must fail");
        assert_eq!(err, "fail at 976", "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary inputs and pool widths, parallel map equals the
    /// serial map — element for element, in order.
    #[test]
    fn parallel_map_equals_serial_map(
        items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..200),
        threads in 1usize..=8,
    ) {
        let pool = par::Pool::with_threads(threads);
        let f = |&x: &i64| x.wrapping_mul(31).rotate_left(7) ^ 0x5bd1;
        let serial: Vec<i64> = items.iter().map(f).collect();
        let parallel = pool.map(&items, f);
        prop_assert_eq!(parallel, serial);
    }

    /// Fallible maps agree with the serial fold: same success vector,
    /// or the error of the first failing element.
    #[test]
    fn parallel_try_map_equals_serial_try_fold(
        items in proptest::collection::vec(0u32..50, 0..120),
        threads in 1usize..=6,
    ) {
        let pool = par::Pool::with_threads(threads);
        let f = |&x: &u32| if x == 13 { Err(x) } else { Ok(x * 3) };
        let serial: Result<Vec<u32>, u32> = items.iter().map(f).collect();
        let parallel = pool.try_map(&items, f);
        prop_assert_eq!(parallel, serial);
    }
}

//! Cross-crate property tests: invariants that must hold for *any*
//! synthesis seed, not just the fixtures the unit tests pin down.

use detdiv::core::LabeledCase;
use detdiv::detectors::MarkovDetector;
use detdiv::prelude::*;
use proptest::prelude::*;

fn small_corpus(seed: u64) -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(30_000)
        .anomaly_sizes(2..=4)
        .windows(2..=5)
        .background_len(512)
        .plant_repeats(3)
        .seed(seed)
        .build()
        .expect("valid config");
    Corpus::synthesize(&config).expect("corpus synthesizes for any seed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Synthesis succeeds and verifies for arbitrary seeds — the
    /// generate-and-verify loop is not luck-dependent.
    #[test]
    fn any_seed_produces_a_verified_corpus(seed in 0u64..1_000_000) {
        let corpus = small_corpus(seed);
        prop_assert!(corpus.verify().is_ok());
    }

    /// Every detector's responses stay within [0, 1] on every case, and
    /// Stide's are exactly binary.
    #[test]
    fn scores_are_bounded(seed in 0u64..1000, window in 2usize..=5) {
        let corpus = small_corpus(seed);
        let case = corpus.case(3, window).expect("case in grid");
        for kind in DetectorKind::paper_four() {
            let mut det = kind.build(window);
            det.train(case.training());
            let scores = det.scores(case.test_stream());
            prop_assert_eq!(
                scores.len(),
                case.test_stream().len() - window + 1,
                "{} length", det.name()
            );
            for (i, &s) in scores.iter().enumerate() {
                prop_assert!((0.0..=1.0).contains(&s), "{} at {i}: {s}", det.name());
            }
        }
        let mut stide = Stide::new(window);
        stide.train(case.training());
        for &s in &stide.scores(case.test_stream()) {
            prop_assert!(s == 0.0 || s == 1.0);
        }
    }

    /// Ground truth equivalence: Stide alarms exactly on the windows the
    /// training profile says are foreign.
    #[test]
    fn stide_alarms_are_exactly_foreign_windows(seed in 0u64..1000, window in 2usize..=5) {
        let corpus = small_corpus(seed);
        let case = corpus.case(4, window).expect("case in grid");
        let mut stide = Stide::new(window);
        stide.train(case.training());
        let scores = stide.scores(case.test_stream());
        let profile = StreamProfile::build(case.training(), window).expect("profile");
        for (i, w) in case.test_stream().windows(window).enumerate() {
            prop_assert_eq!(scores[i] == 1.0, profile.is_foreign(w), "window {}", i);
        }
    }

    /// Dominance: wherever Stide responds maximally (a foreign window),
    /// the Markov detector responds maximally too — the §7 subset
    /// relation at the level of individual responses.
    #[test]
    fn markov_dominates_stide_pointwise(seed in 0u64..1000, window in 2usize..=5) {
        let corpus = small_corpus(seed);
        let case = corpus.case(3, window).expect("case in grid");
        let mut stide = Stide::new(window);
        stide.train(case.training());
        let mut markov = MarkovDetector::new(window);
        markov.train(case.training());
        let s = stide.scores(case.test_stream());
        let m = markov.scores(case.test_stream());
        for i in 0..s.len() {
            if s[i] == 1.0 {
                prop_assert_eq!(m[i], 1.0, "position {}", i);
            }
        }
    }

    /// The evaluated outcome's maximum position always lies inside the
    /// incident span, and the outcome is reproducible.
    #[test]
    fn outcomes_are_in_span_and_deterministic(
        seed in 0u64..1000,
        anomaly_size in 2usize..=4,
        window in 2usize..=5,
    ) {
        let corpus = small_corpus(seed);
        let case = corpus.case(anomaly_size, window).expect("case in grid");
        let mut det = MarkovDetector::new(window);
        det.train(case.training());
        let a = evaluate_case(&det, &case).expect("outcome");
        let b = evaluate_case(&det, &case).expect("outcome");
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.span().contains(a.max_position()));
    }

    /// Lane & Brodley never responds maximally to any window of a test
    /// stream whose boundary windows are known — the Figure 3 blindness,
    /// for any seed.
    #[test]
    fn lane_brodley_never_maximal(seed in 0u64..1000, window in 2usize..=5) {
        let corpus = small_corpus(seed);
        let case = corpus.case(4, window).expect("case in grid");
        let mut lb = LaneBrodley::new(window);
        lb.train(case.training());
        for (i, &s) in lb.scores(case.test_stream()).iter().enumerate() {
            prop_assert!(s < 1.0, "position {i}: {s}");
        }
    }
}

//! Integration tests asserting the paper's headline claims (§3, §7, §8)
//! end to end: synthesis -> training -> scoring -> coverage analysis.
//!
//! Grid reduced relative to the paper (AS 2–5, DW 2–8, 80 k training
//! elements) to keep the suite fast; the full grid is exercised by the
//! `regenerate` binary and spot-checked in `tests/full_grid.rs`.

use detdiv::eval::{
    abl1_maximal_response_semantics, comb1_stide_markov_subset, comb2_stide_lb_union,
    comb3_suppression, coverage_map, expected_stide_map, SuppressionConfig,
};
use detdiv::prelude::*;
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let config = SynthesisConfig::builder()
            .training_len(80_000)
            .anomaly_sizes(2..=5)
            .windows(2..=8)
            .background_len(1024)
            .plant_repeats(4)
            .seed(20050628)
            .build()
            .expect("valid config");
        Corpus::synthesize(&config).expect("corpus synthesizes")
    })
}

/// Claim (1): "anomaly detectors designed to detect unequivocally
/// anomalous events can be completely blind to these events."
#[test]
fn claim1_detectors_can_be_blind_to_unequivocal_anomalies() {
    let corpus = corpus();
    // The anomaly is unequivocally anomalous: a verified MFS.
    corpus.verify().expect("corpus invariants hold");

    // Stide at DW < AS is blind to it.
    let stide = coverage_map(corpus, &DetectorKind::Stide).expect("map");
    assert!(!stide.detects(5, 2).expect("cell"));
    assert!(!stide.detects(4, 3).expect("cell"));

    // L&B is blind (never maximal) over the whole space.
    let lb = coverage_map(corpus, &DetectorKind::LaneBrodley).expect("map");
    assert_eq!(lb.detection_count(), 0);
}

/// Claim (2): "diversity in detection methods has a significant effect
/// on anomaly detection performance" — the four detectors, identical in
/// everything but their similarity metric, produce different coverage.
#[test]
fn claim2_diversity_changes_coverage() {
    let corpus = corpus();
    let maps: Vec<CoverageMap> = DetectorKind::paper_four()
        .iter()
        .map(|k| coverage_map(corpus, k).expect("map"))
        .collect();
    let counts: Vec<usize> = maps.iter().map(CoverageMap::detection_count).collect();
    // L&B detects nowhere, Markov/NN everywhere, Stide in between.
    // (defined_count excludes the undefined AS = 1 column.)
    let defined = maps[0].defined_count();
    assert_eq!(counts[0], 0, "L&B");
    assert_eq!(counts[1], defined, "Markov covers all defined cells");
    assert!(
        counts[2] > 0 && counts[2] < defined,
        "Stide is strictly in between"
    );
    assert_eq!(counts[3], counts[1], "NN mimics Markov");
}

/// Claim (3): diversity manifests as different *conditions* of
/// detection — Stide's condition is DW >= AS.
#[test]
fn claim3_stide_condition_is_window_at_least_anomaly() {
    let corpus = corpus();
    let measured = coverage_map(corpus, &DetectorKind::Stide).expect("map");
    let expected = expected_stide_map(corpus);
    for (a, w, cell) in expected.iter() {
        if cell.is_defined() {
            assert_eq!(
                measured.detects(a, w).expect("cell"),
                cell.is_detection(),
                "Stide at (AS {a}, DW {w})"
            );
        }
    }
}

/// Claim (4): detection conditions depend on detector parameter values —
/// the same detector family flips from capable to blind purely on DW.
#[test]
fn claim4_parameters_flip_detectability() {
    let corpus = corpus();
    let case_big = corpus.case(4, 6).expect("case");
    let case_small = corpus.case(4, 2).expect("case");

    let mut stide6 = Stide::new(6);
    stide6.train(case_big.training());
    let mut stide2 = Stide::new(2);
    stide2.train(case_small.training());

    assert_eq!(
        evaluate_case(&stide6, &case_big)
            .expect("outcome")
            .classification(),
        Classification::Capable
    );
    assert_eq!(
        evaluate_case(&stide2, &case_small)
            .expect("outcome")
            .classification(),
        Classification::Blind
    );
}

/// §7: Stide's coverage is a subset of the Markov detector's.
#[test]
fn section7_stide_subset_of_markov() {
    let r = comb1_stide_markov_subset(corpus()).expect("comb1");
    assert!(r.stide_subset_of_markov);
    assert!(r.markov_detections > r.stide_detections);
}

/// §8: combining Stide and L&B affords no detection gain.
#[test]
fn section8_stide_lb_union_gains_nothing() {
    let r = comb2_stide_lb_union(corpus()).expect("comb2");
    assert_eq!(r.lb_gain_over_stide, 0);
    assert!(r.union_equals_stide);
}

/// §7: the Markov + Stide suppression pairing keeps the hit and removes
/// the Markov detector's false alarms (at DW >= AS).
#[test]
fn section7_suppression_pairing() {
    let rows = comb3_suppression(
        corpus(),
        &SuppressionConfig {
            background_len: 8192,
            windows: vec![3],
            anomaly_sizes: vec![3],
            markov_rare_threshold: 0.02,
            seed: 11,
        },
    )
    .expect("comb3");
    let get = |name: &str| rows.iter().find(|r| r.detector == name).expect("row");
    let markov = get("markov");
    let combo = get("markov + stide suppression");
    assert!(markov.hit && combo.hit);
    assert!(markov.false_alarms > 0);
    assert!(combo.false_alarms < markov.false_alarms);
}

/// DESIGN.md §2.3: the rare-tolerance maximal-response rule is exactly
/// what separates Figure 4 from Figure 5 — under strict semantics the
/// Markov detector's coverage collapses to Stide's.
#[test]
fn maximal_response_semantics_drive_the_markov_edge() {
    let r = abl1_maximal_response_semantics(corpus()).expect("abl1");
    assert!(r.detections.0 > r.detections.1);
    assert!(r.strict_equals_stide);
}

/// The hypothesis of §3 — "all anomaly detectors are equally capable of
/// detecting anomalous events" — is refuted: there exists a cell where
/// one detector is capable and another blind.
#[test]
fn hypothesis_rejected() {
    let corpus = corpus();
    let case = corpus.case(5, 2).expect("case");

    let mut markov = MarkovDetector::new(2);
    markov.train(case.training());
    let mut stide = Stide::new(2);
    stide.train(case.training());

    let markov_outcome = evaluate_case(&markov, &case).expect("outcome");
    let stide_outcome = evaluate_case(&stide, &case).expect("outcome");
    assert_eq!(markov_outcome.classification(), Classification::Capable);
    assert_eq!(stide_outcome.classification(), Classification::Blind);
}

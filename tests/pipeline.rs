//! Cross-crate pipeline tests: pieces from every crate wired together
//! in ways the per-crate unit tests cannot exercise.

use detdiv::core::{
    alarms_at, analyze_alarms, threshold_sweep, AlarmEnsemble, CombinationRule, IncidentSpan,
    LabeledCase,
};
use detdiv::detectors::{MarkovDetector, StideLfc, TStide};
use detdiv::prelude::*;
use detdiv::trace::{generate_sendmail_like, mfs_census, TraceGenConfig, TraceSet};
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(1024)
            .plant_repeats(4)
            .seed(99)
            .build()
            .expect("valid config");
        Corpus::synthesize(&config).expect("corpus synthesizes")
    })
}

/// Footnote 1 of the paper: "The maximum anomalous response will always
/// register as an alarm regardless of where the detection threshold is
/// set." Sweep thresholds over a capable detector's responses and check
/// the hit never disappears at or below the in-span maximum.
#[test]
fn footnote1_maximum_response_always_registers() {
    let corpus = corpus();
    let case = corpus.case(3, 4).expect("case");
    let mut det = MarkovDetector::new(4);
    det.train(case.training());
    let scores = det.scores(case.test_stream());
    let span = IncidentSpan::compute(
        case.test_stream().len(),
        4,
        case.injection_position(),
        case.anomaly_len(),
    )
    .expect("span");
    let in_span_max = span
        .slice(&scores)
        .expect("span fits")
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * in_span_max / 10.0).collect();
    let points = threshold_sweep(&scores, span, &thresholds).expect("sweep");
    for p in &points {
        assert!(p.hit, "hit lost at threshold {}", p.threshold);
    }
    // Raising the threshold monotonically reduces false alarms.
    for pair in points.windows(2) {
        assert!(pair[1].false_alarm_rate <= pair[0].false_alarm_rate);
    }
}

/// An any-rule ensemble of Stide and the Markov detector has exactly the
/// Markov detector's coverage (the union of a set with its subset).
#[test]
fn union_ensemble_equals_markov_coverage() {
    let corpus = corpus();
    for (anomaly_size, window) in [(2usize, 2usize), (4, 2), (4, 6), (3, 5)] {
        let case = corpus.case(anomaly_size, window).expect("case");

        let mut ensemble = AlarmEnsemble::new(
            "stide ∪ markov",
            CombinationRule::Any,
            vec![
                Box::new(Stide::new(window)),
                Box::new(MarkovDetector::new(window)),
            ],
        );
        ensemble.train(case.training());
        let ensemble_outcome = evaluate_case(&ensemble, &case).expect("outcome");

        let mut markov = MarkovDetector::new(window);
        markov.train(case.training());
        let markov_outcome = evaluate_case(&markov, &case).expect("outcome");

        assert_eq!(
            ensemble_outcome.classification().is_detection(),
            markov_outcome.classification().is_detection(),
            "cell (AS {anomaly_size}, DW {window})"
        );
    }
}

/// An all-rule ensemble of Stide and L&B detects nothing anywhere: the
/// two detectors share their blind region (§8), and L&B never reaches a
/// maximal response.
#[test]
fn intersection_of_stide_and_lb_is_empty() {
    let corpus = corpus();
    for case in corpus.cases() {
        let window = case.window();
        let mut ensemble = AlarmEnsemble::new(
            "stide ∩ l&b",
            CombinationRule::All,
            vec![
                Box::new(Stide::new(window)),
                Box::new(LaneBrodley::new(window)),
            ],
        );
        ensemble.train(case.training());
        let outcome = evaluate_case(&ensemble, &case).expect("outcome");
        assert_ne!(
            outcome.classification(),
            Classification::Capable,
            "cell (AS {}, DW {})",
            case.anomaly_size(),
            window
        );
    }
}

/// t-stide sits strictly between Stide and the Markov detector: it
/// detects everything Stide does, plus the rare-composed anomalies at
/// windows where Stide is blind.
#[test]
fn tstide_extends_stide_coverage() {
    let corpus = corpus();
    let case = corpus.case(4, 3).expect("case"); // DW < AS: Stide blind

    let mut stide = Stide::new(3);
    stide.train(case.training());
    assert_eq!(
        evaluate_case(&stide, &case)
            .expect("outcome")
            .classification(),
        Classification::Blind
    );

    let mut tstide = TStide::new(3);
    tstide.train(case.training());
    assert_eq!(
        evaluate_case(&tstide, &case)
            .expect("outcome")
            .classification(),
        Classification::Capable,
        "t-stide should flag the rare planted flanks"
    );
}

/// The LFC post-processor suppresses an isolated foreign window below
/// plain Stide's maximal response — on the same trained database.
#[test]
fn lfc_pipeline_smooths_stide() {
    let corpus = corpus();
    let case = corpus.case(2, 4).expect("case");

    let mut plain = Stide::new(4);
    plain.train(case.training());
    let plain_alarm_count = alarms_at(&plain.scores(case.test_stream()), 1.0)
        .iter()
        .filter(|&&a| a)
        .count();

    let mut lfc = StideLfc::new(4, 16);
    lfc.train(case.training());
    let lfc_alarm_count = alarms_at(&lfc.scores(case.test_stream()), 1.0)
        .iter()
        .filter(|&&a| a)
        .count();

    assert!(plain_alarm_count > 0);
    assert_eq!(
        lfc_alarm_count, 0,
        "a frame of 16 dilutes a short anomaly burst"
    );
}

/// Detectors trained on trace data (rather than the synthetic corpus)
/// flag the census-discovered MFSs: the substrates compose.
#[test]
fn detectors_work_on_trace_streams() {
    let monday = generate_sendmail_like(&TraceGenConfig {
        processes: 6,
        events_per_process: 4000,
        seed: 100,
    })
    .expect("traces generate")
    .concatenated();
    let tuesday = generate_sendmail_like(&TraceGenConfig {
        processes: 2,
        events_per_process: 2000,
        seed: 200,
    })
    .expect("traces generate")
    .concatenated();

    let report = mfs_census(&monday, &tuesday, 6).expect("census");
    assert!(report.total() > 0);

    // Stide at DW = 6 must flag every window containing a full MFS of
    // length <= 6 (foreignness is upward closed).
    let mut stide = Stide::new(6);
    stide.train(&monday);
    let scores = stide.scores(&tuesday);
    let profile = StreamProfile::build(&monday, 6).expect("profile");
    let mut checked = 0;
    for (i, w) in tuesday.windows(6).enumerate() {
        if profile.is_foreign(w) {
            assert_eq!(scores[i], 1.0, "window {i}");
            checked += 1;
        }
    }
    assert!(checked > 0, "expected foreign windows in tuesday's traffic");
}

/// UNM round-trip composes with the census: parse -> census == census.
#[test]
fn unm_roundtrip_preserves_census() {
    let run = generate_sendmail_like(&TraceGenConfig {
        processes: 3,
        events_per_process: 1500,
        seed: 5,
    })
    .expect("traces generate");
    let other = generate_sendmail_like(&TraceGenConfig {
        processes: 3,
        events_per_process: 1500,
        seed: 6,
    })
    .expect("traces generate");

    let direct = mfs_census(&run.concatenated(), &other.concatenated(), 5).expect("census");
    let reparsed = TraceSet::parse(&other.to_unm_string()).expect("parse");
    let roundtrip = mfs_census(&run.concatenated(), &reparsed.concatenated(), 5).expect("census");
    assert_eq!(direct, roundtrip);
}

/// Noisy cases agree with clean cases on the hit verdict for DW >= AS;
/// they only differ in background false alarms.
#[test]
fn noisy_and_clean_cases_agree_on_hits() {
    let corpus = corpus();
    let clean = corpus.case(3, 5).expect("case");
    let noisy = corpus.noisy_case(3, 8192, 17).expect("noisy case");

    let mut stide = Stide::new(5);
    stide.train(clean.training());

    let clean_outcome = evaluate_case(&stide, &clean).expect("outcome");
    let noisy_outcome = evaluate_case(&stide, &noisy).expect("outcome");
    assert_eq!(clean_outcome.classification(), Classification::Capable);
    assert_eq!(noisy_outcome.classification(), Classification::Capable);

    // And the noisy background carries no in-span contamination: the
    // false alarms live outside the span.
    let span = noisy_outcome.span();
    let alarms = alarms_at(&stide.scores(noisy.test_stream()), 1.0);
    let analysis = analyze_alarms(&alarms, span).expect("analysis");
    assert!(analysis.hit);
}

//! Full paper-grid integration test: AS 2–9 × DW 2–15 at a reduced
//! training length, asserting the exact shape of Figures 3–5 cell by
//! cell. (Figure 6 — the neural network — is covered on a reduced grid
//! in the unit tests and at full scale by the `regenerate` binary; its
//! 14 per-window trainings are too slow for the default test profile.)

use detdiv::eval::{coverage_map, expected_stide_map};
use detdiv::prelude::*;

#[test]
fn figures_3_4_5_exact_shapes_on_the_paper_grid() {
    let config = SynthesisConfig::builder()
        .training_len(120_000)
        .background_len(2048)
        .seed(20050628)
        .build()
        .expect("paper grid config");
    assert_eq!(config.anomaly_sizes(), 2..=9);
    assert_eq!(config.windows(), 2..=15);
    let corpus = Corpus::synthesize(&config).expect("corpus");

    // Figure 5: Stide detects exactly when DW >= AS.
    let stide = coverage_map(&corpus, &DetectorKind::Stide).expect("stide map");
    let expected = expected_stide_map(&corpus);
    for (a, w, cell) in expected.iter() {
        if cell.is_defined() {
            assert_eq!(
                stide.detects(a, w).expect("cell"),
                cell.is_detection(),
                "Stide cell (AS {a}, DW {w})"
            );
        }
    }
    assert_eq!(stide.detection_count(), 84); // sum over AS=2..9 of (15 - max(AS,2) + 1)

    // Figure 4: the Markov detector covers the whole defined grid.
    let markov = coverage_map(&corpus, &DetectorKind::Markov).expect("markov map");
    assert_eq!(markov.detection_count(), 8 * 14);

    // Figure 3: Lane & Brodley never detects.
    let lb = coverage_map(&corpus, &DetectorKind::LaneBrodley).expect("lb map");
    assert_eq!(lb.detection_count(), 0);

    // §7 relations on the full grid.
    assert!(stide.is_subset_of(&markov).expect("same grid"));
    assert_eq!(stide.gain_from(&lb).expect("same grid"), 0);
}

//! Experiment harness reproducing every figure and analysis of Tan &
//! Maxion, *"The Effects of Algorithmic Diversity on Anomaly Detector
//! Performance"* (DSN 2005).
//!
//! Each experiment of DESIGN.md's index has a driver here:
//!
//! | ID | Driver |
//! |---|---|
//! | FIG2 | [`fig2_incident_span`] |
//! | FIG3–FIG6 | [`coverage_map`] / [`paper_coverage_maps`] |
//! | FIG7 | [`fig7_similarity`] |
//! | COMB1 | [`comb1_stide_markov_subset`] |
//! | COMB2 | [`comb2_stide_lb_union`] |
//! | COMB3 | [`comb3_suppression`] |
//! | ABL1 | [`abl1_maximal_response_semantics`] |
//! | ABL2 | [`abl2_locality_frame_count`] |
//! | ABL3 | [`abl3_nn_sensitivity`] |
//! | ABL4 | [`abl4_training_length`] |
//! | NAT1 | [`nat1_census`] |
//! | EXT1 | [`ext1_extended_families`] |
//! | DIV1 | [`div1_diversity_matrix`] |
//! | MASQ1 | [`masq1_lane_brodley_masquerade`] |
//! | FN1 | [`fn1_threshold_sweeps`] |
//! | ANA1 | [`ana1_response_map`] |
//!
//! [`FullReport::generate`] runs them all against one synthesized
//! corpus; the `detdiv-bench` crate's `regenerate` binary is a thin CLI
//! over it.
//!
//! ```
//! use detdiv_eval::{coverage_map, DetectorKind};
//! use detdiv_synth::{Corpus, SynthesisConfig};
//!
//! let config = SynthesisConfig::builder()
//!     .training_len(30_000)
//!     .anomaly_sizes(2..=3)
//!     .windows(2..=4)
//!     .background_len(512)
//!     .build()
//!     .unwrap();
//! let corpus = Corpus::synthesize(&config).unwrap();
//! let stide = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
//! println!("{}", stide.render()); // Figure 5 on a reduced grid
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod ablation;
mod analysis;
mod cached;
mod census;
pub mod checkpoint;
mod combination;
mod coverage;
mod diversity;
mod error;
mod extension;
mod figures;
mod kinds;
mod masquerade;
mod report;
mod streamed;

pub use ablation::{
    abl1_maximal_response_semantics, abl2_locality_frame_count, abl3_nn_sensitivity,
    abl4_training_length, stide_reference_on_noisy_case, LfcRow, NnSensitivityRow,
    SemanticsAblation, TrainingLenRow,
};
pub use analysis::{ana1_response_map, fn1_threshold_sweeps, ResponseMap, SweepResult};
pub use cached::trained_model;
pub use census::{nat1_census, CensusResult};
pub use combination::{
    comb1_stide_markov_subset, comb2_stide_lb_union, comb3_suppression, render_suppression_table,
    SubsetResult, SuppressionConfig, SuppressionRow, UnionGainResult,
};
pub use coverage::{coverage_map, coverage_maps_for, expected_stide_map, paper_coverage_maps};
pub use diversity::{div1_diversity_matrix, DiversityResult};
pub use error::HarnessError;
pub use extension::{ext1_extended_families, ExtensionResult};
pub use figures::{fig2_incident_span, fig7_similarity, Fig2Result, Fig7Result};
pub use kinds::DetectorKind;
pub use masquerade::{masq1_lane_brodley_masquerade, MasqueradeResult};
pub use report::FullReport;
pub use streamed::{apply_stream_env, set_stream_scoring, stream_scoring};

//! EXT1: additional detector families beyond the paper's four.
//!
//! The paper's diversity argument generalises: any detector that can
//! respond to *rare* sequences should cover the MFS space the way the
//! Markov detector does, and any detector restricted to exact matching
//! should share Stide's triangle. This experiment checks that prediction
//! for the two extension families taken from Warrender et al. (1999):
//! **t-stide** (frequency-thresholded matching), the **HMM** data model
//! and the **RIPPER**-style rule learner.

use detdiv_core::CoverageMap;
use detdiv_synth::Corpus;
use serde::{Deserialize, Serialize};

use crate::coverage::coverage_maps_for;
use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// Result of the EXT1 extension-coverage experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionResult {
    /// The t-stide coverage map.
    pub tstide_map: CoverageMap,
    /// The HMM coverage map.
    pub hmm_map: CoverageMap,
    /// The rule-based detector's coverage map.
    pub ripper_map: CoverageMap,
    /// Whether t-stide's detection region contains Stide's (it responds
    /// to everything Stide responds to, plus rare sequences).
    pub tstide_contains_stide: bool,
    /// Whether t-stide's detection region equals the Markov detector's
    /// (both respond to foreign and rare sequences).
    pub tstide_equals_markov: bool,
    /// Whether the HMM's detection region equals the Markov detector's
    /// (a latent-state model of the same conditionals).
    pub hmm_equals_markov: bool,
    /// Whether the rule learner's detection region equals the Markov
    /// detector's (confident rules are violated by the same rare/foreign
    /// material).
    pub ripper_equals_markov: bool,
}

/// Runs EXT1 on `corpus`.
///
/// # Errors
///
/// Propagates coverage-map computation failures.
pub fn ext1_extended_families(corpus: &Corpus) -> Result<ExtensionResult, HarnessError> {
    // All five families' (detector, DW) rows in one parallel fan-out.
    let mut maps = coverage_maps_for(
        corpus,
        &[
            DetectorKind::Stide,
            DetectorKind::Markov,
            DetectorKind::TStide,
            DetectorKind::hmm_default(),
            DetectorKind::ripper_default(),
        ],
    )?;
    let ripper_map = maps.pop().expect("five maps requested");
    let hmm_map = maps.pop().expect("five maps requested");
    let tstide_map = maps.pop().expect("five maps requested");
    let markov_map = maps.pop().expect("five maps requested");
    let stide_map = maps.pop().expect("five maps requested");
    let tstide_contains_stide = stide_map.is_subset_of(&tstide_map)?;
    let tstide_equals_markov =
        tstide_map.is_subset_of(&markov_map)? && markov_map.is_subset_of(&tstide_map)?;
    let hmm_equals_markov =
        hmm_map.is_subset_of(&markov_map)? && markov_map.is_subset_of(&hmm_map)?;
    let ripper_equals_markov =
        ripper_map.is_subset_of(&markov_map)? && markov_map.is_subset_of(&ripper_map)?;
    Ok(ExtensionResult {
        tstide_map,
        hmm_map,
        ripper_map,
        tstide_contains_stide,
        tstide_equals_markov,
        hmm_equals_markov,
        ripper_equals_markov,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    #[test]
    fn extensions_cover_like_their_class_predicts() {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=5)
            .background_len(512)
            .plant_repeats(4)
            .seed(8)
            .build()
            .unwrap();
        let corpus = Corpus::synthesize(&config).unwrap();
        let r = ext1_extended_families(&corpus).unwrap();
        assert!(r.tstide_contains_stide);
        assert!(r.tstide_equals_markov, "t-stide should cover the full grid");
        assert!(r.hmm_equals_markov, "the HMM should cover the full grid");
        assert!(
            r.ripper_equals_markov,
            "the rule learner should cover the full grid"
        );
        assert_eq!(r.hmm_map.detection_count(), 3 * 4);
        assert_eq!(r.ripper_map.detection_count(), 3 * 4);
    }
}

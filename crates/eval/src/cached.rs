//! Cached model acquisition: the one place experiments obtain trained
//! detectors.
//!
//! Every experiment that needs a `(kind, window)` model trained on a
//! given stream goes through [`trained_model`], which consults the
//! process-wide single-flight [`detdiv_cache::global`] cache. The first
//! request for a key trains (under a `train` telemetry span, exactly as
//! the pre-cache hot paths did); every later request — including
//! concurrent requests racing on other `detdiv-par` workers — shares the
//! same immutable [`TrainedModel`].
//!
//! The cache key couples the *data* (a fingerprint + length of the
//! training stream) with the *detector identity* (the full `Debug`
//! rendering of [`DetectorKind`], which includes every hyperparameter)
//! and the window, so distinct configurations can never collide. With
//! `DETDIV_CACHE=off` (or `regenerate --no-cache`) the lookup is a pure
//! pass-through and each call trains afresh — scoring is `&self`-pure
//! and retraining is deterministic (enforced by the conformance suite),
//! so results are byte-identical either way.

use std::sync::Arc;

use detdiv_cache::CacheKey;
use detdiv_core::TrainedModel;
use detdiv_resil::{CellOutcome, RetryPolicy};
use detdiv_sequence::Symbol;

use crate::kinds::DetectorKind;

/// Returns `kind` at `window`, trained on `training` — from the global
/// single-flight cache when enabled, freshly trained otherwise.
///
/// Concurrent callers requesting the same (stream, kind, window) while a
/// training run is in flight block until that single run publishes; no
/// duplicate training occurs.
///
/// The acquisition runs under [`detdiv_resil::supervised`]: a panic in
/// training (whether organic or injected at the `train/<detector>`
/// fault site) poisons and unlinks the cache slot, and the whole
/// lookup-or-train is retried with the default policy. Training is
/// deterministic, so a retried run publishes the identical model.
///
/// # Panics
///
/// Panics only after every retry is exhausted — the caller's own
/// supervision (e.g. a supervised coverage row) turns that into a
/// degraded cell instead of a dead sweep.
pub fn trained_model(
    training: &[Symbol],
    kind: &DetectorKind,
    window: usize,
) -> Arc<dyn TrainedModel> {
    trained_model_with_origin(training, kind, window).0
}

/// Provenance of one model acquisition, recorded into the flight audit
/// log alongside every cell decision the model contributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelOrigin {
    /// Fingerprint of the training stream (the cache key's `corpus`).
    pub corpus: u64,
    /// Length of the training stream.
    pub training_len: usize,
    /// How the cache satisfied the request: `off`, `hit`, `wait` or
    /// `miss`.
    pub cache: &'static str,
    /// Supervised retries the acquisition consumed (0 when healthy).
    pub retries: u32,
}

/// [`trained_model`] plus the acquisition's [`ModelOrigin`]: the cache
/// outcome of the final (successful) attempt, the retry count of the
/// supervision around it, and the training-stream identity.
///
/// # Panics
///
/// Exactly as [`trained_model`].
pub fn trained_model_with_origin(
    training: &[Symbol],
    kind: &DetectorKind,
    window: usize,
) -> (Arc<dyn TrainedModel>, ModelOrigin) {
    let key = CacheKey::for_training(training, format!("{kind:?}"), window);
    let site = format!("train/{}", kind.name());
    let outcome = detdiv_resil::supervised(&site, &RetryPolicy::default(), || {
        detdiv_cache::global().get_or_train_traced(&key, || {
            let mut detector = kind.build(window);
            {
                let _train = detdiv_obs::span!("train", detector = kind.name(), window = window);
                if detdiv_resil::armed() {
                    detdiv_resil::point(&site);
                }
                detector.train(training);
            }
            Arc::new(detector) as Arc<dyn TrainedModel>
        })
    });
    match outcome {
        CellOutcome::Ok {
            value: (model, cache_outcome),
            retries,
        } => {
            let origin = ModelOrigin {
                corpus: key.corpus,
                training_len: key.training_len,
                cache: cache_outcome.label(),
                retries,
            };
            (model, origin)
        }
        CellOutcome::Failed {
            site,
            attempts,
            error,
        } => panic!("training permanently failed at {site} after {attempts} attempts: {error}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn stream() -> Vec<Symbol> {
        symbols(&(0..200).map(|i| i % 8).collect::<Vec<_>>())
    }

    #[test]
    fn same_request_shares_a_model() {
        // Distinct window from other tests so this key is ours alone.
        let s = stream();
        let a = trained_model(&s, &DetectorKind::Stide, 5);
        let b = trained_model(&s, &DetectorKind::Stide, 5);
        if detdiv_cache::enabled() {
            assert!(Arc::ptr_eq(&a, &b));
        }
        assert_eq!(a.scores(&s), b.scores(&s));
    }

    #[test]
    fn origin_reports_cache_outcome_and_identity() {
        // Window 9 is this test's alone, so the first request leads.
        let s = stream();
        let (_, first) = trained_model_with_origin(&s, &DetectorKind::Stide, 9);
        let (_, second) = trained_model_with_origin(&s, &DetectorKind::Stide, 9);
        assert_eq!(first.training_len, s.len());
        assert_eq!(first.corpus, second.corpus);
        assert_eq!(first.retries, 0);
        if detdiv_cache::enabled() {
            assert_eq!(first.cache, "miss");
            assert_eq!(second.cache, "hit");
        } else {
            assert_eq!(first.cache, "off");
            assert_eq!(second.cache, "off");
        }
    }

    #[test]
    fn hyperparameters_are_part_of_the_key() {
        let s = stream();
        let loose = trained_model(
            &s,
            &DetectorKind::MarkovRare {
                rare_threshold: 0.02,
            },
            4,
        );
        let tight = trained_model(
            &s,
            &DetectorKind::MarkovRare {
                rare_threshold: 0.2,
            },
            4,
        );
        assert!(!Arc::ptr_eq(&loose, &tight));
        assert!(loose.maximal_response_floor() > tight.maximal_response_floor());
    }

    #[test]
    fn cached_scores_match_a_fresh_detector() {
        use detdiv_core::SequenceAnomalyDetector;
        let s = stream();
        let cached = trained_model(&s, &DetectorKind::Markov, 3);
        let mut fresh = DetectorKind::Markov.build(3);
        fresh.train(&s);
        assert_eq!(cached.scores(&s), fresh.scores(&s));
    }
}

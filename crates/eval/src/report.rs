//! The full experiment report: every figure and analysis of the paper,
//! regenerated in one pass.

use std::fmt::Write as _;

use detdiv_core::CoverageMap;
use detdiv_obs::TelemetrySnapshot;
use detdiv_synth::{Corpus, SynthesisConfig};
use serde::{Deserialize, Serialize};

use crate::ablation::{
    abl1_maximal_response_semantics, abl2_locality_frame_count, abl3_nn_sensitivity, LfcRow,
    NnSensitivityRow, SemanticsAblation,
};
use crate::analysis::{ana1_response_map, fn1_threshold_sweeps, ResponseMap, SweepResult};
use crate::census::{nat1_census, CensusResult};
use crate::combination::{
    comb1_stide_markov_subset, comb2_stide_lb_union, comb3_suppression, render_suppression_table,
    SubsetResult, SuppressionConfig, SuppressionRow, UnionGainResult,
};
use crate::coverage::paper_coverage_maps;
use crate::diversity::{div1_diversity_matrix, DiversityResult};
use crate::error::HarnessError;
use crate::extension::{ext1_extended_families, ExtensionResult};
use crate::figures::{fig2_incident_span, fig7_similarity, Fig2Result, Fig7Result};
use crate::kinds::DetectorKind;
use crate::masquerade::{masq1_lane_brodley_masquerade, MasqueradeResult};

/// Everything the paper's evaluation section reports, regenerated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullReport {
    /// The synthesis configuration the corpus was built from.
    pub config: SynthesisConfig,
    /// The synthesized anomalies, `(size, rendering)`.
    pub anomalies: Vec<(usize, String)>,
    /// Figure 2: incident-span worked example.
    pub fig2: Fig2Result,
    /// Figure 3: Lane & Brodley coverage map.
    pub fig3: CoverageMap,
    /// Figure 4: Markov coverage map.
    pub fig4: CoverageMap,
    /// Figure 5: Stide coverage map.
    pub fig5: CoverageMap,
    /// Figure 6: neural-network coverage map.
    pub fig6: CoverageMap,
    /// Figure 7: L&B similarity worked example.
    pub fig7: Fig7Result,
    /// COMB1: Stide ⊆ Markov.
    pub comb1: SubsetResult,
    /// COMB2: Stide ∪ L&B affords no gain.
    pub comb2: UnionGainResult,
    /// COMB3: suppression table.
    pub comb3: Vec<SuppressionRow>,
    /// ABL1: maximal-response semantics.
    pub abl1: SemanticsAblation,
    /// ABL2: locality frame count.
    pub abl2: Vec<LfcRow>,
    /// ABL3: neural-network parameter sensitivity.
    pub abl3: Vec<NnSensitivityRow>,
    /// NAT1: MFS census over synthetic traces.
    pub nat1: CensusResult,
    /// EXT1: extension families (t-stide, HMM).
    pub ext1: ExtensionResult,
    /// DIV1: the pairwise diversity matrix over all families.
    pub div1: DiversityResult,
    /// MASQ1: Lane & Brodley on its home turf (masquerade detection).
    pub masq1: MasqueradeResult,
    /// FN1: footnote-1 threshold sweeps.
    pub fn1: Vec<SweepResult>,
    /// ANA1: the Lane & Brodley maximum-response map (the analogue
    /// signal under Figure 3).
    pub ana1_lb: ResponseMap,
    /// Run telemetry: per-detector timing histograms, counters, and
    /// per-(AS × DW) cell wall times recorded while this report was
    /// generated. Empty when telemetry is disabled (`DETDIV_LOG=off`)
    /// or when deserializing reports written before this field existed.
    #[serde(default)]
    pub telemetry: TelemetrySnapshot,
}

/// Runs one named experiment under a telemetry span and logs its
/// completion at info level.
fn step<T>(
    name: &'static str,
    f: impl FnOnce() -> Result<T, HarnessError>,
) -> Result<T, HarnessError> {
    let span = detdiv_obs::span!(name);
    let result = f();
    detdiv_obs::info!(
        "experiment finished",
        experiment = name,
        elapsed_ms = span.elapsed().as_millis(),
        ok = result.is_ok(),
    );
    if result.is_ok() {
        // Coarse progress counter: the live scope sampler graphs it as
        // a rate, and a stalled run shows up as a flat line.
        detdiv_obs::incr_counter("eval/experiments_completed", 1);
    }
    if detdiv_obs::trace::armed() {
        // Periodic counter samples: one point per experiment step, so
        // the exported trace graphs pool progress as a time series.
        let stats = detdiv_par::global().stats();
        detdiv_obs::trace::counter("par/jobs_executed", stats.total_jobs());
        detdiv_obs::trace::counter("par/steals", stats.total_steals());
    }
    result
}

impl FullReport {
    /// Synthesizes a corpus for `config` and runs every experiment.
    ///
    /// # Errors
    ///
    /// Propagates the first failing synthesis or experiment.
    pub fn generate(config: &SynthesisConfig) -> Result<FullReport, HarnessError> {
        detdiv_obs::reset();
        detdiv_par::global().reset_stats();
        let corpus = {
            let _span = detdiv_obs::span!("synthesize");
            Corpus::synthesize(config)?
        };
        Self::experiments(&corpus)
    }

    /// Runs every experiment on an existing corpus.
    ///
    /// Telemetry is reset on entry, so the attached
    /// [`FullReport::telemetry`] snapshot covers exactly this run (it
    /// excludes corpus synthesis, which the caller performed; use
    /// [`FullReport::generate`] to include it).
    ///
    /// # Errors
    ///
    /// Propagates the first failing experiment.
    pub fn generate_on(corpus: &Corpus) -> Result<FullReport, HarnessError> {
        detdiv_obs::reset();
        detdiv_par::global().reset_stats();
        Self::experiments(corpus)
    }

    /// Runs every experiment without resetting telemetry, then attaches
    /// the accumulated snapshot.
    fn experiments(corpus: &Corpus) -> Result<FullReport, HarnessError> {
        // The audit log's run identity: every cell record that follows
        // carries this corpus fingerprint, and `flightcheck` filters on
        // it before reconstructing the paper maps.
        if detdiv_flight::armed() {
            detdiv_flight::record(
                detdiv_flight::HeaderRecord {
                    corpus: detdiv_cache::fingerprint_stream(corpus.training()),
                    training_len: corpus.training().len(),
                }
                .render(),
            );
        }
        let config = corpus.config().clone();
        let mid_anomaly = (config.min_anomaly() + config.max_anomaly()) / 2;
        let mid_window = mid_anomaly
            .max(config.min_window() + 1)
            .min(config.max_window());
        let suppression = SuppressionConfig {
            windows: vec![config.min_window(), mid_window],
            anomaly_sizes: vec![config.min_anomaly(), mid_anomaly],
            ..SuppressionConfig::default()
        };
        let mut report = {
            let _report_span = detdiv_obs::span!("report");
            let fig2 = step("fig2_incident_span", || fig2_incident_span(5, 8))?;
            // Figures 3–6 share one parallel fan-out over every
            // (detector, DW) grid row; `paper_four()` order is figure
            // order (L&B, Markov, Stide, neural network).
            let mut paper_maps = step("fig3_6_coverage", || paper_coverage_maps(corpus))?;
            let fig6 = paper_maps.pop().expect("four paper maps");
            let fig5 = paper_maps.pop().expect("four paper maps");
            let fig4 = paper_maps.pop().expect("four paper maps");
            let fig3 = paper_maps.pop().expect("four paper maps");
            FullReport {
                anomalies: corpus
                    .anomalies()
                    .map(|a| (a.len(), a.to_string()))
                    .collect(),
                fig2,
                fig3,
                fig4,
                fig5,
                fig6,
                fig7: step("fig7_similarity", || Ok(fig7_similarity()))?,
                comb1: step("comb1_subset", || comb1_stide_markov_subset(corpus))?,
                comb2: step("comb2_union", || comb2_stide_lb_union(corpus))?,
                comb3: step("comb3_suppression", || {
                    comb3_suppression(corpus, &suppression)
                })?,
                abl1: step("abl1_semantics", || abl1_maximal_response_semantics(corpus))?,
                abl2: step("abl2_lfc", || {
                    abl2_locality_frame_count(corpus, mid_window, mid_anomaly, 4096, 3)
                })?,
                abl3: step("abl3_nn_sensitivity", || {
                    abl3_nn_sensitivity(corpus, mid_window, mid_anomaly)
                })?,
                nat1: step("nat1_census", || {
                    nat1_census(100, 200, config.max_anomaly().min(8))
                })?,
                ext1: step("ext1_extensions", || ext1_extended_families(corpus))?,
                div1: step("div1_diversity", || div1_diversity_matrix(corpus))?,
                masq1: step("masq1_masquerade", || masq1_lane_brodley_masquerade(5, 11))?,
                fn1: step("fn1_sweeps", || {
                    fn1_threshold_sweeps(corpus, mid_anomaly, mid_window)
                })?,
                ana1_lb: step("ana1_response_map", || {
                    ana1_response_map(corpus, &DetectorKind::LaneBrodley)
                })?,
                telemetry: TelemetrySnapshot::default(),
                config,
            }
        };
        // Mirror the pool's accumulated per-worker counters into the
        // run telemetry, so the snapshot records how the grid work was
        // executed (worker count, job distribution, steals, parks) —
        // not just how long it took.
        let pool_stats = detdiv_par::global().stats();
        detdiv_obs::set_counter("par/maps_run", pool_stats.maps_run);
        detdiv_obs::set_counter("par/workers", pool_stats.workers.len() as u64);
        detdiv_obs::set_counter("par/jobs_executed", pool_stats.total_jobs());
        detdiv_obs::set_counter("par/steals", pool_stats.total_steals());
        detdiv_obs::set_counter("par/idle_parks", pool_stats.total_idle_parks());
        detdiv_obs::set_counter("par/busy_ns", pool_stats.total_busy_nanos());
        for (id, worker) in pool_stats.workers.iter().enumerate() {
            detdiv_obs::set_counter(
                &format!("par/worker{id}/jobs_executed"),
                worker.jobs_executed,
            );
            detdiv_obs::set_counter(&format!("par/worker{id}/steals"), worker.steals);
            detdiv_obs::set_counter(&format!("par/worker{id}/idle_parks"), worker.idle_parks);
            detdiv_obs::set_counter(&format!("par/worker{id}/busy_ns"), worker.busy_nanos);
        }
        // Mirror the model cache's live occupancy (the hit/miss/wait
        // event counters were already incremented by `detdiv-cache` as
        // they happened, so they are in the snapshot via the ordinary
        // counter path).
        if detdiv_cache::enabled() {
            let cache_stats = detdiv_cache::global().stats();
            detdiv_obs::set_counter("cache/resident_bytes", cache_stats.resident_bytes);
            detdiv_obs::set_counter("cache/resident_entries", cache_stats.entries as u64);
        }
        // Mirror the fault-injection and supervision counters. The
        // resil crate sits below obs and keeps its own atomics; this is
        // the layer that depends on both, so the snapshot records what
        // the supervised sweep absorbed (all zero on fault-free runs).
        let resil_stats = detdiv_resil::stats();
        detdiv_obs::set_counter("resil/injected_panics", resil_stats.injected_panics);
        detdiv_obs::set_counter("resil/injected_io_errors", resil_stats.injected_io_errors);
        detdiv_obs::set_counter("resil/injected_stalls", resil_stats.injected_stalls);
        detdiv_obs::set_counter("resil/supervised_cells", resil_stats.supervised_cells);
        detdiv_obs::set_counter("resil/retries", resil_stats.retries);
        detdiv_obs::set_counter("resil/degraded_cells", resil_stats.degraded_cells);
        detdiv_obs::set_counter("resil/watchdog_trips", resil_stats.watchdog_trips);
        // Snapshot after the report span closes, so `span/report`
        // itself is part of the attached telemetry.
        report.telemetry = detdiv_obs::snapshot();
        Ok(report)
    }

    /// Renders the whole report as the text the `regenerate` binary
    /// prints and `EXPERIMENTS.md` quotes.
    pub fn render_text(&self) -> String {
        let mut out = String::new();

        let _ = writeln!(out, "\n=== Corpus ===");
        let _ = writeln!(
            out,
            "training: ~{} elements, alphabet {}, noise {:.3}, rare threshold {:.4}",
            self.config.training_len(),
            self.config.alphabet_size(),
            self.config.noise(),
            self.config.rare_threshold()
        );
        for (size, a) in &self.anomalies {
            let _ = writeln!(out, "  MFS size {size}: {a}");
        }

        let _ = writeln!(
            out,
            "\n=== FIG2 — boundary sequences and the incident span (DW 5, AS 8) ==="
        );
        let _ = writeln!(
            out,
            "{}\nboundary sequences per side: {}; span length: {}",
            self.fig2.rendering, self.fig2.boundary_sequences_per_side, self.fig2.span_len
        );

        let _ = writeln!(
            out,
            "\n=== FIG3 — detection coverage, Lane & Brodley (paper: blind everywhere) ==="
        );
        let _ = writeln!(out, "{}", self.fig3.render());
        let _ = writeln!(
            out,
            "\n=== FIG4 — detection coverage, Markov (paper: detects everywhere) ==="
        );
        let _ = writeln!(out, "{}", self.fig4.render());
        let _ = writeln!(
            out,
            "\n=== FIG5 — detection coverage, Stide (paper: detects iff DW >= AS) ==="
        );
        let _ = writeln!(out, "{}", self.fig5.render());
        let _ = writeln!(
            out,
            "\n=== FIG6 — detection coverage, neural network (paper: mimics Markov) ==="
        );
        let _ = writeln!(out, "{}", self.fig6.render());

        let _ = writeln!(out, "\n=== FIG7 — L&B similarity worked example ===");
        let _ = writeln!(
            out,
            "identical size-5 sequences:     Sim = {} (max {})\nfinal-element mismatch:         Sim = {} -> response {:.3} (\"close to normal\")",
            self.fig7.sim_identical, self.fig7.sim_max, self.fig7.sim_final_mismatch,
            self.fig7.response_final_mismatch
        );

        let _ = writeln!(
            out,
            "\n=== COMB1 — Stide coverage is a subset of Markov coverage ==="
        );
        let _ = writeln!(
            out,
            "subset holds: {}; detections stide={} markov={}; jaccard {:.3}",
            self.comb1.stide_subset_of_markov,
            self.comb1.stide_detections,
            self.comb1.markov_detections,
            self.comb1.jaccard
        );

        let _ = writeln!(
            out,
            "\n=== COMB2 — Stide ∪ L&B affords no detection gain ==="
        );
        let _ = writeln!(
            out,
            "L&B detections: {}; gain over Stide: {}; union equals Stide: {}",
            self.comb2.lb_detections, self.comb2.lb_gain_over_stide, self.comb2.union_equals_stide
        );

        let _ = writeln!(
            out,
            "\n=== COMB3 — Markov detects, Stide suppresses false alarms ==="
        );
        let _ = writeln!(out, "{}", render_suppression_table(&self.comb3));

        let _ = writeln!(
            out,
            "\n=== ABL1 — maximal-response semantics (DESIGN.md §2.3) ==="
        );
        let _ = writeln!(
            out,
            "tolerant detections: {}; strict detections: {}; strict region equals Stide's: {}",
            self.abl1.detections.0, self.abl1.detections.1, self.abl1.strict_equals_stide
        );

        let _ = writeln!(
            out,
            "\n=== ABL2 — Stide's locality frame count (suppressed by the paper's §5.5) ==="
        );
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>5} {:>13}",
            "frame", "threshold", "hit", "false alarms"
        );
        for r in &self.abl2 {
            let _ = writeln!(
                out,
                "{:>6} {:>10.2} {:>5} {:>13}",
                r.frame,
                r.threshold,
                if r.hit { "yes" } else { "no" },
                r.false_alarms
            );
        }

        let _ = writeln!(
            out,
            "\n=== ABL3 — neural-network parameter sensitivity (§7 caveat) ==="
        );
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>9} {:>7} {:>13} {:>8}",
            "hidden", "lr", "momentum", "epochs", "max response", "capable"
        );
        for r in &self.abl3 {
            let _ = writeln!(
                out,
                "{:>7} {:>6.3} {:>9.2} {:>7} {:>13.4} {:>8}",
                r.hidden,
                r.learning_rate,
                r.momentum,
                r.epochs,
                r.max_response,
                if r.capable { "yes" } else { "no" }
            );
        }

        let _ = writeln!(
            out,
            "\n=== NAT1 — minimal foreign sequences in natural(-looking) traces (§4.1) ==="
        );
        let _ = writeln!(
            out,
            "training events: {}\n{}",
            self.nat1.training_events, self.nat1.report
        );

        let _ = writeln!(
            out,
            "\n=== EXT1 — extension families: t-stide and the HMM (Warrender et al. 1999) ==="
        );
        let _ = writeln!(out, "{}", self.ext1.tstide_map.render());
        let _ = writeln!(out, "{}", self.ext1.hmm_map.render());
        let _ = writeln!(out, "{}", self.ext1.ripper_map.render());
        let _ = writeln!(
            out,
            "t-stide contains Stide: {}; t-stide equals Markov: {}; HMM equals Markov: {}; RIPPER equals Markov: {}",
            self.ext1.tstide_contains_stide,
            self.ext1.tstide_equals_markov,
            self.ext1.hmm_equals_markov,
            self.ext1.ripper_equals_markov
        );

        let _ = writeln!(
            out,
            "\n=== DIV1 — pairwise diversity matrix over all families ==="
        );
        let _ = writeln!(out, "{}", self.div1.matrix.render());
        let _ = writeln!(out, "no-coverage-gain pairs: {:?}", self.div1.no_gain_pairs);
        let _ = writeln!(
            out,
            "subset pairs (smaller ⊂ larger): {:?}",
            self.div1.subset_pairs
        );
        let _ = writeln!(
            out,
            "complementary pairs: {:?}",
            self.div1.complementary_pairs
        );

        let _ = writeln!(
            out,
            "\n=== MASQ1 — Lane & Brodley on its home turf (masquerade detection) ==="
        );
        let _ = writeln!(
            out,
            "mean profile similarity at DW {}: self {:.3}, masquerader {:.3} (margin {:.3}); segment-separable: {}",
            self.masq1.window,
            self.masq1.self_similarity,
            self.masq1.masquerader_similarity,
            self.masq1.margin,
            self.masq1.separable
        );

        let _ = writeln!(
            out,
            "\n=== FN1 — footnote 1: the maximum response always registers ==="
        );
        for sweep in &self.fn1 {
            let _ = writeln!(
                out,
                "{:<16} in-span max {:.4}; hit survives every threshold <= max: {}",
                sweep.detector, sweep.in_span_max, sweep.hit_never_lost_below_max
            );
        }

        let _ = writeln!(
            out,
            "\n=== ANA1 — max in-span responses under Figure 3 (Lane & Brodley) ==="
        );
        let _ = writeln!(out, "{}", self.ana1_lb.render());

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end smoke test of the full report on a reduced grid.
    /// (The paper-scale run lives in the `regenerate` binary.)
    #[test]
    fn full_report_generates_and_renders() {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=5)
            .background_len(512)
            .plant_repeats(4)
            .seed(3)
            .build()
            .unwrap();
        let report = FullReport::generate(&config).unwrap();

        // Headline shapes.
        assert_eq!(report.fig3.detection_count(), 0);
        assert_eq!(report.fig4.detection_count(), 3 * 4);
        assert!(report.comb1.stide_subset_of_markov);
        assert_eq!(report.comb2.lb_gain_over_stide, 0);
        assert!(report.abl1.strict_equals_stide);

        let text = report.render_text();
        for needle in [
            "FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "COMB1", "COMB2", "COMB3", "ABL1", "ABL2",
            "ABL3", "NAT1", "EXT1", "DIV1", "MASQ1", "FN1", "ANA1",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }

        // JSON round-trip.
        let json = serde_json::to_string(&report).unwrap();
        let back: FullReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fig7.sim_final_mismatch, 10);
    }
}

//! NAT1: minimal foreign sequences in natural(-looking) data (§4.1).

use detdiv_trace::{generate_sendmail_like, mfs_census, CensusReport, TraceGenConfig};
use serde::{Deserialize, Serialize};

use crate::error::HarnessError;

/// Result of the NAT1 census experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensusResult {
    /// Events in the training corpus.
    pub training_events: usize,
    /// The per-length MFS census of the scanned corpus.
    pub report: CensusReport,
    /// Number of MFS lengths with at least one occurrence.
    pub lengths_observed: usize,
}

/// Runs NAT1: generates two sendmail-like trace corpora from different
/// seeds (standing in for "train on Monday, monitor on Tuesday"), then
/// counts minimal foreign sequences of lengths `2..=max_len` in the
/// second relative to the first.
///
/// # Errors
///
/// Propagates trace generation and census failures.
pub fn nat1_census(
    training_seed: u64,
    monitoring_seed: u64,
    max_len: usize,
) -> Result<CensusResult, HarnessError> {
    let training_run = generate_sendmail_like(&TraceGenConfig {
        processes: 8,
        events_per_process: 4000,
        seed: training_seed,
    })?;
    let monitoring_run = generate_sendmail_like(&TraceGenConfig {
        processes: 4,
        events_per_process: 3000,
        seed: monitoring_seed,
    })?;
    let training = training_run.concatenated();
    let monitored = monitoring_run.concatenated();
    let report = mfs_census(&training, &monitored, max_len)?;
    let lengths_observed = report.counts.iter().filter(|&&(_, c)| c > 0).count();
    Ok(CensusResult {
        training_events: training.len(),
        report,
        lengths_observed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_finds_mfs_of_varying_lengths() {
        let r = nat1_census(100, 200, 8).unwrap();
        assert!(r.report.total() > 0);
        assert!(r.lengths_observed >= 2, "{:?}", r.report);
        assert!(r.training_events > 0);
    }

    #[test]
    fn census_is_deterministic() {
        let a = nat1_census(1, 2, 6).unwrap();
        let b = nat1_census(1, 2, 6).unwrap();
        assert_eq!(a, b);
    }
}

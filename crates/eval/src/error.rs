//! Error types for the experiment harness.

use std::error::Error;
use std::fmt;

use detdiv_core::EvalError;
use detdiv_synth::SynthesisError;
use detdiv_trace::TraceError;

/// Errors arising while driving an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// Corpus synthesis failed.
    Synthesis(SynthesisError),
    /// The evaluation framework rejected an operation.
    Eval(EvalError),
    /// Trace generation or parsing failed.
    Trace(TraceError),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Synthesis(e) => write!(f, "synthesis: {e}"),
            HarnessError::Eval(e) => write!(f, "evaluation: {e}"),
            HarnessError::Trace(e) => write!(f, "trace: {e}"),
        }
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarnessError::Synthesis(e) => Some(e),
            HarnessError::Eval(e) => Some(e),
            HarnessError::Trace(e) => Some(e),
        }
    }
}

impl From<SynthesisError> for HarnessError {
    fn from(e: SynthesisError) -> Self {
        HarnessError::Synthesis(e)
    }
}

impl From<EvalError> for HarnessError {
    fn from(e: EvalError) -> Self {
        HarnessError::Eval(e)
    }
}

impl From<TraceError> for HarnessError {
    fn from(e: TraceError) -> Self {
        HarnessError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_sources() {
        let e = HarnessError::from(SynthesisError::AnomalySearchFailed { attempts: 3 });
        assert!(e.to_string().contains("synthesis"));
        assert!(e.source().is_some());
        let e = HarnessError::from(EvalError::GridMismatch);
        assert!(e.to_string().contains("evaluation"));
        let e = HarnessError::from(TraceError::Empty);
        assert!(e.to_string().contains("trace"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<HarnessError>();
    }
}

//! Quantitative side-analyses: FN1 (the paper's footnote 1) and ANA1
//! (maximum-response maps underneath the binary coverage maps).

use detdiv_core::{evaluate_case, threshold_sweep, IncidentSpan, LabeledCase, RocPoint};
use detdiv_synth::Corpus;
use serde::{Deserialize, Serialize};

use crate::cached::trained_model;
use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// FN1 result: one detector's threshold sweep at one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Detector name.
    pub detector: String,
    /// Grid cell (AS, DW).
    pub anomaly_size: usize,
    /// Detector window.
    pub window: usize,
    /// The in-span maximum response.
    pub in_span_max: f64,
    /// Sweep points over thresholds `0.1, 0.2, .., 1.0` of the in-span
    /// maximum.
    pub points: Vec<RocPoint>,
    /// Footnote 1's claim: the hit survives at every threshold at or
    /// below the in-span maximum.
    pub hit_never_lost_below_max: bool,
}

/// FN1: "The maximum anomalous response will always register as an alarm
/// regardless of where the detection threshold is set." Sweeps the
/// detection threshold across the unit interval (scaled to the in-span
/// maximum) for each paper detector at one grid cell.
///
/// # Errors
///
/// Propagates synthesis and evaluation failures.
pub fn fn1_threshold_sweeps(
    corpus: &Corpus,
    anomaly_size: usize,
    window: usize,
) -> Result<Vec<SweepResult>, HarnessError> {
    let case = corpus.case(anomaly_size, window)?;
    let test = case.test_stream();
    let span = IncidentSpan::compute(
        test.len(),
        window,
        case.injection_position(),
        case.anomaly_len(),
    )?;
    // Each paper detector sweeps independently: fan the four out;
    // results come back in `paper_four()` order. Models come from the
    // single-flight cache (the coverage grid usually trained them
    // already).
    let kinds = DetectorKind::paper_four();
    detdiv_par::par_try_map(&kinds, |kind| {
        let det = trained_model(case.training(), kind, window);
        let scores = det.scores(test);
        let in_span_max = span
            .slice(&scores)?
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let thresholds: Vec<f64> = (1..=10)
            .map(|i| in_span_max * i as f64 / 10.0)
            .filter(|&t| t > 0.0)
            .collect();
        let points = threshold_sweep(&scores, span, &thresholds)?;
        let hit_never_lost_below_max = points.iter().all(|p| p.hit);
        Ok(SweepResult {
            detector: det.name().to_owned(),
            anomaly_size,
            window,
            in_span_max,
            points,
            hit_never_lost_below_max,
        })
    })
}

/// ANA1 result: the maximum in-span response per grid cell, for one
/// detector — the analogue signal underneath the binary coverage map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseMap {
    /// Detector name.
    pub detector: String,
    /// Anomaly sizes, ascending.
    pub anomaly_sizes: Vec<usize>,
    /// Detector windows, ascending.
    pub windows: Vec<usize>,
    /// Row-major by window, then anomaly size.
    pub max_responses: Vec<f64>,
}

impl ResponseMap {
    /// The maximum response at cell (AS, DW), if on the grid.
    pub fn get(&self, anomaly_size: usize, window: usize) -> Option<f64> {
        let ai = self.anomaly_sizes.iter().position(|&a| a == anomaly_size)?;
        let wi = self.windows.iter().position(|&w| w == window)?;
        Some(self.max_responses[wi * self.anomaly_sizes.len() + ai])
    }

    /// Renders the map with two-digit percent cells (`..` for 0).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Max in-span response of {} (percent; y: DW, x: AS)\n",
            self.detector
        );
        for (wi, &w) in self.windows.iter().enumerate().rev() {
            out.push_str(&format!("{w:>4} |"));
            for ai in 0..self.anomaly_sizes.len() {
                let r = self.max_responses[wi * self.anomaly_sizes.len() + ai];
                if r <= 0.0 {
                    out.push_str("  ..");
                } else {
                    out.push_str(&format!(" {:>3.0}", r * 100.0));
                }
            }
            out.push('\n');
        }
        out.push_str("      ");
        for &a in &self.anomaly_sizes {
            out.push_str(&format!("{a:>4}"));
        }
        out.push('\n');
        out
    }
}

/// ANA1: computes the maximum in-span response for every grid cell —
/// where the coverage map says only star/no-star, this shows how close
/// each near-miss came (e.g. Lane & Brodley's `2/(DW+1)` weak-response
/// ridge along `DW = AS`).
///
/// # Errors
///
/// Propagates synthesis and evaluation failures.
pub fn ana1_response_map(
    corpus: &Corpus,
    kind: &DetectorKind,
) -> Result<ResponseMap, HarnessError> {
    let config = corpus.config();
    let anomaly_sizes: Vec<usize> = config.anomaly_sizes().collect();
    let windows: Vec<usize> = config.windows().collect();
    // One row per window, like the coverage grid: train once, score
    // every AS, then flatten the rows in window order (the map's
    // row-major layout).
    let rows = detdiv_par::par_try_map(&windows, |&window| {
        let det = trained_model(corpus.training(), kind, window);
        let mut row = Vec::with_capacity(anomaly_sizes.len());
        for &anomaly_size in &anomaly_sizes {
            let case = corpus.case(anomaly_size, window)?;
            let outcome = evaluate_case(det.as_ref(), &case)?;
            row.push(outcome.max_response());
        }
        Ok::<_, HarnessError>(row)
    })?;
    let max_responses = rows.into_iter().flatten().collect();
    Ok(ResponseMap {
        detector: kind.name().to_owned(),
        anomaly_sizes,
        windows,
        max_responses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    fn corpus() -> Corpus {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(17)
            .build()
            .unwrap();
        Corpus::synthesize(&config).unwrap()
    }

    #[test]
    fn fn1_hits_survive_below_the_maximum() {
        let sweeps = fn1_threshold_sweeps(&corpus(), 3, 4).unwrap();
        assert_eq!(sweeps.len(), 4);
        for s in &sweeps {
            if s.in_span_max > 0.0 {
                assert!(s.hit_never_lost_below_max, "{}", s.detector);
            }
        }
        // Stide's in-span max is exactly 1 here (DW >= AS).
        let stide = sweeps.iter().find(|s| s.detector == "stide").unwrap();
        assert_eq!(stide.in_span_max, 1.0);
    }

    #[test]
    fn ana1_lane_brodley_weak_ridge() {
        let corpus = corpus();
        let map = ana1_response_map(&corpus, &DetectorKind::LaneBrodley).unwrap();
        // Below the diagonal (DW < AS): every in-span window is a known
        // sequence, response exactly 0.
        assert_eq!(map.get(4, 2).unwrap(), 0.0);
        assert_eq!(map.get(3, 2).unwrap(), 0.0);
        // At DW = AS the best normal match differs in one edge element:
        // response 2/(DW+1), strictly between 0 and 1.
        let at_diag = map.get(4, 4).unwrap();
        assert!((at_diag - 2.0 / 5.0).abs() < 1e-9, "got {at_diag}");
        let at_diag3 = map.get(3, 3).unwrap();
        assert!((at_diag3 - 2.0 / 4.0).abs() < 1e-9, "got {at_diag3}");
        // Never maximal anywhere.
        assert!(map.max_responses.iter().all(|&r| r < 1.0));
        let text = map.render();
        assert!(text.contains("lane-brodley"));
        assert!(text.contains(".."));
    }

    #[test]
    fn ana1_stide_is_binary() {
        let corpus = corpus();
        let map = ana1_response_map(&corpus, &DetectorKind::Stide).unwrap();
        for &r in &map.max_responses {
            assert!(r == 0.0 || r == 1.0, "stide response {r}");
        }
        assert_eq!(map.get(2, 2).unwrap(), 1.0);
        assert_eq!(map.get(4, 3).unwrap(), 0.0);
    }
}

//! DIV1: the pairwise diversity matrix over every detector family.
//!
//! The paper's stated purpose: "how can one make an informed choice
//! amongst a set of anomaly detectors in a way that promotes improved
//! detector performance?" (§1). The diversity matrix is that choice
//! aid, condensed: per-pair coverage gains, overlap coefficients, and
//! the extracted subset / no-gain / complementary relations.

use detdiv_core::DiversityMatrix;
use detdiv_synth::Corpus;
use serde::{Deserialize, Serialize};

use crate::coverage::coverage_maps_for;
use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// Result of the DIV1 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityResult {
    /// The pairwise matrix over all families.
    pub matrix: DiversityMatrix,
    /// Pairs affording no coverage gain, by name.
    pub no_gain_pairs: Vec<(String, String)>,
    /// Subset relations `(smaller, larger)`, by name.
    pub subset_pairs: Vec<(String, String)>,
    /// Genuinely complementary pairs, by name.
    pub complementary_pairs: Vec<(String, String)>,
}

/// The detector families entering the matrix, in a stable order.
fn families() -> Vec<DetectorKind> {
    vec![
        DetectorKind::Stide,
        DetectorKind::TStide,
        DetectorKind::Markov,
        DetectorKind::neural_default(),
        DetectorKind::LaneBrodley,
        DetectorKind::hmm_default(),
        DetectorKind::ripper_default(),
    ]
}

/// Runs DIV1 on `corpus`: computes every family's coverage map and the
/// pairwise diversity relations between them.
///
/// # Errors
///
/// Propagates coverage-map computation failures.
pub fn div1_diversity_matrix(corpus: &Corpus) -> Result<DiversityResult, HarnessError> {
    // Every (family, DW) row of all seven families in one fan-out.
    let maps = coverage_maps_for(corpus, &families())?;
    let matrix = DiversityMatrix::from_maps(&maps)?;
    let name = |i: usize| matrix.names()[i].clone();
    let no_gain_pairs = matrix
        .no_coverage_gain_pairs()
        .into_iter()
        .map(|(i, j)| (name(i), name(j)))
        .collect();
    let subset_pairs = matrix
        .subset_pairs()
        .into_iter()
        .map(|(i, j)| (name(i), name(j)))
        .collect();
    let complementary_pairs = matrix
        .complementary_pairs()
        .into_iter()
        .map(|(i, j)| (name(i), name(j)))
        .collect();
    Ok(DiversityResult {
        matrix,
        no_gain_pairs,
        subset_pairs,
        complementary_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    #[test]
    fn matrix_reflects_the_papers_relations() {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=5)
            .background_len(512)
            .plant_repeats(4)
            .seed(5)
            .build()
            .unwrap();
        let corpus = Corpus::synthesize(&config).unwrap();
        let r = div1_diversity_matrix(&corpus).unwrap();

        assert_eq!(r.matrix.len(), 7);
        // Stide + L&B affords no coverage gain.
        assert!(r
            .no_gain_pairs
            .iter()
            .any(|(a, b)| a == "stide" && b == "lane-brodley"));
        // Stide is a strict subset of the Markov detector.
        assert!(r
            .subset_pairs
            .iter()
            .any(|(small, large)| small == "stide" && large == "markov"));
        // L&B is a subset of everything that detects anything; it never
        // appears as the larger side.
        assert!(!r
            .subset_pairs
            .iter()
            .any(|(_, large)| large == "lane-brodley"));
        // On this corpus the full-coverage detectors tie, so no pair is
        // genuinely complementary.
        assert!(r.complementary_pairs.is_empty());
    }
}

//! Ablation experiments: ABL1 (maximal-response semantics), ABL2
//! (Stide's locality frame count), ABL3 (neural-network parameter
//! sensitivity).

use detdiv_core::{
    alarms_at, analyze_alarms, evaluate_case, CoverageMap, IncidentSpan, LabeledCase,
};
use detdiv_detectors::NeuralConfig;
use detdiv_synth::Corpus;
use serde::{Deserialize, Serialize};

use crate::cached::trained_model;
use crate::coverage::{coverage_map, coverage_maps_for};
use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// ABL1: strict vs rare-tolerant maximal-response semantics for the
/// Markov detector (DESIGN.md §2.3).
///
/// Under the paper's semantics (responses at or above `1 − r` are
/// maximal) the Markov detector covers the whole grid (Figure 4); under
/// strict `score == 1` semantics only zero-probability transitions
/// count, and the planted-context construction collapses its coverage to
/// Stide's `DW >= AS` triangle — the tolerance for rare-transition
/// responses is precisely what buys the Markov detector its edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticsAblation {
    /// Coverage under the paper's rare-tolerant rule.
    pub tolerant_map: CoverageMap,
    /// Coverage under the strict rule.
    pub strict_map: CoverageMap,
    /// Detection counts (tolerant, strict).
    pub detections: (usize, usize),
    /// Whether the strict map's detection region equals measured
    /// Stide's.
    pub strict_equals_stide: bool,
}

/// Runs ABL1 on `corpus`.
///
/// # Errors
///
/// Propagates coverage-map computation failures.
pub fn abl1_maximal_response_semantics(corpus: &Corpus) -> Result<SemanticsAblation, HarnessError> {
    // One fan-out over all three families' (detector, DW) rows.
    let mut maps = coverage_maps_for(
        corpus,
        &[
            DetectorKind::Markov,
            DetectorKind::MarkovStrict,
            DetectorKind::Stide,
        ],
    )?;
    let stide_map = maps.pop().expect("three maps requested");
    let strict_map = maps.pop().expect("three maps requested");
    let tolerant_map = maps.pop().expect("three maps requested");
    let strict_equals_stide =
        strict_map.is_subset_of(&stide_map)? && stide_map.is_subset_of(&strict_map)?;
    Ok(SemanticsAblation {
        detections: (tolerant_map.detection_count(), strict_map.detection_count()),
        strict_equals_stide,
        tolerant_map,
        strict_map,
    })
}

/// One row of the ABL2 locality-frame-count table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LfcRow {
    /// Locality frame length (1 = plain Stide).
    pub frame: usize,
    /// Alarm threshold applied to the LFC score (fraction of mismatches
    /// within the frame).
    pub threshold: f64,
    /// Whether the injected anomaly was hit.
    pub hit: bool,
    /// Out-of-span alarms.
    pub false_alarms: usize,
}

/// ABL2: what the locality frame count does to Stide — the
/// post-processing the paper deliberately set aside (§5.5).
///
/// On a noisy background, larger frames suppress isolated foreign
/// windows (false alarms) but also dilute the genuine anomaly's burst of
/// foreign windows; at strict thresholds the anomaly itself is lost.
///
/// # Errors
///
/// Propagates synthesis and evaluation-geometry failures.
pub fn abl2_locality_frame_count(
    corpus: &Corpus,
    window: usize,
    anomaly_size: usize,
    background_len: usize,
    seed: u64,
) -> Result<Vec<LfcRow>, HarnessError> {
    let case = corpus.noisy_case(anomaly_size, background_len, seed)?;
    let test = case.test_stream();
    let span = IncidentSpan::compute(
        test.len(),
        window,
        case.injection_position(),
        case.anomaly_len(),
    )?;
    // Each frame is its own detector configuration (and cache key): fan
    // the frames out and flatten the per-frame threshold rows in job
    // order, so the table is identical to the serial nested loop.
    let frames = [1usize, 5, 20];
    let per_frame = detdiv_par::par_try_map(&frames, |&frame| {
        let det = trained_model(case.training(), &DetectorKind::StideLfc { frame }, window);
        let scores = det.scores(test);
        let mut rows = Vec::with_capacity(3);
        for threshold in [0.2, 0.5, 1.0] {
            let alarms = alarms_at(&scores, threshold);
            let a = analyze_alarms(&alarms, span)?;
            rows.push(LfcRow {
                frame,
                threshold,
                hit: a.hit,
                false_alarms: a.false_alarms,
            });
        }
        Ok::<_, HarnessError>(rows)
    })?;
    Ok(per_frame.into_iter().flatten().collect())
}

/// One row of the ABL3 neural-network sensitivity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnSensitivityRow {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning constant.
    pub learning_rate: f64,
    /// Momentum constant.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Maximum response registered in the incident span.
    pub max_response: f64,
    /// Whether the detector was capable at its detection floor.
    pub capable: bool,
}

/// ABL3: the paper's §7 caveat, measured — "the performance of a
/// multi-layer, feed-forward network relies on a balance of parameter
/// values ... Some combinations of these values may result in weakened
/// anomaly signals."
///
/// Sweeps hidden width, learning constant and momentum at one (AS, DW)
/// cell and reports the in-span maximum response per configuration.
///
/// # Errors
///
/// Propagates synthesis and evaluation failures.
pub fn abl3_nn_sensitivity(
    corpus: &Corpus,
    window: usize,
    anomaly_size: usize,
) -> Result<Vec<NnSensitivityRow>, HarnessError> {
    let case = corpus.case(anomaly_size, window)?;
    // Enumerate the 16 configurations in the original nesting order,
    // then fan the independent train/evaluate jobs out; results come
    // back pre-indexed, so the table order is scheduling-independent.
    let mut configs = Vec::with_capacity(16);
    for &hidden in &[2usize, 16] {
        for &learning_rate in &[0.005, 0.4] {
            for &momentum in &[0.0, 0.7] {
                for &epochs in &[3usize, 300] {
                    configs.push((hidden, learning_rate, momentum, epochs));
                }
            }
        }
    }
    detdiv_par::par_try_map(&configs, |&(hidden, learning_rate, momentum, epochs)| {
        let config = NeuralConfig {
            hidden,
            learning_rate,
            momentum,
            epochs,
            min_count: 2,
            ..NeuralConfig::default()
        };
        let det = trained_model(
            case.training(),
            &DetectorKind::NeuralNetwork { config },
            window,
        );
        let outcome = evaluate_case(det.as_ref(), &case)?;
        Ok(NnSensitivityRow {
            hidden,
            learning_rate,
            momentum,
            epochs,
            max_response: outcome.max_response(),
            capable: outcome.classification().is_detection(),
        })
    })
}

/// One row of the ABL4 training-length sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingLenRow {
    /// Training-stream length used.
    pub training_len: usize,
    /// Stide detection-cell count at this length.
    pub stide_detections: usize,
    /// Markov detection-cell count at this length.
    pub markov_detections: usize,
    /// Whether the Stide map equals the analytic `DW >= AS` shape.
    pub stide_shape_holds: bool,
}

/// ABL4: how sensitive are the coverage maps to the training-stream
/// length? The paper picks 1,000,000 elements "arbitrarily" (§5.3); this
/// sweep substantiates our default use of shorter streams by showing the
/// maps' shapes are invariant across an order of magnitude.
///
/// # Errors
///
/// Propagates synthesis and coverage-map failures.
pub fn abl4_training_length(
    base: &detdiv_synth::SynthesisConfig,
    lengths: &[usize],
) -> Result<Vec<TrainingLenRow>, HarnessError> {
    use crate::coverage::expected_stide_map;
    // Each length is a self-contained corpus synthesis plus two
    // coverage maps — the coarsest unit of independent work here, so
    // fan the lengths out (the inner coverage fan-outs inline inside
    // pool workers rather than spawning a second tier of threads).
    detdiv_par::par_try_map(lengths, |&training_len| {
        let config = detdiv_synth::SynthesisConfig::builder()
            .training_len(training_len)
            .anomaly_sizes(base.anomaly_sizes())
            .windows(base.windows())
            .background_len(base.background_len())
            .plant_repeats(base.plant_repeats())
            .rare_threshold(base.rare_threshold())
            .noise(base.noise())
            .alphabet_size(base.alphabet_size())
            .seed(base.seed())
            .build()?;
        let corpus = Corpus::synthesize(&config)?;
        let stide = coverage_map(&corpus, &DetectorKind::Stide)?;
        let markov = coverage_map(&corpus, &DetectorKind::Markov)?;
        let expected = expected_stide_map(&corpus);
        let stide_shape_holds = expected.iter().all(|(a, w, cell)| {
            !cell.is_defined()
                || stide
                    .detects(a, w)
                    .map(|d| d == cell.is_detection())
                    .unwrap_or(false)
        });
        Ok(TrainingLenRow {
            training_len,
            stide_detections: stide.detection_count(),
            markov_detections: markov.detection_count(),
            stide_shape_holds,
        })
    })
}

/// ABL2 extra: plain Stide on the same noisy case, for reference in the
/// rendered table.
///
/// # Errors
///
/// Propagates synthesis and evaluation-geometry failures.
pub fn stide_reference_on_noisy_case(
    corpus: &Corpus,
    window: usize,
    anomaly_size: usize,
    background_len: usize,
    seed: u64,
) -> Result<LfcRow, HarnessError> {
    let case = corpus.noisy_case(anomaly_size, background_len, seed)?;
    let test = case.test_stream();
    let span = IncidentSpan::compute(
        test.len(),
        window,
        case.injection_position(),
        case.anomaly_len(),
    )?;
    let det = trained_model(case.training(), &DetectorKind::Stide, window);
    let alarms = alarms_at(&det.scores(test), det.maximal_response_floor());
    let a = analyze_alarms(&alarms, span)?;
    Ok(LfcRow {
        frame: 1,
        threshold: 1.0,
        hit: a.hit,
        false_alarms: a.false_alarms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    fn corpus() -> Corpus {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(13)
            .build()
            .unwrap();
        Corpus::synthesize(&config).unwrap()
    }

    #[test]
    fn abl1_strict_collapses_to_stide() {
        let r = abl1_maximal_response_semantics(&corpus()).unwrap();
        assert!(r.detections.0 > r.detections.1, "{:?}", r.detections);
        assert!(r.strict_equals_stide);
        // Tolerant covers the whole 3x5 defined grid.
        assert_eq!(r.detections.0, 3 * 5);
    }

    #[test]
    fn abl2_frames_trade_hits_for_false_alarms() {
        let rows = abl2_locality_frame_count(&corpus(), 4, 4, 4096, 3).unwrap();
        assert_eq!(rows.len(), 9);
        // Plain Stide (frame 1, threshold 1.0) hits.
        let plain = rows
            .iter()
            .find(|r| r.frame == 1 && r.threshold == 1.0)
            .unwrap();
        assert!(plain.hit);
        // A frame of 20 at full threshold cannot reach 1.0 with a
        // short anomaly burst: the hit is suppressed.
        let strict20 = rows
            .iter()
            .find(|r| r.frame == 20 && r.threshold == 1.0)
            .unwrap();
        assert!(!strict20.hit);
        // At a moderate threshold the hit survives frame 5.
        let moderate5 = rows
            .iter()
            .find(|r| r.frame == 5 && r.threshold == 0.2)
            .unwrap();
        assert!(moderate5.hit);
    }

    #[test]
    fn abl3_detects_weakened_signals() {
        let rows = abl3_nn_sensitivity(&corpus(), 3, 3).unwrap();
        assert_eq!(rows.len(), 16);
        let best = rows
            .iter()
            .find(|r| {
                r.hidden == 16 && r.learning_rate == 0.4 && r.momentum == 0.7 && r.epochs == 300
            })
            .unwrap();
        assert!(best.capable, "well-tuned NN should be capable: {best:?}");
        // At least one starved configuration weakens the signal below
        // the detection floor.
        assert!(
            rows.iter().any(|r| !r.capable),
            "expected some weakened configuration"
        );
        // And the starved configurations' max responses are lower than
        // the best configuration's.
        let worst = rows
            .iter()
            .min_by(|a, b| a.max_response.partial_cmp(&b.max_response).unwrap())
            .unwrap();
        assert!(worst.max_response < best.max_response);
    }

    #[test]
    fn abl4_coverage_is_stable_across_training_lengths() {
        let base = SynthesisConfig::builder()
            .training_len(30_000)
            .anomaly_sizes(2..=3)
            .windows(2..=4)
            .background_len(512)
            .plant_repeats(3)
            .seed(2)
            .build()
            .unwrap();
        let rows = abl4_training_length(&base, &[30_000, 90_000]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.stide_shape_holds, "{r:?}");
            assert_eq!(r.markov_detections, 2 * 3, "{r:?}");
        }
        assert_eq!(rows[0].stide_detections, rows[1].stide_detections);
    }
}

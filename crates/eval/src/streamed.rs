//! Streaming scoring mode for the evaluation pipeline.
//!
//! When enabled (`regenerate --stream`, or `DETDIV_STREAM=on` in the
//! environment), every coverage cell scores its test stream through a
//! [`detdiv_stream::ModelAdapter`] — one event at a time through the
//! push API — instead of one batch [`detdiv_core::TrainedModel::scores`]
//! call. Streamed scores are bit-identical to batch scores (the
//! adapter's contract, enforced by `detdiv-stream`'s differential
//! suite), so every downstream verdict, report and artifact byte is
//! unchanged; the CI stream gate regenerates artifacts in this mode and
//! `cmp`s them against the batch run.
//!
//! The mode is a process-wide switch (like the model cache's
//! `DETDIV_CACHE`), not a per-call parameter: the point is to swap the
//! scoring engine under the *entire* unchanged experiment suite.

use std::sync::atomic::{AtomicBool, Ordering};

static STREAM_SCORING: AtomicBool = AtomicBool::new(false);

/// Enables or disables streaming scoring process-wide. Mirrored into
/// the flight layer's armed-subsystem flags so `/healthz` can report
/// the scoring mode.
pub fn set_stream_scoring(on: bool) {
    STREAM_SCORING.store(on, Ordering::SeqCst);
    detdiv_flight::flags::set_stream_scoring(on);
}

/// Whether coverage evaluation currently scores through the streaming
/// adapter.
pub fn stream_scoring() -> bool {
    STREAM_SCORING.load(Ordering::SeqCst)
}

/// Applies the `DETDIV_STREAM` environment variable (`on`/`1` enables,
/// `off`/`0` disables, unset leaves the current setting); returns the
/// resulting mode.
pub fn apply_stream_env() -> bool {
    match std::env::var("DETDIV_STREAM") {
        Ok(v) if v == "on" || v == "1" => set_stream_scoring(true),
        Ok(v) if v == "off" || v == "0" => set_stream_scoring(false),
        _ => {}
    }
    stream_scoring()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_round_trips() {
        // Other tests share the process; restore the initial state.
        let initial = stream_scoring();
        set_stream_scoring(true);
        assert!(stream_scoring());
        set_stream_scoring(false);
        assert!(!stream_scoring());
        set_stream_scoring(initial);
    }
}

//! MASQ1: Lane & Brodley on its home turf.
//!
//! The paper's §8 observation — L&B is "blind across the entire space
//! considered, despite its previous application to masquerade
//! detection" — is a statement about *anomaly-type fit*, not detector
//! quality. This experiment closes the loop: on command streams, where
//! the anomaly is a different *user* rather than a minimal foreign
//! sequence, the L&B similarity profile separates self from masquerader
//! cleanly, while its MFS coverage map (Figure 3) stays empty. Diversity
//! in detectors is diversity in the anomaly types they fit.

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_detectors::LaneBrodley;
use detdiv_sequence::SymbolTable;
use detdiv_trace::{generate_command_stream, UserProfile};
use serde::{Deserialize, Serialize};

use crate::error::HarnessError;

/// Result of the MASQ1 masquerade experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasqueradeResult {
    /// Detector window used.
    pub window: usize,
    /// Mean L&B similarity (1 − response) of the trained user's held-out
    /// session against their own profile.
    pub self_similarity: f64,
    /// Mean similarity of the masquerader's session against that
    /// profile.
    pub masquerader_similarity: f64,
    /// The separation margin (self − masquerader).
    pub margin: f64,
    /// Whether a single threshold separates every windowed mean of the
    /// self session from every windowed mean of the masquerader session.
    pub separable: bool,
}

/// Runs MASQ1: trains L&B on a developer's command history, then
/// compares mean profile similarity of (a) a fresh developer session and
/// (b) an analyst (masquerader) session.
///
/// # Errors
///
/// Propagates command-stream generation failures.
pub fn masq1_lane_brodley_masquerade(
    window: usize,
    seed: u64,
) -> Result<MasqueradeResult, HarnessError> {
    let mut table = SymbolTable::new();
    let developer = UserProfile::developer();
    let analyst = UserProfile::analyst();

    let history = generate_command_stream(&developer, 4000, seed, &mut table)?;
    let self_session = generate_command_stream(&developer, 800, seed + 1, &mut table)?;
    let masquerade_session = generate_command_stream(&analyst, 800, seed + 2, &mut table)?;

    let mut lb = LaneBrodley::new(window);
    lb.train(&history);

    let mean_similarity = |stream: &[detdiv_sequence::Symbol]| -> f64 {
        let scores = lb.scores(stream);
        let sims: f64 = scores.iter().map(|s| 1.0 - s).sum();
        sims / scores.len() as f64
    };

    // Lane & Brodley smooth window similarities with a trailing mean;
    // we use disjoint 50-window segments as the decision unit.
    let segment_means = |stream: &[detdiv_sequence::Symbol]| -> Vec<f64> {
        let scores = lb.scores(stream);
        scores
            .chunks(50)
            .filter(|c| c.len() == 50)
            .map(|c| c.iter().map(|s| 1.0 - s).sum::<f64>() / c.len() as f64)
            .collect()
    };

    let self_similarity = mean_similarity(&self_session);
    let masquerader_similarity = mean_similarity(&masquerade_session);
    let self_segments = segment_means(&self_session);
    let masq_segments = segment_means(&masquerade_session);
    let min_self = self_segments.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_masq = masq_segments
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);

    Ok(MasqueradeResult {
        window,
        self_similarity,
        masquerader_similarity,
        margin: self_similarity - masquerader_similarity,
        separable: min_self > max_masq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_separates_self_from_masquerader() {
        let r = masq1_lane_brodley_masquerade(5, 11).unwrap();
        assert!(
            r.self_similarity > r.masquerader_similarity,
            "self {} vs masquerader {}",
            r.self_similarity,
            r.masquerader_similarity
        );
        assert!(r.margin > 0.05, "margin {}", r.margin);
        assert!(r.separable, "{r:?}");
    }

    #[test]
    fn separation_holds_across_seeds_and_windows() {
        for seed in [1u64, 2, 3] {
            for window in [4usize, 6] {
                let r = masq1_lane_brodley_masquerade(window, seed).unwrap();
                assert!(r.margin > 0.0, "seed {seed} window {window}: {r:?}");
            }
        }
    }
}

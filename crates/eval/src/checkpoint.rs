//! Journaled checkpoint/resume for coverage-map rows.
//!
//! When armed (by `regenerate --resume`, or any caller of [`arm`]),
//! every completed coverage row is appended to a [`detdiv_resil::Journal`]
//! as one checksummed line. A process killed mid-sweep leaves a journal
//! whose intact prefix survives; the next run arms the same path, loads
//! the finished rows, and [`lookup`] serves them instead of recomputing
//! — only the missing cells are paid for again. Because every row is
//! deterministic (the detector-conformance contract), the resumed run's
//! artifacts are byte-identical to an uninterrupted run's.
//!
//! Rows are keyed by `(corpus tag, detector identity, window)`:
//!
//! * the **corpus tag** is the FNV fingerprint + length of the training
//!   stream, so a journal recorded against one corpus can never satisfy
//!   a sweep over another (a changed seed or grid recomputes honestly);
//! * the **detector identity** is the full `Debug` rendering of
//!   [`DetectorKind`], hyperparameters included — the same identity the
//!   model cache keys on.
//!
//! Cell statuses serialize as single letters (`D`/`W`/`B`/`U`/`F`) with
//! their anomaly sizes, never through floating point, so a loaded row
//! reproduces the recorded row exactly.
//!
//! Disarmed (the default), every hook is a no-op behind one relaxed
//! atomic load.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use detdiv_core::CellStatus;
use detdiv_resil::Journal;
use detdiv_synth::Corpus;

use crate::kinds::DetectorKind;

/// One recorded row: the `(anomaly size, status)` cells of a single
/// (detector, window) grid row, ascending by anomaly size.
type Row = Vec<(usize, CellStatus)>;

/// Fast disarmed-path gate (mirrors `detdiv-resil`'s convention: one
/// relaxed load when the subsystem is off).
static ARMED: AtomicBool = AtomicBool::new(false);

struct State {
    journal: Journal,
    /// Rows loaded from the journal at arm time plus rows recorded
    /// since, keyed by `tag|kind|window`.
    rows: HashMap<String, Row>,
}

impl std::fmt::Debug for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("journal", &self.journal.path())
            .field("rows", &self.rows.len())
            .finish()
    }
}

fn state() -> &'static Mutex<Option<State>> {
    static STATE: OnceLock<Mutex<Option<State>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether checkpointing is armed for this process.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms row checkpointing against the journal at `path`, loading every
/// intact previously-recorded row (a torn tail line from a killed run
/// is discarded by the journal layer). Returns how many rows were
/// resumed.
///
/// # Errors
///
/// Propagates journal open/load failures, including detected interior
/// corruption — a corrupt checkpoint must fail loudly, not silently
/// recompute half a sweep.
pub fn arm(path: impl AsRef<Path>) -> io::Result<usize> {
    let path = path.as_ref();
    let lines = Journal::load(path)?;
    let mut rows = HashMap::with_capacity(lines.len());
    for line in &lines {
        if let Some((key, row)) = parse_record(line) {
            rows.insert(key, row);
        }
        // Unparseable-but-checksummed lines belong to a future format;
        // ignoring them keeps old binaries from destroying new state.
    }
    let journal = Journal::open(path)?;
    let resumed = rows.len();
    *lock() = Some(State { journal, rows });
    ARMED.store(true, Ordering::Relaxed);
    Ok(resumed)
}

/// Disarms checkpointing, leaving the journal file on disk for a later
/// resume.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *lock() = None;
}

/// Disarms checkpointing and deletes the journal: the run completed, so
/// nothing remains to resume from.
///
/// # Errors
///
/// Propagates journal removal failures (absence is fine).
pub fn finish() -> io::Result<()> {
    let path = {
        let mut guard = lock();
        let path = guard.as_ref().map(|s| s.journal.path().to_path_buf());
        *guard = None;
        path
    };
    ARMED.store(false, Ordering::Relaxed);
    match path {
        Some(path) => Journal::remove(path),
        None => Ok(()),
    }
}

/// The corpus identity rows are keyed under, or `None` when disarmed
/// (so the fingerprint walk over the training stream is never paid on
/// ordinary runs). Computed once per map, not once per row.
pub(crate) fn corpus_tag(corpus: &Corpus) -> Option<String> {
    if !armed() {
        return None;
    }
    let training = corpus.training();
    Some(format!(
        "{:016x}x{}",
        detdiv_cache::fingerprint_stream(training),
        training.len()
    ))
}

fn row_key(tag: &str, kind: &DetectorKind, window: usize) -> String {
    format!("{tag}|{kind:?}|{window}")
}

/// A previously-recorded row for `(tag, kind, window)`, if the journal
/// holds one.
pub(crate) fn lookup(tag: &str, kind: &DetectorKind, window: usize) -> Option<Row> {
    if !armed() {
        return None;
    }
    lock()
        .as_ref()?
        .rows
        .get(&row_key(tag, kind, window))
        .cloned()
}

/// Records a completed row: appended (checksummed + fsynced) to the
/// journal and added to the in-memory index. Append failures degrade to
/// a warning — checkpointing is an aid, never a reason to fail a
/// healthy sweep.
pub(crate) fn record(tag: &str, kind: &DetectorKind, window: usize, row: &[(usize, CellStatus)]) {
    if !armed() {
        return;
    }
    let key = row_key(tag, kind, window);
    let line = format!("row|{key}|{}", encode_cells(row));
    let mut guard = lock();
    let Some(state) = guard.as_mut() else {
        return;
    };
    if let Err(e) = state.journal.append(&line) {
        drop(guard);
        detdiv_obs::warn!("checkpoint append failed", error = format!("{e}"));
        return;
    }
    state.rows.insert(key, row.to_vec());
}

pub(crate) fn status_letter(status: CellStatus) -> char {
    match status {
        CellStatus::Detect => 'D',
        CellStatus::Weak => 'W',
        CellStatus::Blind => 'B',
        CellStatus::Undefined => 'U',
        CellStatus::Failed => 'F',
    }
}

fn letter_status(letter: &str) -> Option<CellStatus> {
    Some(match letter {
        "D" => CellStatus::Detect,
        "W" => CellStatus::Weak,
        "B" => CellStatus::Blind,
        "U" => CellStatus::Undefined,
        "F" => CellStatus::Failed,
        _ => return None,
    })
}

fn encode_cells(row: &[(usize, CellStatus)]) -> String {
    row.iter()
        .map(|&(a, s)| format!("{a}:{}", status_letter(s)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses one journal payload back into `(row key, cells)`; `None` for
/// records of other (future) kinds.
fn parse_record(line: &str) -> Option<(String, Row)> {
    let rest = line.strip_prefix("row|")?;
    // The key itself contains '|' separators (tag|kind|window); the
    // cells are everything after the *last* '|'.
    let (key, cells) = rest.rsplit_once('|')?;
    let mut row = Vec::new();
    for cell in cells.split(',') {
        let (a, s) = cell.split_once(':')?;
        row.push((a.parse().ok()?, letter_status(s)?));
    }
    Some((key.to_owned(), row))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("detdiv-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("rows.journal")
    }

    // Checkpoint state is process-global; exercise arm/record/lookup/
    // finish in ONE test so parallel test threads cannot interleave
    // arm/disarm cycles.
    #[test]
    fn checkpoint_roundtrip_resume_and_finish() {
        let path = temp_journal("roundtrip");
        let kind = DetectorKind::Stide;
        let row: Row = vec![
            (1, CellStatus::Undefined),
            (2, CellStatus::Detect),
            (3, CellStatus::Weak),
            (4, CellStatus::Blind),
        ];

        assert!(!armed());
        assert_eq!(lookup("tag", &kind, 6), None, "disarmed lookup is None");
        record("tag", &kind, 6, &row); // disarmed: no-op
        assert_eq!(arm(&path).unwrap(), 0, "fresh journal resumes nothing");
        assert!(armed());

        record("tag", &kind, 6, &row);
        assert_eq!(lookup("tag", &kind, 6).as_deref(), Some(row.as_slice()));
        assert_eq!(lookup("othertag", &kind, 6), None);
        assert_eq!(lookup("tag", &DetectorKind::Markov, 6), None);
        assert_eq!(lookup("tag", &kind, 7), None);

        // A second arm (the resume path) reloads the recorded row.
        disarm();
        assert!(!armed());
        assert_eq!(arm(&path).unwrap(), 1, "one row resumed");
        assert_eq!(lookup("tag", &kind, 6).as_deref(), Some(row.as_slice()));

        // Hyperparameters are part of the identity.
        let loose = DetectorKind::MarkovRare {
            rare_threshold: 0.02,
        };
        let tight = DetectorKind::MarkovRare {
            rare_threshold: 0.2,
        };
        record("tag", &loose, 3, &row);
        assert!(lookup("tag", &loose, 3).is_some());
        assert_eq!(lookup("tag", &tight, 3), None);

        finish().unwrap();
        assert!(!armed());
        assert!(!path.exists(), "finish removes the journal");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn record_encoding_roundtrips_every_status() {
        let row: Row = vec![
            (1, CellStatus::Undefined),
            (2, CellStatus::Detect),
            (3, CellStatus::Weak),
            (4, CellStatus::Blind),
            (5, CellStatus::Failed),
        ];
        let line = format!("row|tag|Stide|6|{}", encode_cells(&row));
        let (key, parsed) = parse_record(&line).unwrap();
        assert_eq!(key, "tag|Stide|6");
        assert_eq!(parsed, row);
        // Non-row and malformed records parse to None, not a panic.
        assert!(parse_record("header|v1").is_none());
        assert!(parse_record("row|tag|Stide|6|2:X").is_none());
        assert!(parse_record("row|tag|Stide|6|nocolon").is_none());
    }
}

//! Worked-example figures: the incident span (Figure 2) and the Lane &
//! Brodley similarity computation (Figure 7).

use detdiv_core::IncidentSpan;
use detdiv_detectors::{lane_brodley_sim_max, lane_brodley_similarity};
use detdiv_sequence::SymbolTable;
use serde::{Deserialize, Serialize};

use crate::error::HarnessError;

/// Reproduction of Figure 2: boundary sequences and the incident span
/// for a detector window of 5 and a foreign sequence of size 8.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Detector window (paper: 5).
    pub window: usize,
    /// Anomaly size (paper: 8).
    pub anomaly_size: usize,
    /// Number of boundary sequences on each side (DW − 1).
    pub boundary_sequences_per_side: usize,
    /// Incident-span length (DW − 1 + AS).
    pub span_len: usize,
    /// Text rendering of the data stream with the span marked.
    pub rendering: String,
}

/// Computes Figure 2's worked example.
///
/// # Errors
///
/// Never fails for the paper's parameters; the error covers degenerate
/// custom geometries.
pub fn fig2_incident_span(window: usize, anomaly_size: usize) -> Result<Fig2Result, HarnessError> {
    // A stream long enough to show full context either side.
    let margin = 2 * window;
    let stream_len = 2 * margin + anomaly_size;
    let position = margin;
    let span = IncidentSpan::compute(stream_len, window, position, anomaly_size)?;

    let mut stream_line = String::from("stream: ");
    for i in 0..stream_len {
        let ch = if (position..position + anomaly_size).contains(&i) {
            " F"
        } else {
            " +"
        };
        stream_line.push_str(ch);
    }
    let mut span_line = String::from("span:   ");
    for i in 0..stream_len {
        span_line.push_str(if span.contains(i) { " ^" } else { "  " });
    }
    let rendering = format!(
        "{stream_line}\n{span_line}\n(F: injected foreign sequence; +: background; ^: window starts of the incident span)"
    );
    Ok(Fig2Result {
        window,
        anomaly_size,
        boundary_sequences_per_side: window - 1,
        span_len: span.len(),
        rendering,
    })
}

/// Reproduction of Figure 7: the similarity calculation between two
/// size-5 command sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Window length (paper: 5).
    pub window: usize,
    /// `Sim_max = DW(DW+1)/2` (paper: 15).
    pub sim_max: u64,
    /// Similarity of the two identical sequences (paper: 15).
    pub sim_identical: u64,
    /// Similarity when only the final element differs (paper: 10).
    pub sim_final_mismatch: u64,
    /// The anomaly response corresponding to the mismatch case
    /// (1 − 10/15 = 1/3) — "close to normal".
    pub response_final_mismatch: f64,
}

/// Computes Figure 7's worked example with the paper's literal command
/// sequences (`cd <1> ls laf tar` vs `cd <1> ls laf cd`).
pub fn fig7_similarity() -> Fig7Result {
    let mut table = SymbolTable::new();
    let normal = table.intern_all(&["cd", "<1>", "ls", "laf", "tar"]);
    let foreign = table.intern_all(&["cd", "<1>", "ls", "laf", "cd"]);
    let window = normal.len();
    let sim_max = lane_brodley_sim_max(window);
    let sim_identical = lane_brodley_similarity(&normal, &normal);
    let sim_final_mismatch = lane_brodley_similarity(&normal, &foreign);
    Fig7Result {
        window,
        sim_max,
        sim_identical,
        sim_final_mismatch,
        response_final_mismatch: 1.0 - sim_final_mismatch as f64 / sim_max as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_geometry() {
        let r = fig2_incident_span(5, 8).unwrap();
        assert_eq!(r.boundary_sequences_per_side, 4);
        assert_eq!(r.span_len, 12); // DW - 1 + AS
        assert!(r.rendering.contains("F F F F F F F F"));
        assert!(r.rendering.contains('^'));
    }

    #[test]
    fn fig2_span_marks_correct_positions() {
        let r = fig2_incident_span(3, 2).unwrap();
        assert_eq!(r.span_len, 4);
        let span_line = r.rendering.lines().nth(1).unwrap();
        assert_eq!(span_line.matches('^').count(), 4);
    }

    #[test]
    fn fig7_matches_paper_values() {
        let r = fig7_similarity();
        assert_eq!(r.window, 5);
        assert_eq!(r.sim_max, 15);
        assert_eq!(r.sim_identical, 15);
        assert_eq!(r.sim_final_mismatch, 10);
        assert!((r.response_final_mismatch - 1.0 / 3.0).abs() < 1e-12);
    }
}

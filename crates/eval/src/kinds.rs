//! Detector factory: one place that knows how to instantiate every
//! detector family at a given window.

use detdiv_core::{InstrumentedDetector, SequenceAnomalyDetector};
use detdiv_detectors::{
    HmmConfig, HmmDetector, LaneBrodley, MarkovDetector, NeuralConfig, NeuralDetector,
    RipperConfig, RipperDetector, Stide, StideLfc, TStide,
};

/// Boxes `detector` behind the telemetry-recording wrapper, so every
/// detector the factory hands out feeds the `detector/<name>/*` series
/// (a no-op under `DETDIV_LOG=off`).
fn instrumented<D>(detector: D) -> Box<dyn SequenceAnomalyDetector>
where
    D: SequenceAnomalyDetector + 'static,
{
    Box::new(InstrumentedDetector::new(detector))
}

/// A detector family that can be instantiated at any detector window.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DetectorKind {
    /// Stide (exact sequence matching).
    Stide,
    /// Stide with a locality frame count of the given length.
    StideLfc {
        /// Locality frame length.
        frame: usize,
    },
    /// t-stide (sequence matching with a frequency threshold).
    TStide,
    /// The Markov-based detector under the paper's maximal-response
    /// rule (responses at or above `1 − 0.005` count as maximal).
    Markov,
    /// The Markov-based detector under strict semantics (only exact
    /// zero-probability transitions count) — ablation ABL1.
    MarkovStrict,
    /// The Markov-based detector with an explicit rare threshold `r`
    /// (responses at or above `1 − r` count as maximal) — the
    /// "sensitively tuned" regime of the §7 suppression experiment
    /// (COMB3).
    MarkovRare {
        /// The rare threshold `r`; the detection floor is `1 − r`.
        rare_threshold: f64,
    },
    /// The neural-network-based detector.
    NeuralNetwork {
        /// Hyperparameters (see [`NeuralConfig`]).
        config: NeuralConfig,
    },
    /// The Lane & Brodley detector.
    LaneBrodley,
    /// The HMM-based detector (Warrender et al. 1999's fourth data
    /// model) — extension experiment EXT1.
    Hmm {
        /// Hyperparameters (see [`HmmConfig`]).
        config: HmmConfig,
    },
    /// The RIPPER-style rule-based detector (Warrender et al. 1999's
    /// rule-induction data model) — extension experiment EXT1.
    Ripper {
        /// Hyperparameters (see [`RipperConfig`]).
        config: RipperConfig,
    },
}

impl DetectorKind {
    /// The HMM detector with its default hyperparameters (one state per
    /// observed symbol, moment-matching initialisation).
    pub fn hmm_default() -> Self {
        DetectorKind::Hmm {
            config: HmmConfig::default(),
        }
    }

    /// The rule-based detector with its default hyperparameters.
    pub fn ripper_default() -> Self {
        DetectorKind::Ripper {
            config: RipperConfig::default(),
        }
    }

    /// The neural detector with hyperparameters tuned for corpus-scale
    /// training: noise contexts observed only once are dropped
    /// (`min_count = 2`), which keeps the weighted training set small on
    /// million-element streams without affecting what the network can
    /// learn reliably.
    pub fn neural_default() -> Self {
        DetectorKind::NeuralNetwork {
            config: NeuralConfig {
                min_count: 2,
                ..NeuralConfig::default()
            },
        }
    }

    /// Stable display name of the family.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::Stide => "stide",
            DetectorKind::StideLfc { .. } => "stide-lfc",
            DetectorKind::TStide => "t-stide",
            DetectorKind::Markov => "markov",
            DetectorKind::MarkovStrict => "markov-strict",
            DetectorKind::MarkovRare { .. } => "markov-rare",
            DetectorKind::NeuralNetwork { .. } => "neural-network",
            DetectorKind::LaneBrodley => "lane-brodley",
            DetectorKind::Hmm { .. } => "hmm",
            DetectorKind::Ripper { .. } => "ripper",
        }
    }

    /// Instantiates an untrained detector of this family at `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is below the family's minimum (2).
    pub fn build(&self, window: usize) -> Box<dyn SequenceAnomalyDetector> {
        match self {
            DetectorKind::Stide => instrumented(Stide::new(window)),
            DetectorKind::StideLfc { frame } => instrumented(StideLfc::new(window, *frame)),
            DetectorKind::TStide => instrumented(TStide::new(window)),
            DetectorKind::Markov => instrumented(MarkovDetector::new(window)),
            DetectorKind::MarkovStrict => instrumented(MarkovDetector::strict(window)),
            DetectorKind::MarkovRare { rare_threshold } => {
                instrumented(MarkovDetector::with_rare_threshold(window, *rare_threshold))
            }
            DetectorKind::NeuralNetwork { config } => {
                instrumented(NeuralDetector::with_config(window, config.clone()))
            }
            DetectorKind::LaneBrodley => instrumented(LaneBrodley::new(window)),
            DetectorKind::Hmm { config } => {
                instrumented(HmmDetector::with_config(window, config.clone()))
            }
            DetectorKind::Ripper { config } => {
                instrumented(RipperDetector::with_config(window, config.clone()))
            }
        }
    }

    /// The four families of the paper's study, in figure order
    /// (L&B = Fig. 3, Markov = Fig. 4, Stide = Fig. 5, NN = Fig. 6).
    pub fn paper_four() -> Vec<DetectorKind> {
        vec![
            DetectorKind::LaneBrodley,
            DetectorKind::Markov,
            DetectorKind::Stide,
            DetectorKind::neural_default(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_core::TrainedModel;

    #[test]
    fn builds_every_family() {
        for kind in [
            DetectorKind::Stide,
            DetectorKind::StideLfc { frame: 10 },
            DetectorKind::TStide,
            DetectorKind::Markov,
            DetectorKind::MarkovStrict,
            DetectorKind::MarkovRare {
                rare_threshold: 0.02,
            },
            DetectorKind::neural_default(),
            DetectorKind::LaneBrodley,
            DetectorKind::hmm_default(),
            DetectorKind::ripper_default(),
        ] {
            let det = kind.build(3);
            assert_eq!(det.window(), 3);
            assert!(!det.name().is_empty());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DetectorKind::Stide.name(), "stide");
        assert_eq!(DetectorKind::MarkovStrict.name(), "markov-strict");
        assert_eq!(DetectorKind::neural_default().name(), "neural-network");
    }

    #[test]
    fn strict_markov_has_floor_one() {
        let det = DetectorKind::MarkovStrict.build(2);
        assert_eq!(det.maximal_response_floor(), 1.0);
        let det = DetectorKind::Markov.build(2);
        assert!(det.maximal_response_floor() < 1.0);
        let det = DetectorKind::MarkovRare {
            rare_threshold: 0.1,
        }
        .build(2);
        assert!((det.maximal_response_floor() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn paper_four_order_matches_figures() {
        let kinds = DetectorKind::paper_four();
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["lane-brodley", "markov", "stide", "neural-network"]
        );
    }
}

//! Coverage-map experiments: Figures 3–6.
//!
//! For each detector window DW of the corpus, a fresh detector is
//! trained once on the training stream and evaluated on every anomaly
//! size AS; the blind/weak/capable verdict fills the (AS, DW) cell. The
//! x-axis additionally carries the paper's *undefined* column at AS = 1
//! (a size-1 sequence cannot be simultaneously foreign and rare, §6).

use detdiv_core::{evaluate_case, CellStatus, CoverageMap};
use detdiv_synth::Corpus;

use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// Computes the detection-coverage map of one detector family over the
/// corpus's full (AS, DW) grid.
///
/// # Errors
///
/// Propagates synthesis lookups and evaluation-geometry failures as
/// [`HarnessError`].
///
/// # Examples
///
/// ```
/// use detdiv_eval::{coverage_map, DetectorKind};
/// use detdiv_synth::{Corpus, SynthesisConfig};
///
/// let config = SynthesisConfig::builder()
///     .training_len(30_000)
///     .anomaly_sizes(2..=3)
///     .windows(2..=4)
///     .background_len(512)
///     .build()
///     .unwrap();
/// let corpus = Corpus::synthesize(&config).unwrap();
/// let map = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
/// // Stide detects exactly when DW >= AS.
/// assert!(map.detects(2, 2).unwrap());
/// assert!(map.detects(3, 4).unwrap());
/// assert!(!map.detects(3, 2).unwrap());
/// ```
pub fn coverage_map(corpus: &Corpus, kind: &DetectorKind) -> Result<CoverageMap, HarnessError> {
    let _span = detdiv_obs::span!("coverage", detector = kind.name());
    let config = corpus.config();
    let mut map = CoverageMap::new(
        kind.name(),
        1..=config.max_anomaly(),
        *config.windows().start()..=config.max_window(),
    );
    for window in config.windows() {
        let mut detector = kind.build(window);
        {
            let _train = detdiv_obs::span!("train", detector = kind.name(), window = window);
            detector.train(corpus.training());
        }
        for anomaly_size in config.anomaly_sizes() {
            let cell_started = std::time::Instant::now();
            let case = corpus.case(anomaly_size, window)?;
            let outcome = evaluate_case(detector.as_ref(), &case)?;
            detdiv_obs::record_cell(kind.name(), window, anomaly_size, cell_started.elapsed());
            map.set(
                anomaly_size,
                window,
                CellStatus::from(outcome.classification()),
            )?;
        }
        // AS = 1 stays Undefined: a one-element sequence cannot be both
        // foreign and rare (§6).
        detdiv_obs::debug!(
            "coverage row complete",
            detector = kind.name(),
            window = window,
        );
    }
    Ok(map)
}

/// Convenience: the four maps of the paper's Figures 3–6, in figure
/// order (L&B, Markov, Stide, neural network).
///
/// # Errors
///
/// Propagates the first failing map computation.
pub fn paper_coverage_maps(corpus: &Corpus) -> Result<Vec<CoverageMap>, HarnessError> {
    DetectorKind::paper_four()
        .iter()
        .map(|kind| coverage_map(corpus, kind))
        .collect()
}

/// The analytically expected Stide map: detect iff `DW >= AS`
/// (§7: "this foreign sequence is only visible if the length of the
/// detector window is at least as large as the length of the foreign
/// sequence"). Used by tests and by EXPERIMENTS.md's paper-vs-measured
/// comparison.
pub fn expected_stide_map(corpus: &Corpus) -> CoverageMap {
    let config = corpus.config();
    let mut map = CoverageMap::new(
        "stide (expected)",
        1..=config.max_anomaly(),
        *config.windows().start()..=config.max_window(),
    );
    for window in config.windows() {
        for anomaly_size in config.anomaly_sizes() {
            let status = if window >= anomaly_size {
                CellStatus::Detect
            } else {
                CellStatus::Blind
            };
            map.set(anomaly_size, window, status)
                .expect("cell within grid by construction");
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    fn corpus() -> Corpus {
        let config = SynthesisConfig::builder()
            .training_len(40_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(77)
            .build()
            .unwrap();
        Corpus::synthesize(&config).unwrap()
    }

    #[test]
    fn stide_map_matches_theory() {
        let corpus = corpus();
        let measured = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
        let expected = expected_stide_map(&corpus);
        for (a, w, cell) in expected.iter() {
            if cell.is_defined() {
                assert_eq!(
                    measured.detects(a, w).unwrap(),
                    cell.is_detection(),
                    "cell (AS {a}, DW {w})"
                );
            }
        }
    }

    #[test]
    fn markov_map_covers_everything() {
        let corpus = corpus();
        let map = coverage_map(&corpus, &DetectorKind::Markov).unwrap();
        for a in 2..=4 {
            for w in 2..=6 {
                assert!(map.detects(a, w).unwrap(), "cell (AS {a}, DW {w})");
            }
        }
    }

    #[test]
    fn lane_brodley_never_detects() {
        let corpus = corpus();
        let map = coverage_map(&corpus, &DetectorKind::LaneBrodley).unwrap();
        assert_eq!(map.detection_count(), 0);
    }

    #[test]
    fn neural_map_mimics_markov() {
        let corpus = corpus();
        let nn = coverage_map(&corpus, &DetectorKind::neural_default()).unwrap();
        let markov = coverage_map(&corpus, &DetectorKind::Markov).unwrap();
        for a in 2..=4 {
            for w in 2..=6 {
                assert_eq!(
                    nn.detects(a, w).unwrap(),
                    markov.detects(a, w).unwrap(),
                    "cell (AS {a}, DW {w})"
                );
            }
        }
    }

    #[test]
    fn undefined_column_at_anomaly_size_one() {
        let corpus = corpus();
        let map = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
        for w in 2..=6 {
            assert_eq!(map.get(1, w).unwrap(), CellStatus::Undefined);
        }
    }
}

//! Coverage-map experiments: Figures 3–6.
//!
//! For each detector window DW of the corpus, a detector is trained
//! once on the training stream (through the single-flight model cache —
//! see `detdiv-cache`) and evaluated on every anomaly size AS; the
//! blind/weak/capable verdict fills the (AS, DW) cell. The x-axis
//! additionally carries the paper's *undefined* column at AS = 1 (a
//! size-1 sequence cannot be simultaneously foreign and rare, §6).
//!
//! # Parallelism
//!
//! Grid rows are independent: each (detector, DW) pair scores its own
//! immutable trained model and touches disjoint cells. [`coverage_map`] and
//! [`coverage_maps_for`] therefore fan the rows out over the
//! [`detdiv_par`] global pool and merge the finished rows back in grid
//! order, so the resulting maps are bit-for-bit identical to the serial
//! computation regardless of `DETDIV_THREADS` (asserted by
//! `tests/par_determinism.rs`).

use detdiv_core::{evaluate_case, evaluate_scores, CellStatus, CoverageMap, LabeledCase};
use detdiv_resil::{CellOutcome, RetryPolicy};
use detdiv_synth::Corpus;

use crate::cached::trained_model_with_origin;
use crate::checkpoint;
use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// One finished grid row: every (AS → cell) verdict for a single
/// detector window, produced by [`coverage_row`].
type CoverageRow = Vec<(usize, CellStatus)>;

/// The supervision policy for one grid row: `catch_unwind` + bounded
/// retry, so a poisoned row degrades to a marked [`CellStatus::Failed`]
/// stripe instead of killing the sweep. Rows are deterministic, so a
/// retried row recomputes the identical cells.
fn row_policy() -> RetryPolicy {
    RetryPolicy::default()
}

/// Obtains the `(kind, window)` model — trained on first demand, shared
/// from the single-flight cache thereafter — and scores it against every
/// anomaly size of the corpus, returning the row's cells in ascending AS
/// order. This is the unit of parallel work: rows share nothing but the
/// read-only corpus and the immutable cached models.
fn coverage_row(
    corpus: &Corpus,
    kind: &DetectorKind,
    window: usize,
) -> Result<CoverageRow, HarnessError> {
    let config = corpus.config();
    let (detector, origin) = trained_model_with_origin(corpus.training(), kind, window);
    let mut row = Vec::with_capacity(config.anomaly_sizes().count());
    for anomaly_size in config.anomaly_sizes() {
        let cell_started = std::time::Instant::now();
        // Fault site for scoring; the `armed` guard keeps the disarmed
        // hot path free of the site-name allocation.
        if detdiv_resil::armed() {
            detdiv_resil::point(&format!("score/{}", kind.name()));
        }
        let case = corpus.case(anomaly_size, window)?;
        // Streaming mode scores through the push-based adapter; the
        // scores are bit-identical to the batch call (the adapter's
        // contract), so the verdict — and every downstream artifact —
        // is unchanged.
        let outcome = if crate::streamed::stream_scoring() {
            let scores = detdiv_stream::stream_scores(&detector, case.test_stream());
            evaluate_scores(detector.as_ref(), &case, &scores)?
        } else {
            evaluate_case(detector.as_ref(), &case)?
        };
        detdiv_obs::record_cell(kind.name(), window, anomaly_size, cell_started.elapsed());
        let status = CellStatus::from(outcome.classification());
        // One wide event per cell decision: the audit-log leg of the
        // paper grid. Payloads are timestamp-free, so repeat runs dump
        // identical bytes (`flightcheck` cross-checks these records
        // against the finished coverage maps).
        if detdiv_flight::armed() {
            let span = outcome.span();
            detdiv_flight::record(
                detdiv_flight::CellRecord {
                    corpus: origin.corpus,
                    training_len: origin.training_len,
                    detector: kind.name(),
                    window,
                    anomaly_size,
                    verdict: checkpoint::status_letter(status),
                    score: outcome.max_response(),
                    threshold: detector.maximal_response_floor(),
                    event_index: outcome.max_position(),
                    span_first: span.first(),
                    span_last: span.last(),
                    cache: origin.cache,
                    retries: origin.retries,
                }
                .render(),
            );
        }
        row.push((anomaly_size, status));
    }
    // AS = 1 stays Undefined: a one-element sequence cannot be both
    // foreign and rare (§6).
    detdiv_obs::debug!(
        "coverage row complete",
        detector = kind.name(),
        window = window,
    );
    Ok(row)
}

/// Computes the detection-coverage map of one detector family over the
/// corpus's full (AS, DW) grid.
///
/// # Errors
///
/// Propagates synthesis lookups and evaluation-geometry failures as
/// [`HarnessError`].
///
/// # Examples
///
/// ```
/// use detdiv_eval::{coverage_map, DetectorKind};
/// use detdiv_synth::{Corpus, SynthesisConfig};
///
/// let config = SynthesisConfig::builder()
///     .training_len(30_000)
///     .anomaly_sizes(2..=3)
///     .windows(2..=4)
///     .background_len(512)
///     .build()
///     .unwrap();
/// let corpus = Corpus::synthesize(&config).unwrap();
/// let map = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
/// // Stide detects exactly when DW >= AS.
/// assert!(map.detects(2, 2).unwrap());
/// assert!(map.detects(3, 4).unwrap());
/// assert!(!map.detects(3, 2).unwrap());
/// ```
pub fn coverage_map(corpus: &Corpus, kind: &DetectorKind) -> Result<CoverageMap, HarnessError> {
    let _span = detdiv_obs::span!("coverage", detector = kind.name());
    let config = corpus.config();
    let mut map = CoverageMap::new(
        kind.name(),
        1..=config.max_anomaly(),
        *config.windows().start()..=config.max_window(),
    );
    let windows: Vec<usize> = config.windows().collect();
    // Re-root worker-thread span stacks under this experiment so their
    // `train` spans and grid cells carry the right context.
    let parent = detdiv_obs::current_path();
    let tag = checkpoint::corpus_tag(corpus);
    let rows = detdiv_par::par_try_map_supervised(
        &windows,
        &row_policy(),
        |_, &window| format!("row/{}/{window}", kind.name()),
        |&window| -> Result<CoverageRow, HarnessError> {
            if let Some(row) = tag
                .as_deref()
                .and_then(|tag| checkpoint::lookup(tag, kind, window))
            {
                return Ok(row);
            }
            let _ctx = detdiv_obs::context(&parent);
            let row = coverage_row(corpus, kind, window)?;
            if let Some(tag) = tag.as_deref() {
                checkpoint::record(tag, kind, window, &row);
            }
            Ok(row)
        },
    )?;
    for (window, outcome) in windows.into_iter().zip(rows) {
        merge_row_outcome(&mut map, config.anomaly_sizes(), window, outcome)?;
    }
    Ok(map)
}

/// Writes one supervised row outcome into the map: a completed row
/// fills its cells; a permanently failed row fills the window's stripe
/// with [`CellStatus::Failed`] (rendered `!`) and logs the degradation,
/// keeping the rest of the sweep intact.
fn merge_row_outcome(
    map: &mut CoverageMap,
    anomaly_sizes: impl Iterator<Item = usize>,
    window: usize,
    outcome: CellOutcome<CoverageRow>,
) -> Result<(), HarnessError> {
    match outcome {
        CellOutcome::Ok { value: row, .. } => {
            for (anomaly_size, status) in row {
                map.set(anomaly_size, window, status)?;
            }
        }
        CellOutcome::Failed {
            site,
            attempts,
            error,
        } => {
            detdiv_obs::warn!(
                "coverage row degraded",
                site = site,
                attempts = attempts,
                error = error,
            );
            for anomaly_size in anomaly_sizes {
                map.set(anomaly_size, window, CellStatus::Failed)?;
            }
        }
    }
    Ok(())
}

/// Computes one coverage map per detector kind, fanning every
/// (kind, DW) row out over the global pool in a single parallel map so
/// cross-detector work interleaves freely. Maps are returned in `kinds`
/// order and are identical to calling [`coverage_map`] per kind.
///
/// # Errors
///
/// Returns the error of the first failing row in (kind, DW) grid order,
/// independent of worker scheduling.
pub fn coverage_maps_for(
    corpus: &Corpus,
    kinds: &[DetectorKind],
) -> Result<Vec<CoverageMap>, HarnessError> {
    let config = corpus.config();
    let windows: Vec<usize> = config.windows().collect();
    let jobs: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|kind_index| windows.iter().map(move |&window| (kind_index, window)))
        .collect();
    let parent = detdiv_obs::current_path();
    let tag = checkpoint::corpus_tag(corpus);
    let rows = detdiv_par::par_try_map_supervised(
        &jobs,
        &row_policy(),
        |_, &(kind_index, window)| format!("row/{}/{window}", kinds[kind_index].name()),
        |&(kind_index, window)| -> Result<CoverageRow, HarnessError> {
            let kind = &kinds[kind_index];
            if let Some(row) = tag
                .as_deref()
                .and_then(|tag| checkpoint::lookup(tag, kind, window))
            {
                return Ok(row);
            }
            let _ctx = detdiv_obs::context(&parent);
            let _span = detdiv_obs::span!("coverage", detector = kind.name());
            let row = coverage_row(corpus, kind, window)?;
            if let Some(tag) = tag.as_deref() {
                checkpoint::record(tag, kind, window, &row);
            }
            Ok(row)
        },
    )?;
    let mut maps: Vec<CoverageMap> = kinds
        .iter()
        .map(|kind| {
            CoverageMap::new(
                kind.name(),
                1..=config.max_anomaly(),
                *config.windows().start()..=config.max_window(),
            )
        })
        .collect();
    for (&(kind_index, window), outcome) in jobs.iter().zip(rows) {
        merge_row_outcome(
            &mut maps[kind_index],
            config.anomaly_sizes(),
            window,
            outcome,
        )?;
    }
    Ok(maps)
}

/// Convenience: the four maps of the paper's Figures 3–6, in figure
/// order (L&B, Markov, Stide, neural network), computed with every
/// (detector, DW) row fanned out in parallel.
///
/// # Errors
///
/// Propagates the first failing row computation.
pub fn paper_coverage_maps(corpus: &Corpus) -> Result<Vec<CoverageMap>, HarnessError> {
    coverage_maps_for(corpus, &DetectorKind::paper_four())
}

/// The analytically expected Stide map: detect iff `DW >= AS`
/// (§7: "this foreign sequence is only visible if the length of the
/// detector window is at least as large as the length of the foreign
/// sequence"). Used by tests and by EXPERIMENTS.md's paper-vs-measured
/// comparison.
pub fn expected_stide_map(corpus: &Corpus) -> CoverageMap {
    let config = corpus.config();
    let mut map = CoverageMap::new(
        "stide (expected)",
        1..=config.max_anomaly(),
        *config.windows().start()..=config.max_window(),
    );
    for window in config.windows() {
        for anomaly_size in config.anomaly_sizes() {
            let status = if window >= anomaly_size {
                CellStatus::Detect
            } else {
                CellStatus::Blind
            };
            map.set(anomaly_size, window, status)
                .expect("cell within grid by construction");
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    fn corpus() -> Corpus {
        let config = SynthesisConfig::builder()
            .training_len(40_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(77)
            .build()
            .unwrap();
        Corpus::synthesize(&config).unwrap()
    }

    #[test]
    fn stide_map_matches_theory() {
        let corpus = corpus();
        let measured = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
        let expected = expected_stide_map(&corpus);
        for (a, w, cell) in expected.iter() {
            if cell.is_defined() {
                assert_eq!(
                    measured.detects(a, w).unwrap(),
                    cell.is_detection(),
                    "cell (AS {a}, DW {w})"
                );
            }
        }
    }

    #[test]
    fn markov_map_covers_everything() {
        let corpus = corpus();
        let map = coverage_map(&corpus, &DetectorKind::Markov).unwrap();
        for a in 2..=4 {
            for w in 2..=6 {
                assert!(map.detects(a, w).unwrap(), "cell (AS {a}, DW {w})");
            }
        }
    }

    #[test]
    fn lane_brodley_never_detects() {
        let corpus = corpus();
        let map = coverage_map(&corpus, &DetectorKind::LaneBrodley).unwrap();
        assert_eq!(map.detection_count(), 0);
    }

    #[test]
    fn neural_map_mimics_markov() {
        let corpus = corpus();
        let nn = coverage_map(&corpus, &DetectorKind::neural_default()).unwrap();
        let markov = coverage_map(&corpus, &DetectorKind::Markov).unwrap();
        for a in 2..=4 {
            for w in 2..=6 {
                assert_eq!(
                    nn.detects(a, w).unwrap(),
                    markov.detects(a, w).unwrap(),
                    "cell (AS {a}, DW {w})"
                );
            }
        }
    }

    #[test]
    fn coverage_maps_for_matches_per_kind_maps() {
        let corpus = corpus();
        let kinds = [
            DetectorKind::Stide,
            DetectorKind::Markov,
            DetectorKind::LaneBrodley,
        ];
        let fanned = coverage_maps_for(&corpus, &kinds).unwrap();
        assert_eq!(fanned.len(), kinds.len());
        for (kind, map) in kinds.iter().zip(&fanned) {
            assert_eq!(
                map,
                &coverage_map(&corpus, kind).unwrap(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn undefined_column_at_anomaly_size_one() {
        let corpus = corpus();
        let map = coverage_map(&corpus, &DetectorKind::Stide).unwrap();
        for w in 2..=6 {
            assert_eq!(map.get(1, w).unwrap(), CellStatus::Undefined);
        }
    }
}

//! Detector-combination experiments (§7/§8): COMB1–COMB3.

use detdiv_core::{
    alarms_at, analyze_alarms, suppress_alarms, CoverageMap, IncidentSpan, LabeledCase,
};
use detdiv_synth::Corpus;
use serde::{Deserialize, Serialize};

use crate::cached::trained_model;
use crate::coverage::coverage_map;
use crate::error::HarnessError;
use crate::kinds::DetectorKind;

/// COMB1: the coverage-subset relation between Stide and the
/// Markov-based detector.
///
/// "Any alarm raised by Stide will also be raised by the Markov
/// detector, because ... Stide's detection coverage is a subset of the
/// Markov-based detector's coverage." (§7)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetResult {
    /// Whether Stide's detection region is contained in Markov's.
    pub stide_subset_of_markov: bool,
    /// Stide's detection-cell count.
    pub stide_detections: usize,
    /// Markov's detection-cell count.
    pub markov_detections: usize,
    /// Jaccard similarity of the two detection regions.
    pub jaccard: f64,
    /// The two maps, for rendering.
    pub stide_map: CoverageMap,
    /// Markov's coverage map.
    pub markov_map: CoverageMap,
}

/// Runs COMB1 on `corpus`.
///
/// # Errors
///
/// Propagates coverage-map computation failures.
pub fn comb1_stide_markov_subset(corpus: &Corpus) -> Result<SubsetResult, HarnessError> {
    let stide_map = coverage_map(corpus, &DetectorKind::Stide)?;
    let markov_map = coverage_map(corpus, &DetectorKind::Markov)?;
    Ok(SubsetResult {
        stide_subset_of_markov: stide_map.is_subset_of(&markov_map)?,
        stide_detections: stide_map.detection_count(),
        markov_detections: markov_map.detection_count(),
        jaccard: stide_map.jaccard(&markov_map)?,
        stide_map,
        markov_map,
    })
}

/// COMB2: the Stide + Lane & Brodley union affords no detection gain.
///
/// "combining Stide and L&B provides no detection advantage at all.
/// Although each of these detectors uses a very different similarity
/// metric, they each show blindness in the same region of the
/// performance chart." (§8)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnionGainResult {
    /// Detection cells L&B adds beyond Stide (paper: 0).
    pub lb_gain_over_stide: usize,
    /// Whether the union's detection region equals Stide's alone.
    pub union_equals_stide: bool,
    /// L&B's detection-cell count (paper: 0 — blind across the space).
    pub lb_detections: usize,
    /// The union map, for rendering.
    pub union_map: CoverageMap,
}

/// Runs COMB2 on `corpus`.
///
/// # Errors
///
/// Propagates coverage-map computation failures.
pub fn comb2_stide_lb_union(corpus: &Corpus) -> Result<UnionGainResult, HarnessError> {
    let stide_map = coverage_map(corpus, &DetectorKind::Stide)?;
    let lb_map = coverage_map(corpus, &DetectorKind::LaneBrodley)?;
    let union_map = stide_map.union(&lb_map)?;
    Ok(UnionGainResult {
        lb_gain_over_stide: stide_map.gain_from(&lb_map)?,
        union_equals_stide: union_map.detection_count() == stide_map.detection_count(),
        lb_detections: lb_map.detection_count(),
        union_map,
    })
}

/// One row of the COMB3 suppression table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuppressionRow {
    /// Detector window DW.
    pub window: usize,
    /// Anomaly size AS.
    pub anomaly_size: usize,
    /// Which detector/combination the row describes.
    pub detector: String,
    /// Whether the injected anomaly was hit.
    pub hit: bool,
    /// Number of out-of-span alarms.
    pub false_alarms: usize,
    /// False alarms per out-of-span position.
    pub false_alarm_rate: f64,
}

/// COMB3 parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionConfig {
    /// Noisy-background length per case.
    pub background_len: usize,
    /// Detector windows to evaluate.
    pub windows: Vec<usize>,
    /// Anomaly sizes to evaluate.
    pub anomaly_sizes: Vec<usize>,
    /// The Markov detector's rare threshold for this experiment. The
    /// default 0.02 places the detection floor at 0.98, below the score
    /// of the generation matrix's 1 %-probability escape transitions —
    /// the "sensitively tuned" regime of §7 in which the Markov detector
    /// "can only be expected to produce greater numbers of false alarms
    /// than Stide".
    pub markov_rare_threshold: f64,
    /// Seed for the noisy backgrounds.
    pub seed: u64,
}

impl Default for SuppressionConfig {
    fn default() -> Self {
        SuppressionConfig {
            background_len: 8192,
            windows: vec![2, 4, 6],
            anomaly_sizes: vec![2, 4],
            markov_rare_threshold: 0.02,
            seed: 7,
        }
    }
}

/// COMB3: the false-alarm suppression pairing.
///
/// "Any alarms raised by the Markov-based detector, and not raised by
/// Stide, may be ignored as false alarms; alarms raised by both Stide
/// and the Markov-based detector are possible hits." (§7)
///
/// For each (DW, AS), three rows are produced — the Markov detector
/// alone, Stide alone, and the suppressed combination — over a noisy
/// background with one injected MFS.
///
/// # Errors
///
/// Propagates synthesis and evaluation-geometry failures.
pub fn comb3_suppression(
    corpus: &Corpus,
    config: &SuppressionConfig,
) -> Result<Vec<SuppressionRow>, HarnessError> {
    // Each anomaly size owns its noisy case; fan the sizes out and
    // flatten the per-size window rows in job order, reproducing the
    // serial nested-loop row order exactly.
    //
    // Both detectors are obtained through the detector-kind factory and
    // the single-flight model cache (pre-PR4 this path trained inline
    // duplicates of models the coverage grid had already trained). The
    // noisy cases share the corpus training stream, so the Stide models
    // here are the very ones behind Figure 5's rows.
    let markov_kind = DetectorKind::MarkovRare {
        rare_threshold: config.markov_rare_threshold,
    };
    let per_size = detdiv_par::par_try_map(&config.anomaly_sizes, |&anomaly_size| {
        let mut rows = Vec::new();
        let case = corpus.noisy_case(anomaly_size, config.background_len, config.seed)?;
        let test = case.test_stream();
        for &window in &config.windows {
            let span = IncidentSpan::compute(
                test.len(),
                window,
                case.injection_position(),
                case.anomaly_len(),
            )?;

            let markov = trained_model(case.training(), &markov_kind, window);
            let markov_alarms = alarms_at(&markov.scores(test), markov.maximal_response_floor());

            let stide = trained_model(case.training(), &DetectorKind::Stide, window);
            let stide_alarms = alarms_at(&stide.scores(test), stide.maximal_response_floor());

            let suppressed = suppress_alarms(&markov_alarms, &stide_alarms)?;

            for (name, alarms) in [
                ("markov", &markov_alarms),
                ("stide", &stide_alarms),
                ("markov + stide suppression", &suppressed),
            ] {
                let a = analyze_alarms(alarms, span)?;
                rows.push(SuppressionRow {
                    window,
                    anomaly_size,
                    detector: name.to_owned(),
                    hit: a.hit,
                    false_alarms: a.false_alarms,
                    false_alarm_rate: a.false_alarm_rate(),
                });
            }
        }
        Ok::<_, HarnessError>(rows)
    })?;
    Ok(per_size.into_iter().flatten().collect())
}

/// Renders COMB3 rows as a fixed-width text table.
pub fn render_suppression_table(rows: &[SuppressionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>3} {:>3}  {:<28} {:>4} {:>12} {:>9}\n",
        "DW", "AS", "detector", "hit", "false alarms", "FA rate"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>3} {:>3}  {:<28} {:>4} {:>12} {:>9.5}\n",
            r.window,
            r.anomaly_size,
            r.detector,
            if r.hit { "yes" } else { "no" },
            r.false_alarms,
            r.false_alarm_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_synth::SynthesisConfig;

    fn corpus() -> Corpus {
        let config = SynthesisConfig::builder()
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(31)
            .build()
            .unwrap();
        Corpus::synthesize(&config).unwrap()
    }

    #[test]
    fn comb1_subset_holds() {
        let r = comb1_stide_markov_subset(&corpus()).unwrap();
        assert!(r.stide_subset_of_markov);
        assert!(r.markov_detections > r.stide_detections);
        assert!(r.jaccard < 1.0);
        assert!(r.jaccard > 0.0);
    }

    #[test]
    fn comb2_no_gain_from_lb() {
        let r = comb2_stide_lb_union(&corpus()).unwrap();
        assert_eq!(r.lb_gain_over_stide, 0);
        assert!(r.union_equals_stide);
        assert_eq!(r.lb_detections, 0);
    }

    #[test]
    fn comb3_suppression_removes_false_alarms() {
        let corpus = corpus();
        let config = SuppressionConfig {
            background_len: 4096,
            windows: vec![2, 4],
            anomaly_sizes: vec![2],
            ..SuppressionConfig::default()
        };
        let rows = comb3_suppression(&corpus, &config).unwrap();
        assert_eq!(rows.len(), 2 * 3);

        // At DW = 2 (>= AS = 2): Markov alone has false alarms, the
        // suppressed combination keeps the hit and drops the FAs to
        // Stide's level (zero at DW = 2, where every natural bigram is
        // known).
        let at = |w: usize, d: &str| {
            rows.iter()
                .find(|r| r.window == w && r.detector == d)
                .unwrap()
                .clone()
        };
        let markov = at(2, "markov");
        let stide = at(2, "stide");
        let combo = at(2, "markov + stide suppression");
        assert!(markov.hit && stide.hit && combo.hit);
        assert!(markov.false_alarms > 0, "Markov should be alarm-happy");
        assert_eq!(stide.false_alarms, 0);
        assert_eq!(combo.false_alarms, 0);
    }

    /// Regression for the pre-cache implementation, which trained
    /// `MarkovDetector`/`Stide` inline instead of going through
    /// `DetectorKind::build` + the model cache: the rerouted COMB3 must
    /// reproduce the inline-trained rows exactly.
    #[test]
    fn comb3_matches_inline_trained_detectors() {
        use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
        use detdiv_detectors::{MarkovDetector, Stide};

        let corpus = corpus();
        let config = SuppressionConfig {
            background_len: 4096,
            windows: vec![2, 4],
            anomaly_sizes: vec![2],
            ..SuppressionConfig::default()
        };
        let rows = comb3_suppression(&corpus, &config).unwrap();

        let case = corpus
            .noisy_case(2, config.background_len, config.seed)
            .unwrap();
        let test = case.test_stream();
        let mut expected = Vec::new();
        for &window in &config.windows {
            let span = IncidentSpan::compute(
                test.len(),
                window,
                case.injection_position(),
                case.anomaly_len(),
            )
            .unwrap();
            let mut markov =
                MarkovDetector::with_rare_threshold(window, config.markov_rare_threshold);
            markov.train(case.training());
            let markov_alarms = alarms_at(&markov.scores(test), markov.maximal_response_floor());
            let mut stide = Stide::new(window);
            stide.train(case.training());
            let stide_alarms = alarms_at(&stide.scores(test), stide.maximal_response_floor());
            let suppressed = suppress_alarms(&markov_alarms, &stide_alarms).unwrap();
            for (name, alarms) in [
                ("markov", &markov_alarms),
                ("stide", &stide_alarms),
                ("markov + stide suppression", &suppressed),
            ] {
                let a = analyze_alarms(alarms, span).unwrap();
                expected.push(SuppressionRow {
                    window,
                    anomaly_size: 2,
                    detector: name.to_owned(),
                    hit: a.hit,
                    false_alarms: a.false_alarms,
                    false_alarm_rate: a.false_alarm_rate(),
                });
            }
        }
        assert_eq!(rows, expected);
    }

    #[test]
    fn comb3_table_renders() {
        let rows = vec![SuppressionRow {
            window: 2,
            anomaly_size: 2,
            detector: "markov".into(),
            hit: true,
            false_alarms: 12,
            false_alarm_rate: 0.01,
        }];
        let table = render_suppression_table(&rows);
        assert!(table.contains("markov"));
        assert!(table.contains("yes"));
    }
}

//! Figure-level benches: the cost of regenerating each coverage map
//! (FIG3–FIG6) and the worked-example kernels (FIG2, FIG7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detdiv_bench::small_corpus;
use detdiv_core::IncidentSpan;
use detdiv_detectors::lane_brodley_similarity;
use detdiv_eval::{coverage_map, DetectorKind};
use detdiv_sequence::symbols;

fn bench_coverage_maps(c: &mut Criterion) {
    let corpus = small_corpus();
    let mut group = c.benchmark_group("coverage_map");
    group.sample_size(10);
    for (figure, kind) in [
        ("fig3_lane_brodley", DetectorKind::LaneBrodley),
        ("fig4_markov", DetectorKind::Markov),
        ("fig5_stide", DetectorKind::Stide),
        ("fig6_neural", DetectorKind::neural_default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(figure), &kind, |b, kind| {
            b.iter(|| coverage_map(&corpus, kind).expect("map computes"));
        });
    }
    group.finish();
}

fn bench_fig2_kernel(c: &mut Criterion) {
    c.bench_function("fig2_incident_span", |b| {
        b.iter(|| IncidentSpan::compute(4096, 5, 2048, 8).expect("valid geometry"))
    });
}

fn bench_fig7_kernel(c: &mut Criterion) {
    let a = symbols(&[0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6]);
    let bvec = symbols(&[0, 1, 2, 3, 9, 5, 6, 7, 0, 9, 2, 3, 4, 5, 0]);
    c.bench_function("fig7_lane_brodley_similarity_dw15", |b| {
        b.iter(|| lane_brodley_similarity(&a, &bvec))
    });
}

criterion_group!(
    benches,
    bench_coverage_maps,
    bench_fig2_kernel,
    bench_fig7_kernel
);
criterion_main!(benches);

//! Model-substrate kernels: Markov estimation, conditional queries,
//! neural-network epochs and HMM training/filtering (PERF experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use detdiv_hmm::{baum_welch, InitStrategy, TrainConfig};
use detdiv_markov::{ConditionalModel, TransitionMatrix};
use detdiv_nn::{encode_context, Mlp, MlpConfig};
use detdiv_sequence::{Alphabet, Symbol};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn noisy_stream(len: usize) -> Vec<Symbol> {
    let m = TransitionMatrix::noisy_cycle(Alphabet::new(8), 0.02);
    let mut rng = SmallRng::seed_from_u64(1);
    m.generate(Symbol::new(0), len, &mut rng)
}

fn bench_markov(c: &mut Criterion) {
    let stream = noisy_stream(100_000);
    let mut group = c.benchmark_group("markov");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);
    for k in [1usize, 5, 14] {
        group.bench_with_input(BenchmarkId::new("estimate_order", k), &k, |b, &k| {
            b.iter(|| ConditionalModel::estimate(&stream, k).expect("estimates"))
        });
    }
    group.finish();

    let model = ConditionalModel::estimate(&stream, 5).expect("estimates");
    let context = &stream[100..105];
    c.bench_function("markov/predict", |b| {
        b.iter(|| model.predict(context, stream[105]))
    });
}

fn bench_nn(c: &mut Criterion) {
    // A weighted empirical dataset of the shape the neural detector
    // trains on: 8 cycle contexts with large weights plus rare contexts.
    let mut dataset = Vec::new();
    for i in 0..8usize {
        dataset.push((encode_context(&[i], 8), (i + 1) % 8, 10_000.0));
        dataset.push((encode_context(&[i], 8), (i + 2) % 8, 10.0));
    }
    let mut group = c.benchmark_group("nn");
    group.sample_size(10);
    group.bench_function("train_epoch_16hidden", |b| {
        let mut net = Mlp::new(
            MlpConfig::new(vec![8, 16, 8])
                .with_seed(1)
                .with_learning_rate(0.4)
                .with_momentum(0.7),
        )
        .expect("valid config");
        b.iter(|| net.train_epoch(&dataset).expect("trains"))
    });
    let net = Mlp::new(MlpConfig::new(vec![8, 16, 8]).with_seed(1)).expect("valid config");
    let input = encode_context(&[3], 8);
    group.bench_function("forward", |b| b.iter(|| net.forward(&input).expect("runs")));
    group.finish();
}

fn bench_hmm(c: &mut Criterion) {
    let stream = noisy_stream(8_000);
    let mut group = c.benchmark_group("hmm");
    group.sample_size(10);
    group.bench_function("baum_welch_8states", |b| {
        b.iter(|| {
            baum_welch(
                &[&stream],
                &TrainConfig {
                    states: 8,
                    max_iters: 5,
                    tol: 0.0,
                    seed: 1,
                    init: InitStrategy::FirstOrder,
                },
            )
            .expect("trains")
        })
    });
    let (hmm, _) = baum_welch(
        &[&stream],
        &TrainConfig {
            states: 8,
            max_iters: 10,
            tol: 1e-6,
            seed: 1,
            init: InitStrategy::FirstOrder,
        },
    )
    .expect("trains");
    let context = &stream[0..14];
    group.bench_function("predict_next_dw15", |b| {
        b.iter(|| hmm.predict_next(context, stream[14]).expect("predicts"))
    });
    group.finish();
}

criterion_group!(benches, bench_markov, bench_nn, bench_hmm);
criterion_main!(benches);

//! Synthesis kernels: corpus generation, invariant verification,
//! profile building and the MFS census (PERF experiment of DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use detdiv_bench::small_corpus;
use detdiv_sequence::{StreamProfile, SubstringIndex};
use detdiv_synth::{Corpus, SynthesisConfig};
use detdiv_trace::{generate_sendmail_like, mfs_census, TraceGenConfig};

fn bench_corpus_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(10);
    for training_len in [30_000usize, 60_000] {
        let config = SynthesisConfig::builder()
            .training_len(training_len)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(1024)
            .plant_repeats(4)
            .seed(1)
            .build()
            .expect("valid config");
        group.throughput(Throughput::Elements(training_len as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(training_len),
            &config,
            |b, config| b.iter(|| Corpus::synthesize(config).expect("synthesis succeeds")),
        );
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let corpus = small_corpus();
    c.bench_function("verify_corpus", |b| {
        b.iter(|| corpus.verify().expect("verified corpus"))
    });
}

fn bench_profile(c: &mut Criterion) {
    let corpus = small_corpus();
    let training = corpus.training();
    let mut group = c.benchmark_group("stream_profile");
    group.throughput(Throughput::Elements(training.len() as u64));
    group.sample_size(10);
    for max_len in [6usize, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(max_len), &max_len, |b, &l| {
            b.iter(|| StreamProfile::build(training, l).expect("profile builds"))
        });
    }
    group.finish();
}

fn bench_substring_index(c: &mut Criterion) {
    let corpus = small_corpus();
    let training = corpus.training();
    let mut group = c.benchmark_group("substring_index");
    group.throughput(Throughput::Elements(training.len() as u64));
    group.sample_size(10);
    group.bench_function("build", |b| b.iter(|| SubstringIndex::build(training)));
    let idx = SubstringIndex::build(training);
    let probe = &training[100..115];
    group.bench_function("count_dw15", |b| b.iter(|| idx.count(probe)));
    group.finish();
}

fn bench_census(c: &mut Criterion) {
    let training = generate_sendmail_like(&TraceGenConfig {
        processes: 4,
        events_per_process: 3000,
        seed: 100,
    })
    .expect("trace generates")
    .concatenated();
    let test = generate_sendmail_like(&TraceGenConfig {
        processes: 2,
        events_per_process: 2000,
        seed: 200,
    })
    .expect("trace generates")
    .concatenated();
    let mut group = c.benchmark_group("mfs_census");
    group.throughput(Throughput::Elements(test.len() as u64));
    group.sample_size(10);
    group.bench_function("sendmail_like", |b| {
        b.iter(|| mfs_census(&training, &test, 8).expect("census succeeds"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_corpus_synthesis,
    bench_verification,
    bench_profile,
    bench_substring_index,
    bench_census
);
criterion_main!(benches);

//! Detector kernels: training and scoring throughput for each of the
//! four detector families (PERF experiment of DESIGN.md).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use detdiv_bench::small_corpus;
use detdiv_core::{LabeledCase, SequenceAnomalyDetector};
use detdiv_eval::DetectorKind;

fn kinds() -> Vec<DetectorKind> {
    vec![
        DetectorKind::Stide,
        DetectorKind::TStide,
        DetectorKind::Markov,
        DetectorKind::LaneBrodley,
        DetectorKind::neural_default(),
    ]
}

fn bench_training(c: &mut Criterion) {
    let corpus = small_corpus();
    let training = corpus.training();
    let mut group = c.benchmark_group("train");
    group.throughput(Throughput::Elements(training.len() as u64));
    group.sample_size(10);
    for kind in kinds() {
        group.bench_with_input(
            BenchmarkId::new(kind.name(), training.len()),
            &kind,
            |b, kind| {
                b.iter_batched(
                    || kind.build(6),
                    |mut det| det.train(training),
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let corpus = small_corpus();
    let case = corpus.case(4, 6).expect("case in grid");
    let test = case.test_stream();
    let mut group = c.benchmark_group("score");
    group.throughput(Throughput::Elements(test.len() as u64));
    group.sample_size(10);
    for kind in kinds() {
        let mut det = kind.build(6);
        det.train(corpus.training());
        group.bench_function(BenchmarkId::new(kind.name(), test.len()), |b| {
            b.iter(|| det.scores(test));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_scoring);
criterion_main!(benches);

//! Shared fixtures for the `detdiv` benchmark harness.
//!
//! The Criterion benches and the `regenerate` binary both need corpora
//! of controlled size; this tiny library centralises their
//! construction so bench targets agree on what "small" and "paper
//! scale" mean.

#![forbid(unsafe_code)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

use detdiv_synth::{Corpus, SynthesisConfig};

/// A reduced corpus for microbenchmarks: 60 k training elements, AS
/// 2–4, DW 2–6.
///
/// # Panics
///
/// Panics if synthesis fails — benchmarks cannot proceed without their
/// fixture.
pub fn small_corpus() -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=4)
        .windows(2..=6)
        .background_len(1024)
        .plant_repeats(4)
        .seed(2005)
        .build()
        .expect("small benchmark configuration is valid");
    Corpus::synthesize(&config).expect("small benchmark corpus synthesizes")
}

/// A mid-size corpus exercising the full paper grid (AS 2–9, DW 2–15)
/// at a reduced training length.
///
/// # Panics
///
/// Panics if synthesis fails.
pub fn grid_corpus(training_len: usize) -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(training_len)
        .background_len(2048)
        .seed(2005)
        .build()
        .expect("grid benchmark configuration is valid");
    Corpus::synthesize(&config).expect("grid benchmark corpus synthesizes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let c = small_corpus();
        assert_eq!(c.anomalies().count(), 3);
        let g = grid_corpus(60_000);
        assert_eq!(g.anomalies().count(), 8);
    }
}

//! Shared fixtures for the `detdiv` benchmark harness.
//!
//! The Criterion benches and the `regenerate` binary both need corpora
//! of controlled size; this tiny library centralises their
//! construction so bench targets agree on what "small" and "paper
//! scale" mean.

#![forbid(unsafe_code)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod perfhist;

use detdiv_synth::{Corpus, SynthesisConfig};

/// Validates the `DETDIV_*` environment knobs the harness binaries
/// honour, so a typo (`DETDIV_THREADS=four`, `DETDIV_LOG=quiet`)
/// fails fast with a one-line diagnostic instead of being silently
/// replaced by a default deep inside the libraries.
///
/// `DETDIV_FAULT` is deliberately not checked here: arming it is the
/// caller's job ([`detdiv_resil::arm_from_env`] already returns a
/// typed parse error).
///
/// # Errors
///
/// Returns a human-readable description of the first malformed
/// variable; callers print it to stderr and exit nonzero.
pub fn preflight_env() -> Result<(), String> {
    for name in ["DETDIV_THREADS", "DETDIV_CACHE_CAP"] {
        if let Some(value) = env_value(name)? {
            match value.trim().parse::<usize>() {
                Ok(n) if n > 0 => {}
                _ => {
                    return Err(format!("{name}: not a positive integer: {value:?}"));
                }
            }
        }
    }
    if let Some(value) = env_value("DETDIV_LOG")? {
        if detdiv_obs::Level::parse(&value).is_none() {
            return Err(format!(
                "DETDIV_LOG: unknown level {value:?} (expected off, error, warn, info, debug or trace)"
            ));
        }
    }
    if let Some(value) = env_value("DETDIV_SERVE")? {
        use std::net::ToSocketAddrs as _;
        let resolves = value
            .trim()
            .to_socket_addrs()
            .map(|mut addrs| addrs.next().is_some())
            .unwrap_or(false);
        if !resolves {
            return Err(format!(
                "DETDIV_SERVE: not a listen address: {value:?} (expected HOST:PORT, e.g. 127.0.0.1:9184)"
            ));
        }
    }
    if let Some(value) = env_value("DETDIV_SCOPE_INTERVAL_MS")? {
        match value.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => {}
            _ => {
                return Err(format!(
                    "DETDIV_SCOPE_INTERVAL_MS: not a positive integer: {value:?}"
                ));
            }
        }
    }
    if let Some(value) = env_value("DETDIV_STREAM")? {
        if !matches!(value.trim(), "on" | "1" | "off" | "0") {
            return Err(format!(
                "DETDIV_STREAM: unknown mode {value:?} (expected on, 1, off or 0)"
            ));
        }
    }
    if let Some(value) = env_value("DETDIV_FLIGHT")? {
        let path = value.trim();
        if path.ends_with('/') || std::path::Path::new(path).is_dir() {
            return Err(format!(
                "DETDIV_FLIGHT: expected a dump file path, got a directory: {value:?}"
            ));
        }
    }
    Ok(())
}

/// Reads one environment variable: `None` when unset or empty, an
/// error when not valid Unicode.
fn env_value(name: &str) -> Result<Option<String>, String> {
    match std::env::var(name) {
        Ok(v) if v.trim().is_empty() => Ok(None),
        Ok(v) => Ok(Some(v)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name}: not valid Unicode")),
    }
}

/// A reduced corpus for microbenchmarks: 60 k training elements, AS
/// 2–4, DW 2–6.
///
/// # Panics
///
/// Panics if synthesis fails — benchmarks cannot proceed without their
/// fixture.
pub fn small_corpus() -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(60_000)
        .anomaly_sizes(2..=4)
        .windows(2..=6)
        .background_len(1024)
        .plant_repeats(4)
        .seed(2005)
        .build()
        .expect("small benchmark configuration is valid");
    Corpus::synthesize(&config).expect("small benchmark corpus synthesizes")
}

/// A mid-size corpus exercising the full paper grid (AS 2–9, DW 2–15)
/// at a reduced training length.
///
/// # Panics
///
/// Panics if synthesis fails.
pub fn grid_corpus(training_len: usize) -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(training_len)
        .background_len(2048)
        .seed(2005)
        .build()
        .expect("grid benchmark configuration is valid");
    Corpus::synthesize(&config).expect("grid benchmark corpus synthesizes")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test mutates all the inspected variables serially: separate
    /// tests would race each other through the process-global
    /// environment.
    #[test]
    fn env_preflight_accepts_good_and_rejects_bad() {
        for name in ["DETDIV_THREADS", "DETDIV_CACHE_CAP", "DETDIV_LOG"] {
            std::env::remove_var(name);
        }
        assert!(preflight_env().is_ok(), "unset environment is fine");

        std::env::set_var("DETDIV_THREADS", "4");
        std::env::set_var("DETDIV_CACHE_CAP", "128");
        std::env::set_var("DETDIV_LOG", "debug");
        assert!(preflight_env().is_ok(), "well-formed values pass");

        std::env::set_var("DETDIV_THREADS", "four");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_THREADS"), "{err}");
        std::env::set_var("DETDIV_THREADS", "0");
        assert!(preflight_env().is_err(), "zero threads is rejected");
        std::env::remove_var("DETDIV_THREADS");

        std::env::set_var("DETDIV_CACHE_CAP", "-3");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_CACHE_CAP"), "{err}");
        std::env::remove_var("DETDIV_CACHE_CAP");

        std::env::set_var("DETDIV_LOG", "quiet");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_LOG"), "{err}");
        std::env::remove_var("DETDIV_LOG");

        std::env::set_var("DETDIV_SERVE", "127.0.0.1:9184");
        assert!(preflight_env().is_ok(), "valid serve address passes");
        std::env::set_var("DETDIV_SERVE", "localhost:0");
        assert!(preflight_env().is_ok(), "resolvable host with port passes");
        std::env::set_var("DETDIV_SERVE", "not a socket");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_SERVE"), "{err}");
        std::env::remove_var("DETDIV_SERVE");

        std::env::set_var("DETDIV_SCOPE_INTERVAL_MS", "250");
        assert!(preflight_env().is_ok(), "positive interval passes");
        std::env::set_var("DETDIV_SCOPE_INTERVAL_MS", "0");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_SCOPE_INTERVAL_MS"), "{err}");
        std::env::set_var("DETDIV_SCOPE_INTERVAL_MS", "fast");
        assert!(preflight_env().is_err(), "non-numeric interval rejected");
        std::env::remove_var("DETDIV_SCOPE_INTERVAL_MS");

        for good in ["on", "off", "1", "0"] {
            std::env::set_var("DETDIV_STREAM", good);
            assert!(preflight_env().is_ok(), "DETDIV_STREAM={good} passes");
        }
        std::env::set_var("DETDIV_STREAM", "sometimes");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_STREAM"), "{err}");
        std::env::remove_var("DETDIV_STREAM");

        std::env::set_var("DETDIV_FLIGHT", "/tmp/detdiv-flight.jsonl");
        assert!(preflight_env().is_ok(), "file path passes");
        std::env::set_var("DETDIV_FLIGHT", "/tmp/");
        let err = preflight_env().unwrap_err();
        assert!(err.contains("DETDIV_FLIGHT"), "{err}");
        std::env::remove_var("DETDIV_FLIGHT");

        assert!(preflight_env().is_ok(), "clean again after the sweep");
    }

    #[test]
    fn fixtures_build() {
        let c = small_corpus();
        assert_eq!(c.anomalies().count(), 3);
        let g = grid_corpus(60_000);
        assert_eq!(g.anomalies().count(), 8);
    }
}

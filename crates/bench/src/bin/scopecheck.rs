//! CI checker for a live `detdiv-scope` exposition server.
//!
//! ```text
//! scopecheck --addr HOST:PORT [--retries N] [--delay-ms MS] [--expect-telemetry]
//! ```
//!
//! Scrapes all four endpoints of a running server (typically one armed
//! by `regenerate --serve 127.0.0.1:0` in another process) and
//! validates each:
//!
//! * `/metrics` parses under the hand-rolled Prometheus text-format
//!   validator (HELP/TYPE headers, name charset, cumulative histogram
//!   buckets, `+Inf` terminals);
//! * `/healthz` is JSON with `"status": "ok"`;
//! * `/snapshot.json` deserializes as a `TelemetrySnapshot`;
//! * `/profilez` renders the self-profile header.
//!
//! The first scrape retries with a bounded delay, because CI starts
//! the server and the checker concurrently and the run being observed
//! may still be in preflight. With `--expect-telemetry`, the check
//! additionally requires `/healthz` to report telemetry enabled and
//! `/metrics` to expose at least one `detdiv_*_total` counter —
//! the mid-run-scrape assertion for a telemetry-on run.

use detdiv_scope::{expo, server};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    retries: u32,
    delay_ms: u64,
    expect_telemetry: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        retries: 20,
        delay_ms: 250,
        expect_telemetry: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--retries" => {
                args.retries = it
                    .next()
                    .ok_or("--retries needs a count")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--delay-ms" => {
                args.delay_ms = it
                    .next()
                    .ok_or("--delay-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--delay-ms: {e}"))?;
            }
            "--expect-telemetry" => args.expect_telemetry = true,
            "--help" | "-h" => {
                println!(
                    "usage: scopecheck --addr HOST:PORT [--retries N] [--delay-ms MS] [--expect-telemetry]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required".to_owned());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let (addr, _) = server::parse_scrape_url(&args.addr)?;
    let timeout = Duration::from_secs(5);

    // First contact, with bounded retry: the server may still be
    // binding when CI launches us.
    let mut attempt = 0;
    let metrics = loop {
        attempt += 1;
        match server::http_get(&addr, "/metrics", timeout) {
            Ok((200, body)) => break body,
            Ok((status, _)) => {
                return Err(format!("/metrics answered HTTP {status}"));
            }
            Err(e) if attempt <= args.retries => {
                eprintln!(
                    "scopecheck: attempt {attempt}/{}: {e}; retrying in {} ms",
                    args.retries, args.delay_ms
                );
                std::thread::sleep(Duration::from_millis(args.delay_ms));
            }
            Err(e) => {
                return Err(format!(
                    "/metrics unreachable after {attempt} attempts: {e}"
                ))
            }
        }
    };
    let parsed = expo::validate(&metrics)
        .map_err(|e| format!("/metrics is not valid Prometheus text: {e}"))?;
    eprintln!(
        "scopecheck: /metrics valid — {} families, {} samples",
        parsed.families.len(),
        parsed.samples.len()
    );

    let (status, health) = server::http_get(&addr, "/healthz", timeout)?;
    if status != 200 {
        return Err(format!("/healthz answered HTTP {status}"));
    }
    let health =
        serde_json::from_str_value(&health).map_err(|e| format!("/healthz is not JSON: {e}"))?;
    if health.get("status").and_then(|v| v.as_str()) != Some("ok") {
        return Err("healthz status is not \"ok\"".to_owned());
    }
    eprintln!("scopecheck: /healthz ok");

    let (status, snapshot) = server::http_get(&addr, "/snapshot.json", timeout)?;
    if status != 200 {
        return Err(format!("/snapshot.json answered HTTP {status}"));
    }
    let snapshot: detdiv_obs::TelemetrySnapshot = serde_json::from_str(&snapshot)
        .map_err(|e| format!("/snapshot.json does not deserialize: {e}"))?;
    eprintln!(
        "scopecheck: /snapshot.json ok — {} counters, {} histograms, {} series",
        snapshot.counters.len(),
        snapshot.histograms.len(),
        snapshot.timeseries.len()
    );

    let (status, profile) = server::http_get(&addr, "/profilez", timeout)?;
    if status != 200 {
        return Err(format!("/profilez answered HTTP {status}"));
    }
    if !profile.starts_with("detdiv self-profile") {
        return Err("profilez is missing its header line".to_owned());
    }
    eprintln!("scopecheck: /profilez ok");

    if args.expect_telemetry {
        if health.get("telemetry_enabled") != Some(&serde::Value::Bool(true)) {
            return Err("telemetry expected but /healthz reports it disabled".to_owned());
        }
        let counters = parsed
            .samples
            .iter()
            .filter(|s| s.name.starts_with("detdiv_") && s.name.ends_with("_total"))
            .count();
        if counters == 0 {
            return Err("telemetry expected but /metrics exposes no detdiv counters".to_owned());
        }
        if snapshot.counters.is_empty() {
            return Err("telemetry expected but the snapshot has no counters".to_owned());
        }
        eprintln!("scopecheck: telemetry visible — {counters} exposed counters");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scopecheck: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => {
            eprintln!("scopecheck: all endpoints valid");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scopecheck: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Perf-history trajectory and regression gate over the committed
//! `BENCH_*.json` baselines.
//!
//! ```text
//! perfhist [--dir PATH] [--threshold PCT] [FILE...]
//! ```
//!
//! With no positional files, scans `--dir` (default `.`) for
//! `BENCH_*.json`. Prints the per-metric trajectory table across all
//! baselines in PR order, then gates every metric in `GATED_METRICS`
//! over that metric's own newest-carrier pair, direction-aware: exits
//! non-zero when a wall time or latency (`wall_ms_trace_off`,
//! `serve_p99_us`) *grew* — or a throughput (`stream_events_per_sec`,
//! `serve_events_per_sec`) *dropped* — by more than `--threshold`
//! percent (default 25) against the newest older baseline carrying
//! the metric at the same sweep shape (training length, stream count,
//! thread count). A metric carried by no baseline, only by its
//! introducing baseline, or with no same-shape predecessor abstains
//! and passes — so a new harness's first baseline never fails the
//! gate, and never un-gates the established metrics either.
//!
//! The default threshold is deliberately generous: CI machines are
//! noisy and baselines are measured on whatever hardware produced the
//! PR. The gate exists to catch structural regressions (2×, 10×), not
//! 5% jitter.

use detdiv_bench::perfhist;
use std::process::ExitCode;

struct Args {
    dir: String,
    threshold: f64,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: ".".to_owned(),
        threshold: 25.0,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => args.dir = it.next().ok_or("--dir needs a path")?,
            "--threshold" => {
                args.threshold = it
                    .next()
                    .ok_or("--threshold needs a percentage")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if args.threshold < 0.0 {
                    return Err("--threshold: must be non-negative".to_owned());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: perfhist [--dir PATH] [--threshold PCT] [FILE...]\n\
                     Prints the BENCH_*.json perf trajectory and exits non-zero when any gated\n\
                     metric regressed beyond the threshold (default 25%) between its own two\n\
                     newest same-shape carriers: wall_ms_trace_off or serve_p99_us growing,\n\
                     stream_events_per_sec or serve_events_per_sec dropping."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            file => args.files.push(file.to_owned()),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let mut baselines = if args.files.is_empty() {
        perfhist::discover(&args.dir)?
    } else {
        let mut files = Vec::with_capacity(args.files.len());
        for path in &args.files {
            files.push(perfhist::BaselineFile::load(path)?);
        }
        perfhist::sort_baselines(&mut files);
        files
    };
    perfhist::sort_baselines(&mut baselines);
    print!("{}", perfhist::render_trajectory(&baselines));
    let verdicts = perfhist::gate(&baselines, args.threshold);
    for verdict in &verdicts {
        eprintln!("{}", verdict.render());
    }
    Ok(if verdicts.iter().any(perfhist::Verdict::is_regression) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfhist: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perfhist: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Perf-history trajectory and regression gate over the committed
//! `BENCH_*.json` baselines.
//!
//! ```text
//! perfhist [--dir PATH] [--threshold PCT] [FILE...]
//! ```
//!
//! With no positional files, scans `--dir` (default `.`) for
//! `BENCH_*.json`. Prints the per-metric trajectory table across all
//! baselines in PR order, then gates the newest pair on every metric
//! in `GATED_METRICS`, direction-aware: exits non-zero when the
//! headline wall time (`wall_ms_trace_off`) *grew* — or the streaming
//! throughput (`stream_events_per_sec`) *dropped* — by more than
//! `--threshold` percent (default 25) between the two newest baselines
//! — provided they measured the same sweep shape (training length and
//! thread count) and both carry the metric; otherwise that metric
//! abstains and passes.
//!
//! The default threshold is deliberately generous: CI machines are
//! noisy and baselines are measured on whatever hardware produced the
//! PR. The gate exists to catch structural regressions (2×, 10×), not
//! 5% jitter.

use detdiv_bench::perfhist;
use std::process::ExitCode;

struct Args {
    dir: String,
    threshold: f64,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: ".".to_owned(),
        threshold: 25.0,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => args.dir = it.next().ok_or("--dir needs a path")?,
            "--threshold" => {
                args.threshold = it
                    .next()
                    .ok_or("--threshold needs a percentage")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if args.threshold < 0.0 {
                    return Err("--threshold: must be non-negative".to_owned());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: perfhist [--dir PATH] [--threshold PCT] [FILE...]\n\
                     Prints the BENCH_*.json perf trajectory and exits non-zero when the newest\n\
                     baseline regressed a gated metric beyond the threshold (default 25%):\n\
                     wall_ms_trace_off growing, or stream_events_per_sec dropping."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            file => args.files.push(file.to_owned()),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let mut baselines = if args.files.is_empty() {
        perfhist::discover(&args.dir)?
    } else {
        let mut files = Vec::with_capacity(args.files.len());
        for path in &args.files {
            files.push(perfhist::BaselineFile::load(path)?);
        }
        perfhist::sort_baselines(&mut files);
        files
    };
    perfhist::sort_baselines(&mut baselines);
    print!("{}", perfhist::render_trajectory(&baselines));
    let verdicts = perfhist::gate(&baselines, args.threshold);
    for verdict in &verdicts {
        eprintln!("{}", verdict.render());
    }
    Ok(if verdicts.iter().any(perfhist::Verdict::is_regression) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfhist: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perfhist: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `mfscensus` — count minimal foreign sequences in UNM-format traces.
//!
//! The command-line face of the paper's §4.1 measurement: train on one
//! trace file, scan another, and report the MFSs of each length.
//!
//! ```text
//! mfscensus <training.trace> <monitor.trace> [max_len]
//! mfscensus --demo [max_len]        # synthetic sendmail-like corpora
//! ```
//!
//! Trace files are UNM format: one `pid syscall` pair per line, `#`
//! comments allowed. Each process is scanned separately and the counts
//! are pooled, matching the per-process analyses of the UNM studies.

use std::process::ExitCode;

use detdiv_obs as obs;
use detdiv_trace::{generate_sendmail_like, mfs_census, TraceGenConfig, TraceSet};

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--help") || args.is_empty() {
        println!(
            "usage: mfscensus <training.trace> <monitor.trace> [max_len]\n\
             \x20      mfscensus --demo [max_len]"
        );
        return Ok(());
    }

    let (training_set, monitor_set, max_len) = if args[0] == "--demo" {
        let max_len: usize = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(8);
        obs::info!(
            "generating synthetic sendmail-like corpora",
            seeds = "100/200"
        );
        let training = generate_sendmail_like(&TraceGenConfig {
            processes: 8,
            events_per_process: 4000,
            seed: 100,
        })?;
        let monitor = generate_sendmail_like(&TraceGenConfig {
            processes: 4,
            events_per_process: 3000,
            seed: 200,
        })?;
        (training, monitor, max_len)
    } else {
        if args.len() < 2 {
            return Err("need a training trace and a monitor trace (see --help)".into());
        }
        let training = TraceSet::parse(&std::fs::read_to_string(&args[0])?)?;
        let monitor = TraceSet::parse(&std::fs::read_to_string(&args[1])?)?;
        let max_len: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(8);
        (training, monitor, max_len)
    };

    let training = training_set.concatenated();
    println!(
        "training: {} processes, {} events; scanning {} processes",
        training_set.process_count(),
        training.len(),
        monitor_set.process_count()
    );

    let mut pooled: Vec<(usize, usize)> = (2..=max_len).map(|l| (l, 0)).collect();
    for (pid, stream) in monitor_set.iter() {
        if stream.len() < max_len {
            println!(
                "pid {pid}: skipped ({} events, shorter than max_len)",
                stream.len()
            );
            continue;
        }
        let report = mfs_census(&training, stream, max_len)?;
        println!(
            "pid {pid}: {} MFS occurrences in {} events",
            report.total(),
            stream.len()
        );
        for (slot, &(len, count)) in pooled.iter_mut().zip(&report.counts) {
            debug_assert_eq!(slot.0, len);
            slot.1 += count;
        }
    }

    println!("\npooled census:");
    let mut total = 0usize;
    for &(len, count) in &pooled {
        println!("  length {len:>2}: {count}");
        total += count;
    }
    println!("  total: {total}");
    Ok(())
}

fn main() -> ExitCode {
    if std::env::var_os("DETDIV_LOG").is_none() {
        obs::set_max_level(obs::Level::Info);
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error!("run failed", detail = e);
            ExitCode::FAILURE
        }
    }
}

//! `mfscensus` — count minimal foreign sequences in UNM-format traces.
//!
//! The command-line face of the paper's §4.1 measurement: train on one
//! trace file, scan another, and report the MFSs of each length.
//!
//! ```text
//! mfscensus <training.trace> <monitor.trace> [max_len] [--threads N]
//! mfscensus --demo [max_len] [--threads N]   # synthetic sendmail-like corpora
//! ```
//!
//! Trace files are UNM format: one `pid syscall` pair per line, `#`
//! comments allowed. Each process is scanned separately — in parallel
//! across the `detdiv-par` pool (`--threads` / `DETDIV_THREADS`) —
//! and the counts are pooled, matching the per-process analyses of the
//! UNM studies. The pooled census is order-independent and the
//! per-process merge is index-deterministic, so the output never
//! depends on the worker count.
//!
//! Progress goes through the `detdiv-obs` logger (info level by
//! default; silence it with `DETDIV_LOG=off` or pick a level) while
//! the census result table itself is plain stdout, so
//! `mfscensus ... 2>/dev/null` and piping the table both behave.

use std::process::ExitCode;

use detdiv_obs as obs;
use detdiv_trace::{generate_sendmail_like, mfs_census, TraceGenConfig, TraceSet};

struct Args {
    /// Positional arguments (paths / max_len / `--demo`).
    positional: Vec<String>,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let value: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if value == 0 {
                    return Err("--threads: must be at least 1".to_owned());
                }
                args.threads = Some(value);
            }
            _ => args.positional.push(arg),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let positional = &args.positional;
    if positional.first().map(String::as_str) == Some("--help") || positional.is_empty() {
        println!(
            "usage: mfscensus <training.trace> <monitor.trace> [max_len] [--threads N]\n\
             \x20      mfscensus --demo [max_len] [--threads N]"
        );
        return Ok(());
    }

    let (training_set, monitor_set, max_len) = if positional[0] == "--demo" {
        let max_len: usize = positional
            .get(1)
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(8);
        obs::info!(
            "generating synthetic sendmail-like corpora",
            seeds = "100/200"
        );
        let training = generate_sendmail_like(&TraceGenConfig {
            processes: 8,
            events_per_process: 4000,
            seed: 100,
        })?;
        let monitor = generate_sendmail_like(&TraceGenConfig {
            processes: 4,
            events_per_process: 3000,
            seed: 200,
        })?;
        (training, monitor, max_len)
    } else {
        if positional.len() < 2 {
            return Err("need a training trace and a monitor trace (see --help)".into());
        }
        let training = TraceSet::parse(&std::fs::read_to_string(&positional[0])?)?;
        let monitor = TraceSet::parse(&std::fs::read_to_string(&positional[1])?)?;
        let max_len: usize = positional
            .get(2)
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or(8);
        (training, monitor, max_len)
    };

    let training = training_set.concatenated();
    obs::info!(
        "census starting",
        training_processes = training_set.process_count(),
        training_events = training.len(),
        monitor_processes = monitor_set.process_count(),
        max_len = max_len,
        threads = detdiv_par::configured_threads(),
    );

    // One parallel job per monitored process. `par_try_map` keeps the
    // per-pid results in input order and surfaces the error of the
    // smallest failing index, so pooling below is schedule-independent.
    let _span = obs::span!("mfscensus_scan");
    let streams: Vec<(u32, &[detdiv_sequence::Symbol])> = monitor_set.iter().collect();
    let per_pid = detdiv_par::par_try_map(&streams, |&(pid, stream)| {
        if stream.len() < max_len {
            obs::info!("process skipped", pid = pid, events = stream.len());
            return Ok(None);
        }
        let report = mfs_census(&training, stream, max_len)?;
        obs::info!(
            "process scanned",
            pid = pid,
            events = stream.len(),
            mfs_occurrences = report.total(),
        );
        Ok::<_, detdiv_trace::TraceError>(Some(report))
    })?;

    let mut pooled: Vec<(usize, usize)> = (2..=max_len).map(|l| (l, 0)).collect();
    let mut scanned = 0usize;
    for report in per_pid.into_iter().flatten() {
        scanned += 1;
        for (slot, &(len, count)) in pooled.iter_mut().zip(&report.counts) {
            debug_assert_eq!(slot.0, len);
            slot.1 += count;
        }
    }

    // The result table is the program's product: plain stdout, always.
    println!(
        "pooled census ({} of {} processes scanned, training {} events):",
        scanned,
        streams.len(),
        training.len()
    );
    let mut total = 0usize;
    for &(len, count) in &pooled {
        println!("  length {len:>2}: {count}");
        total += count;
    }
    println!("  total: {total}");
    Ok(())
}

fn main() -> ExitCode {
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("mfscensus: environment error: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("DETDIV_LOG").is_none() {
        obs::set_max_level(obs::Level::Info);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mfscensus: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(threads) = args.threads {
        detdiv_par::global().set_threads(Some(threads));
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // eprintln in addition to the structured logger so the
            // failure is diagnosable even under DETDIV_LOG=off.
            eprintln!("mfscensus: {e}");
            obs::error!("run failed", detail = e);
            ExitCode::FAILURE
        }
    }
}

//! Validates a flight-recorder audit log and cross-checks it against
//! the coverage maps of the same run.
//!
//! ```text
//! flightcheck --dump PATH [--report PATH] [--crash PATH]
//! ```
//!
//! * `--dump PATH` — the wide-event audit log written by
//!   `regenerate --flight PATH`. Always validated: every line must
//!   carry an intact `detdiv-resil` journal checksum and parse as
//!   JSON, the payloads (footer excluded) must be sorted — the
//!   recorder's byte-determinism contract — and the trailing `footer`
//!   record must agree with the line count and report zero drops.
//! * `--report PATH` — the `paper_report.json` of the *same* run.
//!   When given, the paper-grid coverage maps (fig3–fig6) are
//!   reconstructed from the dump's `cell` records: every
//!   detect/weak/blind cell of each map must have a matching record
//!   with the same verdict, the distinct detect-verdict cells per
//!   detector must equal the map's `detection_count`, and no grid cell
//!   may carry conflicting verdicts across experiments (several
//!   experiments re-evaluate the same cells; determinism says they
//!   must agree). Records are filtered to the run's corpus via the
//!   dump's `header` fingerprint, so sub-experiments on derived
//!   corpora (abl4's shorter training lengths) cannot pollute the
//!   reconstruction.
//! * `--crash PATH` — a `PATH.crash` blackbox dump (written by the
//!   panic hook or on stream degradation). Validated for checksums, a
//!   leading `crash` record naming the reason, and an event count that
//!   matches the remaining lines.
//! * `--guard` — require and validate the overload guard's audit trail
//!   (`guard` records from `loadgen --overload`): per shard, record
//!   sequence numbers must be strictly increasing, the degradation
//!   ladder must form an unbroken transition chain starting at `full`
//!   (watchdog forcings included), and every breaker chain must start
//!   at `closed` and step contiguously (`open` ↔ `half-open` ↔
//!   `closed`). Hibernate/rehydrate records must carry their fixed
//!   outcomes. This is the "every ladder/breaker move is
//!   reconstructable from the flight log" gate.
//!
//! Any violation prints a one-line diagnostic and exits nonzero, so CI
//! can gate on "every alarm in the report is reconstructable from the
//! audit log".

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use detdiv_resil::Journal;
use serde_json::Value;

struct Args {
    dump: String,
    report: Option<String>,
    crash: Option<String>,
    guard: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut dump = None;
    let mut report = None;
    let mut crash = None;
    let mut guard = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dump" => dump = Some(it.next().ok_or("--dump needs a path")?),
            "--report" => report = Some(it.next().ok_or("--report needs a path")?),
            "--crash" => crash = Some(it.next().ok_or("--crash needs a path")?),
            "--guard" => guard = true,
            "--help" | "-h" => {
                println!("usage: flightcheck --dump PATH [--report PATH] [--crash PATH] [--guard]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        dump: dump.ok_or("--dump is required")?,
        report,
        crash,
        guard,
    })
}

fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

/// A required string field of a record, or a diagnostic naming it.
fn field_str<'a>(record: &'a Value, name: &str, what: &str) -> Result<&'a str, String> {
    record
        .get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: missing string field {name:?}"))
}

/// A required unsigned field of a record, or a diagnostic naming it.
fn field_u64(record: &Value, name: &str, what: &str) -> Result<u64, String> {
    record
        .get(name)
        .and_then(value_u64)
        .ok_or_else(|| format!("{what}: missing unsigned field {name:?}"))
}

/// Loads a checksummed journal file and parses every payload as JSON,
/// returning `(raw_payload, parsed)` pairs in file order.
fn load_parsed(path: &str) -> Result<Vec<(String, Value)>, String> {
    let payloads = Journal::load(path).map_err(|e| format!("{path}: {e}"))?;
    if payloads.is_empty() {
        return Err(format!("{path}: no intact records"));
    }
    payloads
        .into_iter()
        .enumerate()
        .map(|(i, payload)| {
            let parsed = serde_json::from_str_value(&payload)
                .map_err(|e| format!("{path}: line {}: not JSON: {e}", i + 1))?;
            Ok((payload, parsed))
        })
        .collect()
}

/// The paper-grid coverage maps the reconstruction checks, as they
/// appear in `paper_report.json`.
const FIG_MAPS: &[&str] = &["fig3", "fig4", "fig5", "fig6"];

/// Maps a report `CellStatus` string to the single-letter verdict the
/// cell records carry.
fn verdict_letter(status: &str) -> Option<char> {
    match status {
        "Detect" => Some('D'),
        "Weak" => Some('W'),
        "Blind" => Some('B'),
        "Undefined" => Some('U'),
        "Failed" => Some('F'),
        _ => None,
    }
}

/// Validates the audit log's structure: checksums (via the journal
/// loader), JSON payloads, sorted order, and a truthful footer.
/// Returns the parsed records with the footer removed.
fn check_dump(path: &str) -> Result<Vec<(String, Value)>, String> {
    let mut records = load_parsed(path)?;
    let (_, footer) = records.pop().expect("load_parsed rejects empty dumps");
    if field_str(&footer, "t", "footer")? != "footer" {
        return Err(format!("{path}: last record is not the footer"));
    }
    let counted = field_u64(&footer, "records", "footer")?;
    if counted != records.len() as u64 {
        return Err(format!(
            "{path}: footer counts {counted} records, file holds {}",
            records.len()
        ));
    }
    let dropped = field_u64(&footer, "dropped", "footer")?;
    if dropped != 0 {
        return Err(format!(
            "{path}: {dropped} records were dropped at the sink; the log is incomplete"
        ));
    }
    if let Some(w) = records.windows(2).position(|w| w[0].0 > w[1].0) {
        return Err(format!(
            "{path}: payloads out of sorted order at line {}",
            w + 2
        ));
    }
    for (i, (_, record)) in records.iter().enumerate() {
        field_str(record, "t", &format!("{path}: line {}", i + 1))?;
    }
    Ok(records)
}

/// Cross-checks the dump's `cell` records against the report's
/// fig3–fig6 coverage maps. Returns `(cells_checked, alarms_checked)`.
fn check_report(records: &[(String, Value)], report_path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(report_path).map_err(|e| format!("{report_path}: {e}"))?;
    let report =
        serde_json::from_str_value(&text).map_err(|e| format!("{report_path}: not JSON: {e}"))?;

    // The run's corpus identity comes from the header record; every
    // reconstruction below filters on it.
    let headers: BTreeSet<&str> = records
        .iter()
        .filter(|(_, r)| r.get("t").and_then(Value::as_str) == Some("header"))
        .map(|(_, r)| field_str(r, "corpus", "header"))
        .collect::<Result<_, _>>()?;
    if headers.len() != 1 {
        return Err(format!(
            "expected exactly one header corpus fingerprint, found {}",
            headers.len()
        ));
    }
    let corpus = *headers.iter().next().expect("len checked");

    // (detector, window, AS) -> verdicts seen across all experiments.
    let mut seen: BTreeMap<(String, u64, u64), BTreeSet<char>> = BTreeMap::new();
    for (_, record) in records {
        if record.get("t").and_then(Value::as_str) != Some("cell") {
            continue;
        }
        if field_str(record, "corpus", "cell")? != corpus {
            continue;
        }
        let detector = field_str(record, "detector", "cell")?.to_owned();
        let window = field_u64(record, "window", "cell")?;
        let anomaly_size = field_u64(record, "anomaly_size", "cell")?;
        let verdict = field_str(record, "verdict", "cell")?;
        let letter = verdict
            .chars()
            .next()
            .filter(|_| verdict.len() == 1)
            .ok_or_else(|| format!("cell: malformed verdict {verdict:?}"))?;
        seen.entry((detector, window, anomaly_size))
            .or_default()
            .insert(letter);
    }
    for ((detector, window, anomaly_size), verdicts) in &seen {
        if verdicts.len() > 1 {
            return Err(format!(
                "cell ({detector}, DW {window}, AS {anomaly_size}) carries conflicting \
                 verdicts {verdicts:?}; experiments disagreed on a deterministic cell"
            ));
        }
    }

    let mut cells_checked = 0usize;
    let mut alarms_checked = 0usize;
    for fig in FIG_MAPS {
        let map = report
            .get(fig)
            .ok_or_else(|| format!("{report_path}: missing {fig}"))?;
        let detector = field_str(map, "detector", fig)?;
        let sizes: Vec<u64> = map
            .get("anomaly_sizes")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{fig}: missing anomaly_sizes"))?
            .iter()
            .filter_map(value_u64)
            .collect();
        let windows: Vec<u64> = map
            .get("windows")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{fig}: missing windows"))?
            .iter()
            .filter_map(value_u64)
            .collect();
        let cells = map
            .get("cells")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{fig}: missing cells"))?;
        if cells.len() != sizes.len() * windows.len() {
            return Err(format!("{fig}: cell count does not match its grid"));
        }
        let mut map_alarms = 0usize;
        let mut log_alarms = 0usize;
        // Cells are row-major by window, then anomaly size.
        for (wi, window) in windows.iter().enumerate() {
            for (ai, anomaly_size) in sizes.iter().enumerate() {
                let status = cells[wi * sizes.len() + ai]
                    .as_str()
                    .ok_or_else(|| format!("{fig}: non-string cell status"))?;
                let letter = verdict_letter(status)
                    .ok_or_else(|| format!("{fig}: unknown cell status {status:?}"))?;
                let recorded = seen.get(&(detector.to_owned(), *window, *anomaly_size));
                if letter == 'D' {
                    map_alarms += 1;
                }
                if recorded.is_some_and(|v| v.contains(&'D')) {
                    log_alarms += 1;
                }
                match letter {
                    // Undefined cells are never scored (no record);
                    // failed cells surface as `failure` records from
                    // the supervision observer instead.
                    'U' | 'F' => continue,
                    _ => {}
                }
                let verdicts = recorded.ok_or_else(|| {
                    format!(
                        "{fig}: no audit record for ({detector}, DW {window}, AS {anomaly_size})"
                    )
                })?;
                if !verdicts.contains(&letter) {
                    return Err(format!(
                        "{fig}: ({detector}, DW {window}, AS {anomaly_size}) is {status:?} \
                         in the report but recorded {verdicts:?} in the audit log"
                    ));
                }
                cells_checked += 1;
            }
        }
        if map_alarms != log_alarms {
            return Err(format!(
                "{fig}: {detector} raises {map_alarms} alarms in the report but the audit \
                 log reconstructs {log_alarms}"
            ));
        }
        alarms_checked += map_alarms;
    }
    Ok((cells_checked, alarms_checked))
}

/// Per-kind record counts from the guard audit trail, for the summary
/// line (and for CI to grep).
#[derive(Default)]
struct GuardCounts {
    ladder: usize,
    breaker: usize,
    watchdog: usize,
    hibernate: usize,
    rehydrate: usize,
}

/// A required hex-encoded unsigned field of a guard record.
fn field_hex(record: &Value, name: &str, what: &str) -> Result<u64, String> {
    let raw = field_str(record, name, what)?;
    u64::from_str_radix(raw, 16).map_err(|_| format!("{what}: field {name:?} is not hex: {raw:?}"))
}

/// Validates the overload guard's audit trail: per-shard strictly
/// increasing sequence numbers, an unbroken ladder transition chain
/// from `full` (watchdog forcings participate — they carry the levels
/// they observed or forced), breaker chains from `closed`, and fixed
/// hibernate/rehydrate outcomes.
fn check_guard(records: &[(String, Value)]) -> Result<GuardCounts, String> {
    let mut counts = GuardCounts::default();
    // shard -> (last seq, expected ladder level, expected breaker state)
    let mut shards: BTreeMap<u64, (Option<u64>, &str, &str)> = BTreeMap::new();
    for (_, record) in records {
        if record.get("t").and_then(Value::as_str) != Some("guard") {
            continue;
        }
        let shard = field_hex(record, "shard", "guard")?;
        let what = format!("guard shard {shard}");
        let seq = field_hex(record, "seq", &what)?;
        let kind = field_str(record, "kind", &what)?;
        let from = field_str(record, "from", &what)?;
        let to = field_str(record, "to", &what)?;
        let state = shards.entry(shard).or_insert((None, "full", "closed"));
        if state.0.is_some_and(|last| seq <= last) {
            return Err(format!(
                "{what}: seq {seq} is not strictly increasing (last {})",
                state.0.expect("checked")
            ));
        }
        state.0 = Some(seq);
        match kind {
            "ladder" | "watchdog" => {
                if kind == "ladder" {
                    counts.ladder += 1;
                } else {
                    counts.watchdog += 1;
                }
                if from != state.1 {
                    return Err(format!(
                        "{what}: {kind} record leaves level {from:?} but the chain is at {:?}",
                        state.1
                    ));
                }
                state.1 = match to {
                    "full" => "full",
                    "gated-only" => "gated-only",
                    "tier1-only" => "tier1-only",
                    "shedding" => "shedding",
                    other => return Err(format!("{what}: unknown ladder level {other:?}")),
                };
            }
            "breaker" => {
                counts.breaker += 1;
                if from != state.2 {
                    return Err(format!(
                        "{what}: breaker record leaves state {from:?} but the chain is at {:?}",
                        state.2
                    ));
                }
                state.2 = match to {
                    "closed" => "closed",
                    "open" => "open",
                    "half-open" => "half-open",
                    other => return Err(format!("{what}: unknown breaker state {other:?}")),
                };
            }
            "hibernate" => {
                counts.hibernate += 1;
                if to != "spilled" {
                    return Err(format!("{what}: hibernate record with outcome {to:?}"));
                }
            }
            "rehydrate" => {
                counts.rehydrate += 1;
                if to != "restored" && to != "cold" {
                    return Err(format!("{what}: rehydrate record with outcome {to:?}"));
                }
            }
            other => return Err(format!("{what}: unknown guard record kind {other:?}")),
        }
    }
    let total =
        counts.ladder + counts.breaker + counts.watchdog + counts.hibernate + counts.rehydrate;
    if total == 0 {
        return Err("--guard was given but the dump holds no guard records".into());
    }
    Ok(counts)
}

/// Validates a crash blackbox dump: checksums, the leading `crash`
/// record, and its event count. Returns `(reason, events)`.
fn check_crash(path: &str) -> Result<(String, usize), String> {
    let records = load_parsed(path)?;
    let (_, head) = &records[0];
    if field_str(head, "t", "crash header")? != "crash" {
        return Err(format!("{path}: first record is not the crash header"));
    }
    let reason = field_str(head, "reason", "crash header")?.to_owned();
    let events = field_u64(head, "events", "crash header")? as usize;
    if events != records.len() - 1 {
        return Err(format!(
            "{path}: crash header counts {events} events, file holds {}",
            records.len() - 1
        ));
    }
    Ok((reason, events))
}

fn run(args: &Args) -> Result<String, String> {
    let records = check_dump(&args.dump)?;
    let mut summary = format!("flightcheck: {} records validated", records.len());
    if let Some(report) = &args.report {
        let (cells, alarms) = check_report(&records, report)?;
        summary.push_str(&format!(
            "; {cells} grid cells and {alarms} alarms reconstructed against {report}"
        ));
    }
    if let Some(crash) = &args.crash {
        let (reason, events) = check_crash(crash)?;
        summary.push_str(&format!(
            "; crash dump intact ({events} events, reason {reason:?})"
        ));
    }
    if args.guard {
        let c = check_guard(&records)?;
        summary.push_str(&format!(
            "; guard trail intact ({} ladder, {} breaker, {} watchdog, {} hibernate, \
             {} rehydrate)",
            c.ladder, c.breaker, c.watchdog, c.hibernate, c.rehydrate
        ));
    }
    Ok(summary)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("flightcheck: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("flightcheck: {e}");
            ExitCode::FAILURE
        }
    }
}

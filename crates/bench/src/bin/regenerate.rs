//! Regenerates every figure and analysis of Tan & Maxion (DSN 2005).
//!
//! ```text
//! regenerate [--experiment ID] [--training-len N] [--paper] [--seed N] [--json PATH] [--threads N] [--no-cache]
//! ```
//!
//! * `--experiment` — one of `fig2 fig3 fig4 fig5 fig6 fig7 comb1 comb2
//!   comb3 abl1 abl2 abl3 abl4 nat1 ext1 div1 masq1 fn1 ana1 all` (default `all`);
//! * `--training-len` — training-stream length (default 200,000; the
//!   paper's full scale is 1,000,000);
//! * `--paper` — shorthand for `--training-len 1000000`;
//! * `--seed` — synthesis seed (default: the paper configuration's);
//! * `--json` — additionally write the full report as JSON (only with
//!   `all`); run telemetry is written as `paper_telemetry.json` next
//!   to the report. The output directory is checked for writability
//!   *before* any computation starts, so a bad path fails in
//!   milliseconds, not after the full evaluation;
//! * `--threads` — worker count for the evaluation grid's parallel
//!   fan-outs; overrides the `DETDIV_THREADS` environment variable
//!   (default: available parallelism). Results are identical at every
//!   thread count;
//! * `--log` — diagnostic verbosity (`off error warn info debug
//!   trace`); overrides the `DETDIV_LOG` environment variable. The
//!   binary defaults to `info` so progress is visible; `off` also
//!   disables telemetry collection;
//! * `--trace` — arm the per-thread event recorder and write a Chrome
//!   trace-event JSON file (loadable in Perfetto or `chrome://tracing`)
//!   to the given path when the run finishes; overrides the
//!   `DETDIV_TRACE` environment variable. Tracing is independent of
//!   `--log off`: spans, grid cells, and `par-worker-N` activity are
//!   recorded even when logging and telemetry are disabled;
//! * `--no-cache` — disable the single-flight trained-model cache and
//!   train every model afresh (equivalent to `DETDIV_CACHE=off`).
//!   Results are byte-identical either way; this exists for honest
//!   timing comparisons and as an escape hatch;
//! * `--stream` — score every coverage cell through the push-based
//!   streaming adapter (`detdiv-stream`), one event at a time, instead
//!   of one batch `scores()` call (equivalent to `DETDIV_STREAM=on`).
//!   Streamed scores are bit-identical to batch scores, so artifacts
//!   are byte-identical either way — CI enforces this with `cmp`;
//! * `--fault SPEC` — arm deterministic fault injection
//!   (`seed:rate:kinds[:stall_ms]`, e.g. `42:1%:panic`); overrides the
//!   `DETDIV_FAULT` environment variable. Injected panics are absorbed
//!   by supervised retry; cells that fail permanently are marked `!` in
//!   the report instead of killing the run;
//! * `--resume PATH` — journal every completed coverage row to `PATH`
//!   (checksummed, fsynced, torn-tail tolerant) and, when the journal
//!   already holds rows from an interrupted run against the same
//!   corpus, serve them instead of recomputing. The journal is removed
//!   on success. Rows are deterministic, so a resumed run's artifacts
//!   are byte-identical to an uninterrupted run's;
//! * `--serve ADDR` — arm the live-introspection scope (`detdiv-scope`)
//!   on `ADDR` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
//!   port) for the duration of the run: a metrics exposition server
//!   (`/metrics` in Prometheus text format, `/healthz`,
//!   `/snapshot.json`, `/profilez`) plus a background counter sampler
//!   whose ring buffers feed rate gauges and the snapshot's
//!   `timeseries` section. Overrides the `DETDIV_SERVE` environment
//!   variable. The address is bound *before* any computation, so a
//!   taken port fails in milliseconds; the bound address is echoed on
//!   stderr unconditionally so scripts can scrape an ephemeral port.
//!   The scope never writes telemetry, so artifacts are byte-identical
//!   with and without it — CI enforces this with `cmp`;
//! * `--flight PATH` — arm the per-detection flight recorder
//!   (`detdiv-flight`) and write the wide-event audit log to `PATH`
//!   when the run finishes: one checksummed JSONL record per detection
//!   decision (cell verdicts with score/threshold/span/cache
//!   provenance, streaming emissions, supervised failures), sorted so
//!   repeated runs of the same configuration produce byte-identical
//!   dumps. Overrides the `DETDIV_FLIGHT` environment variable. A
//!   panic additionally dumps the crash blackbox — the last wide
//!   events before the failure — to `PATH.crash`. The recorder never
//!   writes telemetry or report state, so artifacts are byte-identical
//!   with and without it — CI enforces this with `cmp`.

use std::process::ExitCode;

use detdiv_obs as obs;
use detdiv_resil::{AtomicFile, FaultPlan};

use detdiv_eval::{
    abl1_maximal_response_semantics, abl2_locality_frame_count, abl3_nn_sensitivity,
    abl4_training_length, ana1_response_map, comb1_stide_markov_subset, comb2_stide_lb_union,
    comb3_suppression, coverage_map, div1_diversity_matrix, ext1_extended_families,
    fig2_incident_span, fig7_similarity, fn1_threshold_sweeps, masq1_lane_brodley_masquerade,
    nat1_census, render_suppression_table, DetectorKind, FullReport, SuppressionConfig,
};
use detdiv_synth::{Corpus, SynthesisConfig};

struct Args {
    experiment: String,
    training_len: usize,
    seed: Option<u64>,
    json: Option<String>,
    threads: Option<usize>,
    log: Option<obs::Level>,
    trace: Option<String>,
    no_cache: bool,
    stream: bool,
    fault: Option<String>,
    resume: Option<String>,
    serve: Option<String>,
    flight: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".to_owned(),
        training_len: 200_000,
        seed: None,
        json: None,
        threads: None,
        log: None,
        // `--trace PATH` below overrides the environment.
        trace: obs::trace::env_path(),
        no_cache: false,
        stream: false,
        fault: None,
        resume: None,
        // `--serve ADDR` below overrides the environment.
        serve: std::env::var("DETDIV_SERVE")
            .ok()
            .filter(|v| !v.trim().is_empty()),
        // `--flight PATH` below overrides the environment.
        flight: detdiv_flight::env_path(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--experiment" => {
                args.experiment = it.next().ok_or("--experiment needs a value")?;
            }
            "--training-len" => {
                args.training_len = it
                    .next()
                    .ok_or("--training-len needs a value")?
                    .parse()
                    .map_err(|e| format!("--training-len: {e}"))?;
            }
            "--paper" => args.training_len = 1_000_000,
            "--seed" => {
                args.seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?);
            }
            "--threads" => {
                let value: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if value == 0 {
                    return Err("--threads: must be at least 1".to_owned());
                }
                args.threads = Some(value);
            }
            "--log" => {
                let value = it.next().ok_or("--log needs a level")?;
                args.log = Some(
                    obs::Level::parse(&value)
                        .ok_or_else(|| format!("--log: unknown level {value}"))?,
                );
            }
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--no-cache" => args.no_cache = true,
            "--stream" => args.stream = true,
            "--fault" => {
                args.fault = Some(it.next().ok_or("--fault needs a spec")?);
            }
            "--resume" => {
                args.resume = Some(it.next().ok_or("--resume needs a journal path")?);
            }
            "--serve" => {
                args.serve = Some(it.next().ok_or("--serve needs a listen address")?);
            }
            "--flight" => {
                args.flight = Some(it.next().ok_or("--flight needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: regenerate [--experiment ID] [--training-len N] [--paper] [--seed N] [--json PATH] [--threads N] [--log LEVEL] [--trace PATH] [--no-cache] [--stream] [--fault SPEC] [--resume PATH] [--serve ADDR] [--flight PATH]\n\
                     experiments: fig2 fig3 fig4 fig5 fig6 fig7 comb1 comb2 comb3 abl1 abl2 abl3 abl4 nat1 ext1 div1 masq1 fn1 ana1 all\n\
                     threads:     parallel fan-out width (default: DETDIV_THREADS, then available parallelism; results are thread-count independent)\n\
                     log levels:  off error warn info debug trace (default info; DETDIV_LOG also honoured)\n\
                     trace:       write a Chrome trace-event JSON file (DETDIV_TRACE also honoured; independent of --log off)\n\
                     no-cache:    train every model afresh, bypassing the single-flight model cache (DETDIV_CACHE=off also honoured; results identical)\n\
                     stream:      score coverage cells through the push-based streaming adapter (DETDIV_STREAM=on also honoured; artifacts byte-identical)\n\
                     fault:       arm deterministic fault injection, seed:rate:kinds[:stall_ms] e.g. 42:1%:panic (DETDIV_FAULT also honoured)\n\
                     resume:      journal completed coverage rows to PATH and resume an interrupted run from it (removed on success)\n\
                     serve:       serve live metrics on ADDR while the run executes: /metrics /healthz /snapshot.json /profilez /streams /flightz (DETDIV_SERVE also honoured; artifacts stay byte-identical)\n\
                     flight:      record one wide event per detection decision and write the sorted, checksummed audit log to PATH; panics dump the crash blackbox to PATH.crash (DETDIV_FLIGHT also honoured; artifacts stay byte-identical)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Verifies that an output path (`--json`, `--trace`) can actually be
/// written, *before* any synthesis or evaluation starts. Delegates to
/// [`AtomicFile::dry_run`], which probes the *deterministic temporary
/// sibling* the eventual atomic write will use — not a racy
/// process-id-named probe file — so the preflight exercises the exact
/// path the artifact writer will take. A failure here costs
/// milliseconds instead of surfacing after the full run.
fn preflight_write_target(path: &str) -> Result<(), String> {
    AtomicFile::dry_run(path)
}

fn build_corpus(args: &Args) -> Result<Corpus, Box<dyn std::error::Error>> {
    let mut builder = SynthesisConfig::builder().training_len(args.training_len);
    if let Some(seed) = args.seed {
        builder = builder.seed(seed);
    }
    let config = builder.build()?;
    obs::info!(
        "synthesizing corpus",
        training_elements = config.training_len(),
        anomaly_sizes = format!("{:?}", config.anomaly_sizes()),
        windows = format!("{:?}", config.windows()),
    );
    Ok(Corpus::synthesize(&config)?)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let coverage_kind = |kind: DetectorKind| -> Result<(), Box<dyn std::error::Error>> {
        let corpus = build_corpus(args)?;
        let map = coverage_map(&corpus, &kind)?;
        println!("{}", map.render());
        Ok(())
    };

    match args.experiment.as_str() {
        "fig2" => {
            let r = fig2_incident_span(5, 8)?;
            println!("{}", r.rendering);
            println!(
                "boundary sequences per side: {}; incident span length: {}",
                r.boundary_sequences_per_side, r.span_len
            );
        }
        "fig3" => coverage_kind(DetectorKind::LaneBrodley)?,
        "fig4" => coverage_kind(DetectorKind::Markov)?,
        "fig5" => coverage_kind(DetectorKind::Stide)?,
        "fig6" => coverage_kind(DetectorKind::neural_default())?,
        "fig7" => {
            let r = fig7_similarity();
            println!(
                "identical size-5 sequences: Sim = {} (max {})\n\
                 final-element mismatch:     Sim = {} -> response {:.3}",
                r.sim_identical, r.sim_max, r.sim_final_mismatch, r.response_final_mismatch
            );
        }
        "comb1" => {
            let corpus = build_corpus(args)?;
            let r = comb1_stide_markov_subset(&corpus)?;
            println!("{}", r.stide_map.render());
            println!("{}", r.markov_map.render());
            println!(
                "subset holds: {}; stide={} markov={} jaccard={:.3}",
                r.stide_subset_of_markov, r.stide_detections, r.markov_detections, r.jaccard
            );
        }
        "comb2" => {
            let corpus = build_corpus(args)?;
            let r = comb2_stide_lb_union(&corpus)?;
            println!("{}", r.union_map.render());
            println!(
                "L&B detections: {}; gain over Stide: {}; union equals Stide: {}",
                r.lb_detections, r.lb_gain_over_stide, r.union_equals_stide
            );
        }
        "comb3" => {
            let corpus = build_corpus(args)?;
            let rows = comb3_suppression(&corpus, &SuppressionConfig::default())?;
            println!("{}", render_suppression_table(&rows));
        }
        "abl1" => {
            let corpus = build_corpus(args)?;
            let r = abl1_maximal_response_semantics(&corpus)?;
            println!("{}", r.tolerant_map.render());
            println!("{}", r.strict_map.render());
            println!(
                "tolerant detections: {}; strict: {}; strict equals Stide: {}",
                r.detections.0, r.detections.1, r.strict_equals_stide
            );
        }
        "abl2" => {
            let corpus = build_corpus(args)?;
            let rows = abl2_locality_frame_count(&corpus, 6, 4, 8192, 3)?;
            println!(
                "{:>6} {:>10} {:>5} {:>13}",
                "frame", "threshold", "hit", "false alarms"
            );
            for r in rows {
                println!(
                    "{:>6} {:>10.2} {:>5} {:>13}",
                    r.frame,
                    r.threshold,
                    if r.hit { "yes" } else { "no" },
                    r.false_alarms
                );
            }
        }
        "abl3" => {
            let corpus = build_corpus(args)?;
            let rows = abl3_nn_sensitivity(&corpus, 4, 4)?;
            println!(
                "{:>7} {:>6} {:>9} {:>7} {:>13} {:>8}",
                "hidden", "lr", "momentum", "epochs", "max response", "capable"
            );
            for r in rows {
                println!(
                    "{:>7} {:>6.3} {:>9.2} {:>7} {:>13.4} {:>8}",
                    r.hidden,
                    r.learning_rate,
                    r.momentum,
                    r.epochs,
                    r.max_response,
                    if r.capable { "yes" } else { "no" }
                );
            }
        }
        "abl4" => {
            let mut builder = SynthesisConfig::builder().training_len(args.training_len);
            if let Some(seed) = args.seed {
                builder = builder.seed(seed);
            }
            let base = builder.build()?;
            let lengths = [50_000usize, 100_000, 200_000];
            let rows = abl4_training_length(&base, &lengths)?;
            println!(
                "{:>12} {:>12} {:>12} {:>16}",
                "training len", "stide cells", "markov cells", "stide shape holds"
            );
            for r in rows {
                println!(
                    "{:>12} {:>12} {:>12} {:>16}",
                    r.training_len,
                    r.stide_detections,
                    r.markov_detections,
                    if r.stide_shape_holds { "yes" } else { "no" }
                );
            }
        }
        "ext1" => {
            let corpus = build_corpus(args)?;
            let r = ext1_extended_families(&corpus)?;
            println!("{}", r.tstide_map.render());
            println!("{}", r.hmm_map.render());
            println!(
                "t-stide contains Stide: {}; t-stide equals Markov: {}; HMM equals Markov: {}",
                r.tstide_contains_stide, r.tstide_equals_markov, r.hmm_equals_markov
            );
        }
        "div1" => {
            let corpus = build_corpus(args)?;
            let r = div1_diversity_matrix(&corpus)?;
            println!("{}", r.matrix.render());
            println!("no-coverage-gain pairs: {:?}", r.no_gain_pairs);
            println!("subset pairs: {:?}", r.subset_pairs);
            println!("complementary pairs: {:?}", r.complementary_pairs);
        }
        "fn1" => {
            let corpus = build_corpus(args)?;
            for sweep in fn1_threshold_sweeps(&corpus, 5, 6)? {
                println!(
                    "{:<16} in-span max {:.4}; hit survives every threshold <= max: {}",
                    sweep.detector, sweep.in_span_max, sweep.hit_never_lost_below_max
                );
            }
        }
        "ana1" => {
            let corpus = build_corpus(args)?;
            println!(
                "{}",
                ana1_response_map(&corpus, &DetectorKind::LaneBrodley)?.render()
            );
            println!(
                "{}",
                ana1_response_map(&corpus, &DetectorKind::Markov)?.render()
            );
        }
        "masq1" => {
            let r = masq1_lane_brodley_masquerade(5, 11)?;
            println!(
                "mean profile similarity at DW {}: self {:.3}, masquerader {:.3} (margin {:.3}); segment-separable: {}",
                r.window, r.self_similarity, r.masquerader_similarity, r.margin, r.separable
            );
        }
        "nat1" => {
            let r = nat1_census(100, 200, 8)?;
            println!("training events: {}", r.training_events);
            println!("{}", r.report);
        }
        "all" => {
            let corpus = build_corpus(args)?;
            let report = FullReport::generate_on(&corpus)?;
            println!("{}", report.render_text());
            obs::info!("run telemetry summary follows");
            obs::raw(obs::Level::Info, &report.telemetry.render_text());
            if let Some(path) = &args.json {
                // Crash-safe: either artifact is observed complete or
                // not at all; a kill mid-write can never leave a torn
                // paper_report.json at the final path.
                AtomicFile::write(path, serde_json::to_string_pretty(&report)?)?;
                obs::info!("wrote JSON report", path = path);
                let telemetry_path = std::path::Path::new(path)
                    .parent()
                    .map(|dir| dir.join("paper_telemetry.json"))
                    .unwrap_or_else(|| std::path::PathBuf::from("paper_telemetry.json"));
                AtomicFile::write(
                    &telemetry_path,
                    serde_json::to_string_pretty(&report.telemetry)?,
                )?;
                obs::info!("wrote telemetry", path = telemetry_path.display());
            }
        }
        other => return Err(format!("unknown experiment {other}").into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    // The runner defaults to info-level progress; an explicit --log or
    // DETDIV_LOG (including `off`, which also disables telemetry) wins.
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            // Unconditional: argument errors must be visible even when
            // DETDIV_LOG=off suppresses the structured logger.
            eprintln!("regenerate: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A mistyped environment knob must fail loudly, not silently fall
    // back to a default the operator did not ask for.
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("regenerate: environment error: {e}");
        return ExitCode::FAILURE;
    }
    match args.log {
        Some(level) => obs::set_max_level(level),
        None => {
            if std::env::var_os("DETDIV_LOG").is_none() {
                obs::set_max_level(obs::Level::Info);
            }
        }
    }
    if let Some(threads) = args.threads {
        detdiv_par::global().set_threads(Some(threads));
    }
    if args.no_cache {
        detdiv_cache::set_enabled(false);
    }
    // Streaming scoring: DETDIV_STREAM applies first, an explicit
    // --stream wins. The scores are bit-identical to batch, so this
    // only changes *how* cells are scored, never what they say.
    detdiv_eval::apply_stream_env();
    if args.stream {
        detdiv_eval::set_stream_scoring(true);
    }
    if detdiv_eval::stream_scoring() {
        obs::info!("streaming scoring enabled");
    }
    // Deterministic fault injection: an explicit --fault spec wins over
    // the DETDIV_FAULT environment variable; either arms the same
    // seeded plan. Malformed specs fail before any computation.
    let fault_armed = if let Some(spec) = &args.fault {
        match FaultPlan::parse(spec) {
            Ok(plan) => {
                detdiv_resil::arm(plan);
                true
            }
            Err(e) => {
                eprintln!("regenerate: --fault: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match detdiv_resil::arm_from_env() {
            Ok(armed) => armed,
            Err(e) => {
                eprintln!("regenerate: DETDIV_FAULT: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if fault_armed {
        obs::info!("fault injection armed");
        // Injected panics are expected and absorbed by supervision;
        // keep them from spraying backtraces over a chaos run's
        // stderr. Genuine panics still reach the default hook.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("detdiv-resil: injected"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    // Flight recorder: preflight the dump destination, then arm. Armed
    // *after* the chaos panic-hook filter above so the crash-dump hook
    // (installed by `arm`) runs first on a panic — the blackbox is
    // dumped before the filter decides whether to suppress the
    // backtrace.
    if let Some(path) = &args.flight {
        if let Err(e) = preflight_write_target(path) {
            eprintln!("regenerate: cannot write --flight output {path}: {e}");
            return ExitCode::FAILURE;
        }
        detdiv_flight::arm(path);
        obs::info!("flight recorder armed", path = path);
    }
    // Fail fast on unwritable --json / --trace destinations:
    // milliseconds now instead of an error after the full evaluation.
    if let Some(path) = &args.json {
        if let Err(e) = preflight_write_target(path) {
            eprintln!("regenerate: cannot write --json output {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace {
        if let Err(e) = preflight_write_target(path) {
            eprintln!("regenerate: cannot write --trace output {path}: {e}");
            return ExitCode::FAILURE;
        }
        obs::trace::arm();
    }
    // Live introspection: bind the exposition server and start the
    // sampler *before* any computation, so a taken port or a bad
    // DETDIV_SCOPE_* knob fails in milliseconds. The bound address is
    // echoed unconditionally (CI passes `--serve 127.0.0.1:0` and
    // parses the real port from this line).
    let scope = if let Some(addr) = &args.serve {
        let scope = detdiv_scope::ScopeConfig::from_env()
            .and_then(|config| detdiv_scope::Scope::start(addr, config));
        match scope {
            Ok(scope) => {
                eprintln!(
                    "regenerate: serving live metrics on http://{}/metrics",
                    scope.local_addr()
                );
                Some(scope)
            }
            Err(e) => {
                eprintln!("regenerate: cannot arm --serve {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    // Checkpoint/resume: arm the row journal before any computation so
    // every completed coverage row is durably recorded, and rows from a
    // previously killed run are served instead of recomputed.
    if let Some(path) = &args.resume {
        match detdiv_eval::checkpoint::arm(path) {
            Ok(0) => obs::info!("row checkpointing armed", journal = path),
            Ok(resumed) => {
                obs::info!("resuming", journal = path, rows = resumed);
                // Unconditional: visible under --log off so an operator
                // can tell a resumed run from a fresh one.
                eprintln!("regenerate: resuming {resumed} completed rows from {path}");
            }
            Err(e) => {
                eprintln!("regenerate: cannot arm --resume journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = run(&args);
    // Graceful scope teardown: the end-of-run snapshot was already
    // taken inside the report (with the sampler's timeseries attached);
    // now stop the server and sampler threads and write the optional
    // DETDIV_SCOPE_DUMP series file.
    if let Some(scope) = scope {
        if let Err(e) = scope.shutdown() {
            eprintln!("regenerate: scope shutdown: {e}");
        }
    }
    if args.resume.is_some() {
        if outcome.is_ok() {
            // The run completed: nothing remains to resume from.
            if let Err(e) = detdiv_eval::checkpoint::finish() {
                eprintln!("regenerate: could not remove resume journal: {e}");
            }
        } else {
            // Keep the journal for the next attempt.
            detdiv_eval::checkpoint::disarm();
        }
    }
    if let Some(path) = &args.flight {
        detdiv_flight::disarm();
        match detdiv_flight::export(path) {
            Ok(records) => {
                obs::info!("wrote flight audit log", path = path, records = records);
                // Unconditional: the flight gate runs under --log off
                // and parses this confirmation line.
                eprintln!("regenerate: wrote {records} flight records to {path}");
            }
            Err(e) => {
                eprintln!("regenerate: failed to write flight audit log {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.trace {
        obs::trace::disarm();
        match obs::trace::write_chrome_trace(path) {
            Ok(events) => {
                obs::info!("wrote trace", path = path, events = events);
                // Unconditional: the trace gate runs under --log off
                // and still wants a human-readable confirmation.
                eprintln!("regenerate: wrote {events} trace events to {path}");
            }
            Err(e) => {
                eprintln!("regenerate: failed to write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // eprintln in addition to the structured logger so the
            // failure is diagnosable even under --log off.
            eprintln!("regenerate: {e}");
            obs::error!("run failed", detail = e);
            ExitCode::FAILURE
        }
    }
}

//! Performance baseline for the experiment pipeline: runs a pinned
//! reduced sweep four times — trained-model cache disabled, cache
//! enabled, cache enabled with tracing armed, then cache enabled with
//! the flight recorder armed — plus a streaming throughput pass (the
//! full seven-family adapter bank consuming the training stream one
//! event at a time), and writes a machine-readable baseline
//! (`BENCH_pr8.json` by default; the `bench` label is inferred from
//! the filename) recording wall times, the cache speed-up and hit
//! statistics, the tracing and flight-recording overheads, streaming
//! events/sec, the self-profile's top phases by exclusive time, and
//! worker utilization.
//!
//! ```text
//! perfbaseline [--out PATH] [--training-len N] [--threads N] [--top N]
//! ```
//!
//! The sweep is the benchmark fixture's "small" shape (AS 2–4, DW 2–6,
//! seed 2005) at `--training-len` elements (default 60,000), run
//! through the full experiment report so every phase the paper
//! pipeline executes is represented. Telemetry is forced on (the
//! self-profile needs it); logging is quieted to warnings unless
//! `DETDIV_LOG` says otherwise.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use detdiv_eval::{DetectorKind, FullReport};
use detdiv_obs as obs;
use detdiv_stream::{hash_stream_id, ModelAdapter, SignalContext, StreamDetector, StreamEngine};
use detdiv_synth::{Corpus, SynthesisConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PhaseRow {
    path: String,
    count: u64,
    inclusive_ms: f64,
    exclusive_ms: f64,
}

#[derive(Debug, Serialize)]
struct CacheRow {
    hits: u64,
    misses: u64,
    inflight_waits: u64,
    /// hits / (hits + misses), percent, within one cold-start report.
    hit_rate_percent: f64,
    resident_entries: usize,
    resident_bytes: u64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    bench: String,
    training_len: usize,
    threads: usize,
    /// Full-report wall time with the trained-model cache disabled, ms
    /// (tracing disarmed; the pre-PR4 configuration).
    wall_ms_cache_off: f64,
    /// Full-report wall time with the cache enabled from cold, ms
    /// (tracing disarmed; the default configuration).
    wall_ms_trace_off: f64,
    /// Full-report wall time with the cache enabled from cold and the
    /// trace recorder armed, ms.
    wall_ms_trace_on: f64,
    /// Cache-off over cache-on improvement, percent of the cache-off
    /// wall time (negative = the cache cost time).
    cache_speedup_percent: f64,
    /// Single-flight cache statistics from the cold cached run.
    cache: CacheRow,
    /// Armed-over-disarmed overhead, percent (negative = noise).
    trace_overhead_percent: f64,
    /// Events the armed run recorded.
    trace_events: usize,
    /// Events dropped by the armed run's sink cap.
    trace_dropped: u64,
    /// Full-report wall time with the cache enabled from cold and the
    /// flight recorder armed, ms.
    wall_ms_flight_on: f64,
    /// Flight-armed over disarmed overhead, percent of
    /// `wall_ms_trace_off` (negative = noise).
    flight_overhead_percent: f64,
    /// Wide-event records the flight-armed run produced.
    flight_records: usize,
    /// Events pushed through the streaming pass (the training stream,
    /// one event at a time, into a seven-family adapter bank).
    stream_events: u64,
    /// Streaming throughput of that pass, events per second (each event
    /// is scored by all seven adapters).
    stream_events_per_sec: f64,
    /// Worker utilization from the disarmed run's self-profile.
    utilization_percent: Option<f64>,
    /// Top phases by exclusive time, from the disarmed run.
    phases: Vec<PhaseRow>,
}

struct Args {
    out: String,
    training_len: usize,
    threads: Option<usize>,
    top: usize,
}

/// The `bench` label recorded in the baseline, inferred from the
/// output filename (`BENCH_pr7.json` → `pr7`) so `perfhist` can order
/// the trajectory by PR without a separate flag.
fn bench_label(out: &str) -> String {
    std::path::Path::new(out)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| out.to_owned())
        .trim_start_matches("BENCH_")
        .to_owned()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_pr8.json".to_owned(),
        training_len: 60_000,
        threads: None,
        top: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--training-len" => {
                args.training_len = it
                    .next()
                    .ok_or("--training-len needs a value")?
                    .parse()
                    .map_err(|e| format!("--training-len: {e}"))?;
            }
            "--threads" => {
                let value: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if value == 0 {
                    return Err("--threads: must be at least 1".to_owned());
                }
                args.threads = Some(value);
            }
            "--top" => {
                args.top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: perfbaseline [--out PATH] [--training-len N] [--threads N] [--top N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn fixture(training_len: usize) -> Result<Corpus, Box<dyn std::error::Error>> {
    // The benchmark fixture's "small" shape (see `detdiv_bench::
    // small_corpus`), with the training length adjustable so CI can run
    // a faster sweep than the committed baseline.
    let config = SynthesisConfig::builder()
        .training_len(training_len)
        .anomaly_sizes(2..=4)
        .windows(2..=6)
        .background_len(1024)
        .plant_repeats(4)
        .seed(2005)
        .build()?;
    Ok(Corpus::synthesize(&config)?)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(threads) = args.threads {
        detdiv_par::global().set_threads(Some(threads));
    }
    let threads = detdiv_par::global().threads();
    eprintln!(
        "perfbaseline: training_len={} threads={threads} out={}",
        args.training_len, args.out
    );

    let corpus = fixture(args.training_len)?;
    let cache = detdiv_cache::global();

    // Pass A: trained-model cache disabled, tracing disarmed — the
    // pre-PR4 configuration, and the denominator of the cache speed-up.
    obs::trace::disarm();
    obs::trace::reset();
    detdiv_cache::set_enabled(false);
    cache.clear();
    cache.reset_stats();
    let started = Instant::now();
    let _report_uncached = FullReport::generate_on(&corpus)?;
    let wall_cache_off = started.elapsed();

    // Pass B: cache enabled from cold, tracing disarmed. This is the
    // default configuration; its profile is the baseline's phase table
    // and its cache statistics are the committed hit rate. The cache is
    // cleared first so the measurement is a cold start, not a replay of
    // pass A's residue.
    detdiv_cache::set_enabled(true);
    cache.clear();
    cache.reset_stats();
    let started = Instant::now();
    let report_off = FullReport::generate_on(&corpus)?;
    let wall_off = started.elapsed();
    let cache_stats = cache.stats();

    // Pass C: cache enabled from cold, tracing armed; same corpus,
    // same work, so armed-minus-disarmed isolates the recorder.
    cache.clear();
    cache.reset_stats();
    obs::trace::reset();
    obs::trace::arm();
    let started = Instant::now();
    let _report_on = FullReport::generate_on(&corpus)?;
    let wall_on = started.elapsed();
    obs::trace::disarm();
    let trace_events = obs::trace::drain().len();
    let trace_dropped = obs::trace::dropped();
    obs::trace::reset();

    // Pass D: streaming throughput. The full seven-family adapter bank
    // consumes the training stream one event at a time through the
    // engine's push path — the deployment-shaped counterpart of the
    // batch sweeps above. Models come from the cache warmed by pass C,
    // so only the push loop is timed.
    let stream_window = 6;
    let models: Vec<_> = [
        DetectorKind::Stide,
        DetectorKind::TStide,
        DetectorKind::Markov,
        DetectorKind::hmm_default(),
        DetectorKind::neural_default(),
        DetectorKind::LaneBrodley,
        DetectorKind::ripper_default(),
    ]
    .iter()
    .map(|kind| detdiv_eval::trained_model(corpus.training(), kind, stream_window))
    .collect();
    let mut engine = StreamEngine::new(|| {
        models
            .iter()
            .map(|m| Box::new(ModelAdapter::new(Arc::clone(m))) as Box<dyn StreamDetector>)
            .collect()
    });
    let stream_id = hash_stream_id("perfbaseline");
    let mut verdicts = Vec::with_capacity(models.len());
    let started = Instant::now();
    for (i, &symbol) in corpus.training().iter().enumerate() {
        verdicts.clear();
        engine.push(
            &SignalContext::from_symbol(i as u64, stream_id, symbol),
            &mut verdicts,
        );
    }
    let stream_elapsed = started.elapsed();
    let stream_events = engine.events();
    let stream_events_per_sec = if stream_elapsed.as_secs_f64() > 0.0 {
        stream_events as f64 / stream_elapsed.as_secs_f64()
    } else {
        0.0
    };
    if engine.degraded_slots() > 0 {
        return Err(format!(
            "streaming pass degraded {} adapter slot(s)",
            engine.degraded_slots()
        )
        .into());
    }

    // Pass E: cache enabled from cold, flight recorder armed; the same
    // work as pass B, so armed-minus-disarmed isolates the audit log's
    // record/flush cost. The records are drained and counted, not
    // exported — the dump write happens after the timed region in real
    // runs too.
    cache.clear();
    cache.reset_stats();
    detdiv_flight::reset();
    let flight_sink =
        std::env::temp_dir().join(format!("detdiv-perfbaseline-{}.flight", std::process::id()));
    detdiv_flight::arm(&flight_sink.to_string_lossy());
    let started = Instant::now();
    let _report_flight = FullReport::generate_on(&corpus)?;
    let wall_flight = started.elapsed();
    detdiv_flight::disarm();
    let flight_records = detdiv_flight::drain().len();
    detdiv_flight::reset();

    let profile = &report_off.telemetry.profile;
    let wall_cache_off_ms = wall_cache_off.as_secs_f64() * 1e3;
    let wall_off_ms = wall_off.as_secs_f64() * 1e3;
    let wall_on_ms = wall_on.as_secs_f64() * 1e3;
    let lookups = cache_stats.hits + cache_stats.misses;
    let baseline = Baseline {
        bench: bench_label(&args.out),
        training_len: args.training_len,
        threads,
        wall_ms_cache_off: wall_cache_off_ms,
        wall_ms_trace_off: wall_off_ms,
        wall_ms_trace_on: wall_on_ms,
        cache_speedup_percent: if wall_cache_off_ms > 0.0 {
            (wall_cache_off_ms - wall_off_ms) / wall_cache_off_ms * 100.0
        } else {
            0.0
        },
        cache: CacheRow {
            hits: cache_stats.hits,
            misses: cache_stats.misses,
            inflight_waits: cache_stats.inflight_waits,
            hit_rate_percent: if lookups > 0 {
                cache_stats.hits as f64 / lookups as f64 * 100.0
            } else {
                0.0
            },
            resident_entries: cache_stats.entries,
            resident_bytes: cache_stats.resident_bytes,
        },
        trace_overhead_percent: if wall_off_ms > 0.0 {
            (wall_on_ms - wall_off_ms) / wall_off_ms * 100.0
        } else {
            0.0
        },
        trace_events,
        trace_dropped,
        wall_ms_flight_on: wall_flight.as_secs_f64() * 1e3,
        flight_overhead_percent: if wall_off_ms > 0.0 {
            (wall_flight.as_secs_f64() * 1e3 - wall_off_ms) / wall_off_ms * 100.0
        } else {
            0.0
        },
        flight_records,
        stream_events,
        stream_events_per_sec,
        utilization_percent: profile.utilization_percent,
        phases: profile
            .top(args.top)
            .iter()
            .map(|row| PhaseRow {
                path: row.path.clone(),
                count: row.count,
                inclusive_ms: row.inclusive_ns as f64 / 1e6,
                exclusive_ms: row.exclusive_ns as f64 / 1e6,
            })
            .collect(),
    };

    // Crash-safe: the baseline appears complete or not at all, so the
    // perf gate can never compare against a torn file.
    detdiv_resil::AtomicFile::write(&args.out, serde_json::to_string_pretty(&baseline)?)?;
    eprintln!(
        "perfbaseline: wall cache-off {:.0} ms, cached {:.0} ms ({:+.2}%, hit rate {:.1}%), \
         trace-on {:.0} ms ({:+.2}%), {} events; flight-on {:.0} ms ({:+.2}%), {} records; \
         streaming {:.0} events/s over {} events; wrote {}",
        baseline.wall_ms_cache_off,
        baseline.wall_ms_trace_off,
        baseline.cache_speedup_percent,
        baseline.cache.hit_rate_percent,
        baseline.wall_ms_trace_on,
        baseline.trace_overhead_percent,
        baseline.trace_events,
        baseline.wall_ms_flight_on,
        baseline.flight_overhead_percent,
        baseline.flight_records,
        baseline.stream_events_per_sec,
        baseline.stream_events,
        args.out
    );
    println!("{}", report_off.telemetry.profile.render_text(args.top));
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfbaseline: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("perfbaseline: environment error: {e}");
        return ExitCode::FAILURE;
    }
    // The self-profile requires telemetry; quiet the logger unless the
    // environment asks for more.
    if std::env::var_os("DETDIV_LOG").is_none() {
        obs::set_max_level(obs::Level::Warn);
    }
    if !obs::telemetry_enabled() {
        eprintln!(
            "perfbaseline: telemetry is disabled (DETDIV_LOG=off) — the self-profile needs it; \
             unset DETDIV_LOG or pick a level"
        );
        return ExitCode::FAILURE;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perfbaseline: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Batch ↔ stream differential gate over the paper grid.
//!
//! Trains every detector family of the experiment suite at every
//! detector window of the paper grid (DW 2–15), then bit-compares the
//! one-shot batch scores against the event-by-event streamed scores on
//! every anomaly-size test stream (AS 2–9). Any diverging bit fails
//! the run with the offending (family, DW, AS, index) cell named, so
//! CI can gate on "streaming is the batch pipeline, reordered in
//! time" rather than on a tolerance.
//!
//! ```text
//! streamcheck [--training-len N] [--threads N]
//! ```
//!
//! The corpus is the benchmark fixture's paper-grid shape
//! (`detdiv_bench::grid_corpus`, seed 2005) at `--training-len`
//! elements (default 20,000 — the smallest round length the grid
//! shape's planted material fits in; the gate is about bit-identity,
//! not detection quality, so a reduced training length checks the
//! same arithmetic in a fraction of the time). The iterative substrates
//! (HMM, neural network) run with the conformance suite's turned-down
//! hyperparameters for the same reason. The summary line reports
//! streaming throughput in events per second across all cells.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use detdiv_detectors::{HmmConfig, NeuralConfig};
use detdiv_eval::DetectorKind;
use detdiv_obs as obs;
use detdiv_stream::stream_scores;

struct Args {
    training_len: usize,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        training_len: 20_000,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--training-len" => {
                args.training_len = it
                    .next()
                    .ok_or("--training-len needs a value")?
                    .parse()
                    .map_err(|e| format!("--training-len: {e}"))?;
            }
            "--threads" => {
                let value: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if value == 0 {
                    return Err("--threads: must be at least 1".to_owned());
                }
                args.threads = Some(value);
            }
            "--help" | "-h" => {
                println!("usage: streamcheck [--training-len N] [--threads N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The seven families of the experiment suite. The iterative substrates
/// use the conformance suite's turned-down hyperparameters: the gate
/// checks streamed-equals-batch arithmetic, which is independent of how
/// long the substrate trained.
fn families() -> Vec<DetectorKind> {
    vec![
        DetectorKind::Stide,
        DetectorKind::TStide,
        DetectorKind::Markov,
        DetectorKind::Hmm {
            config: HmmConfig {
                states: Some(4),
                max_iters: 4,
                max_training_events: 1_000,
                ..HmmConfig::default()
            },
        },
        DetectorKind::NeuralNetwork {
            config: NeuralConfig {
                hidden: 4,
                epochs: 4,
                min_count: 2,
                ..NeuralConfig::default()
            },
        },
        DetectorKind::LaneBrodley,
        DetectorKind::ripper_default(),
    ]
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(threads) = args.threads {
        detdiv_par::global().set_threads(Some(threads));
    }
    eprintln!(
        "streamcheck: paper grid (DW 2-15 x AS 2-9), training_len={}",
        args.training_len
    );

    let corpus = detdiv_bench::grid_corpus(args.training_len);
    let config = corpus.config();
    let kinds = families();

    let mut cells = 0usize;
    let mut events = 0u64;
    let mut streaming_wall = Duration::ZERO;
    let started = Instant::now();
    for window in config.windows() {
        for kind in &kinds {
            let model = detdiv_eval::trained_model(corpus.training(), kind, window);
            for anomaly_size in config.anomaly_sizes() {
                let case = corpus.case(anomaly_size, window)?;
                let test = detdiv_core::LabeledCase::test_stream(&case);
                let batch = model.scores(test);
                let fed = Instant::now();
                let streamed = stream_scores(&model, test);
                streaming_wall += fed.elapsed();
                events += test.len() as u64;
                if batch.len() != streamed.len() {
                    return Err(format!(
                        "MISMATCH {} DW={window} AS={anomaly_size}: \
                         batch emitted {} scores, stream emitted {}",
                        kind.name(),
                        batch.len(),
                        streamed.len()
                    )
                    .into());
                }
                if let Some(i) =
                    (0..batch.len()).find(|&i| batch[i].to_bits() != streamed[i].to_bits())
                {
                    return Err(format!(
                        "MISMATCH {} DW={window} AS={anomaly_size} index={i}: \
                         batch {} vs streamed {}",
                        kind.name(),
                        batch[i],
                        streamed[i]
                    )
                    .into());
                }
                cells += 1;
            }
        }
        eprintln!("streamcheck: DW={window} clean ({cells} cells so far)");
    }

    let events_per_sec = if streaming_wall.as_secs_f64() > 0.0 {
        events as f64 / streaming_wall.as_secs_f64()
    } else {
        0.0
    };
    eprintln!(
        "streamcheck: OK — {cells} cells bit-identical ({} families x {} windows x {} anomaly sizes), \
         {events} events streamed at {events_per_sec:.0} events/s, total {:.1} s",
        kinds.len(),
        config.windows().count(),
        config.anomaly_sizes().count(),
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("streamcheck: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("streamcheck: environment error: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("DETDIV_LOG").is_none() {
        obs::set_max_level(obs::Level::Warn);
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("streamcheck: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Load generator for the sharded ingest service: drives millions of
//! distinct synthetic keyed streams through one [`IngestService`] in a
//! single process and writes a machine-readable baseline
//! (`BENCH_pr9.json`-shaped) recording sustained events/sec and the
//! enqueue→verdict latency distribution (p50/p99).
//!
//! ```text
//! loadgen [--streams N] [--events-per-stream N] [--shards N]
//!         [--queue-cap N] [--threads N] [--full-tiering]
//!         [--fault SPEC] [--snapshot PATH] [--resume PATH] [--out PATH]
//! ```
//!
//! Events are synthesized deterministically (a splitmix64 mix of the
//! stream index seeds ids, symbols, and values), so two runs with the
//! same knobs ingest the identical event set. Every verdict folds into
//! a per-shard FNV-1a digest — per-shard drain order is deterministic
//! at every worker count, so the combined digest printed on stdout is
//! the cross-width determinism check CI diffs (`--fault` runs are
//! exempt: chaos changes which slots die, and with it the digest).
//!
//! Tiering is gated by default — the deployment shape: a cheap EWMA
//! gate fronts every stream and roughly one stream in 257 carries a
//! planted spike that escalates it to the trained tier-2 bank. Only
//! escalated streams ever instantiate model state, which is what lets
//! one process hold millions of streams. `--full-tiering` instantiates
//! the full bank per stream instead (small runs only).
//!
//! `--snapshot` writes a crash-safe shard-state snapshot after the
//! run; `--resume` recovers one before ingesting (a discarded snapshot
//! is reported, never fatal) — together they exercise the recovery
//! path under load: run A snapshots, run B resumes and continues.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use detdiv_core::SequenceAnomalyDetector;
use detdiv_detectors::Stide;
use detdiv_sequence::{symbols, Symbol};
use detdiv_serve::{
    IngestService, RecoverOutcome, ServeConfig, Tier1Config, VerdictEvent, VerdictSink,
};
use detdiv_stream::{ModelAdapter, SignalContext, StreamDetector};
use serde::Serialize;

/// Sample one enqueue→verdict latency out of this many verdicts: keeps
/// the sample vector small at millions of events while staying dense
/// enough for stable percentiles. Prime, so the sampling never locks
/// onto a per-stream emission period.
const LATENCY_SAMPLE_EVERY: u64 = 997;

/// One spike stream per this many streams escalates to tier-2.
const SPIKE_PERIOD: u64 = 257;

#[derive(Debug, Serialize)]
struct Baseline {
    bench: String,
    streams: u64,
    events_per_stream: u64,
    shards: usize,
    queue_capacity: usize,
    threads: usize,
    /// Total events processed (every synthesized event, exactly once).
    events: u64,
    /// Verdicts emitted across both tiers.
    emitted: u64,
    /// Streams escalated from the tier-1 gate to the tier-2 bank.
    escalated: u64,
    /// Backpressure rejections absorbed by drain-and-retry.
    rejections: u64,
    /// Detector slots degraded during the run (non-zero under --fault).
    degraded: u64,
    /// Ingest wall time: first enqueue to final drain, ms.
    wall_ms: f64,
    /// Sustained throughput over the ingest wall time, events/sec.
    serve_events_per_sec: f64,
    /// Median enqueue→verdict latency, microseconds.
    serve_p50_us: f64,
    /// 99th-percentile enqueue→verdict latency, microseconds.
    serve_p99_us: f64,
    /// Latencies the percentiles were computed from.
    latency_samples: usize,
    /// Combined per-shard verdict digest (the determinism check).
    digest: String,
}

struct Args {
    streams: u64,
    events_per_stream: u64,
    shards: usize,
    queue_cap: usize,
    threads: Option<usize>,
    full_tiering: bool,
    fault: Option<String>,
    snapshot: Option<String>,
    resume: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        streams: 1_000_000,
        events_per_stream: 6,
        shards: 64,
        queue_cap: 4096,
        threads: None,
        full_tiering: false,
        fault: None,
        snapshot: None,
        resume: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--streams" => {
                args.streams = value("--streams")?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?;
            }
            "--events-per-stream" => {
                args.events_per_stream = value("--events-per-stream")?
                    .parse()
                    .map_err(|e| format!("--events-per-stream: {e}"))?;
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads: must be at least 1".to_owned());
                }
                args.threads = Some(n);
            }
            "--full-tiering" => args.full_tiering = true,
            "--fault" => args.fault = Some(value("--fault")?),
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--streams N] [--events-per-stream N] [--shards N]\n\
                     \x20       [--queue-cap N] [--threads N] [--full-tiering]\n\
                     \x20       [--fault SPEC] [--snapshot PATH] [--resume PATH] [--out PATH]\n\
                     Drives N synthetic keyed streams through a sharded ingest service and\n\
                     prints a deterministic verdict digest; --out writes the BENCH baseline."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        if args.streams == 0 || args.events_per_stream == 0 || args.shards == 0 {
            return Err("streams, events-per-stream, and shards must be positive".to_owned());
        }
    }
    Ok(args)
}

/// splitmix64: the per-stream deterministic seed mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The synthetic event for stream index `i` at position `seq`.
///
/// Each stream holds a per-stream-constant quiet value (symbols still
/// vary per event for tier-2), so the gate's deviation is exactly zero
/// and quiet streams never escalate. Every [`SPIKE_PERIOD`]th stream
/// carries one planted spike (at the third event, so the gate is past
/// warmup and tier-2 still sees the tail): against zero variance any
/// deviation is an infinite z-score, so escalation is deterministic.
fn event(i: u64, seq: u64) -> SignalContext {
    let id = mix(i.wrapping_mul(0x1000_0000_01b3) ^ 0x5ee5_0bad_c0de);
    let bits = mix(id ^ seq);
    let symbol = Symbol::new((bits % 4) as u32 + 1);
    let spike = i.is_multiple_of(SPIKE_PERIOD) && seq == 2;
    let value = if spike {
        1000.0
    } else {
        1.0 + (id % 8) as f64 * 0.125
    };
    SignalContext::new(seq, id, symbol, value)
}

/// Per-shard FNV-1a verdict digests plus sampled latencies. Per-shard
/// folding is what makes the combined digest width-independent: one
/// worker drains a shard at a time, so each shard's verdict order is
/// deterministic even when shards interleave freely.
struct LoadSink {
    digests: Vec<Mutex<u64>>,
    latencies: Mutex<Vec<u64>>,
    seen: Mutex<u64>,
}

impl LoadSink {
    fn new(shards: usize) -> LoadSink {
        LoadSink {
            digests: (0..shards)
                .map(|_| Mutex::new(0xcbf2_9ce4_8422_2325))
                .collect(),
            latencies: Mutex::new(Vec::new()),
            seen: Mutex::new(0),
        }
    }

    /// Folds the per-shard digests, in shard order, into one value.
    fn combined(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for d in &self.digests {
            for b in d.lock().unwrap().to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

impl VerdictSink for LoadSink {
    fn on_verdict(&self, event: &VerdictEvent) {
        let mut digest = self.digests[event.shard].lock().unwrap();
        for word in [
            event.stream_hash,
            event.seq,
            event.slot as u64,
            event.result.score.to_bits(),
        ] {
            for b in word.to_le_bytes() {
                *digest = (*digest ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        }
        drop(digest);
        let mut seen = self.seen.lock().unwrap();
        *seen += 1;
        let sample = seen.is_multiple_of(LATENCY_SAMPLE_EVERY);
        drop(seen);
        if sample {
            let micros = event.latency.as_nanos() as u64 / 1000;
            self.latencies.lock().unwrap().push(micros);
        }
    }
}

/// Exact percentile over the sorted samples (nearest-rank).
fn percentile(sorted: &[u64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

fn bench_label(out: &str) -> String {
    std::path::Path::new(out)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| out.to_owned())
        .trim_start_matches("BENCH_")
        .to_owned()
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(threads) = args.threads {
        detdiv_par::global().set_threads(Some(threads));
    }
    let threads = detdiv_par::global().threads();
    if let Some(spec) = &args.fault {
        detdiv_resil::arm(detdiv_resil::FaultPlan::parse(spec)?);
    }
    eprintln!(
        "loadgen: streams={} events/stream={} shards={} queue-cap={} threads={threads} \
         tiering={}{}",
        args.streams,
        args.events_per_stream,
        args.shards,
        args.queue_cap,
        if args.full_tiering { "full" } else { "gate" },
        if args.fault.is_some() {
            " (chaos armed)"
        } else {
            ""
        },
    );

    // The tier-2 bank: one trained sliding-window model per stream.
    // Training happens once, outside the timed region; escalated
    // streams share the model through the Arc and keep only their own
    // window state.
    let mut stide = Stide::new(3);
    let mut train = Vec::new();
    for _ in 0..64 {
        train.extend(symbols(&[1, 2, 3, 4, 2, 3, 1, 4]));
    }
    stide.train(&train);
    let model: Arc<dyn detdiv_core::TrainedModel> = Arc::new(stide);

    let config = ServeConfig::new(args.shards, args.queue_cap);
    let config = if args.full_tiering {
        config
    } else {
        // Warmup 2 so short per-stream feeds still clear the gate, and
        // the planted spike at seq 2 is the first escalatable event.
        config.gated(Tier1Config {
            alpha: 0.3,
            warmup: 2,
            escalate_score: 0.5,
        })
    };
    let service = IngestService::new(config, move || {
        vec![Box::new(ModelAdapter::new(Arc::clone(&model))) as Box<dyn StreamDetector>]
    });
    service.register_introspection();

    if let Some(path) = &args.resume {
        match service.recover(path) {
            RecoverOutcome::Recovered { streams, skipped } => {
                eprintln!("loadgen: resumed {streams} stream(s) from {path} ({skipped} skipped)");
            }
            RecoverOutcome::Discarded { reason } => {
                eprintln!("loadgen: snapshot {path} discarded ({reason}); cold start");
            }
        }
    }

    let sink = LoadSink::new(args.shards);
    let mut processed = 0u64;
    let mut emitted = 0u64;
    let mut escalated = 0u64;
    let mut degraded = 0u64;
    let mut rejections = 0u64;
    let started = Instant::now();
    for seq in 0..args.events_per_stream {
        for i in 0..args.streams {
            let ctx = event(i, seq);
            while let Err(_reject) = service.enqueue(ctx) {
                // Backpressure: the queue is full, so drain the service
                // and retry — the producer absorbs the pushback instead
                // of the service buffering without bound.
                rejections += 1;
                let summary = service.drain(&sink);
                processed += summary.processed;
                emitted += summary.emitted;
                escalated += summary.escalated;
                degraded += summary.degraded;
            }
        }
    }
    // Final drains: under --fault a shard batch may defer, so spin
    // until every queue is empty (the fault plan's hit index advances,
    // so progress is guaranteed).
    let mut spins = 0u32;
    while service.pending() > 0 {
        let summary = service.drain(&sink);
        processed += summary.processed;
        emitted += summary.emitted;
        escalated += summary.escalated;
        degraded += summary.degraded;
        spins += 1;
        if spins > 4096 {
            return Err("drain made no progress".into());
        }
    }
    let wall = started.elapsed();
    if args.fault.is_some() {
        detdiv_resil::disarm();
    }

    let expected = args.streams * args.events_per_stream;
    if processed != expected {
        return Err(format!("processed {processed} of {expected} events").into());
    }

    let mut latencies = std::mem::take(&mut *sink.latencies.lock().unwrap());
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events_per_sec = if wall.as_secs_f64() > 0.0 {
        processed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    if let Some(path) = &args.snapshot {
        let stats = service.snapshot(path)?;
        eprintln!(
            "loadgen: snapshot {} stream(s), {} bytes -> {path}",
            stats.streams, stats.bytes
        );
    }

    eprintln!(
        "loadgen: {processed} events over {} stream(s) in {wall_ms:.0} ms \
         ({events_per_sec:.0} events/s), {emitted} verdicts, {escalated} escalated, \
         {degraded} degraded, {rejections} backpressure rejections, \
         p50 {p50:.0} us, p99 {p99:.0} us ({} samples)",
        service.stream_count(),
        latencies.len()
    );
    // stdout carries only the deterministic facts CI diffs across
    // worker counts; timing stays on stderr.
    println!(
        "loadgen: streams={} events={processed} digest={:016x}",
        args.streams,
        sink.combined()
    );

    if let Some(out) = &args.out {
        let baseline = Baseline {
            bench: bench_label(out),
            streams: args.streams,
            events_per_stream: args.events_per_stream,
            shards: args.shards,
            queue_capacity: args.queue_cap,
            threads,
            events: processed,
            emitted,
            escalated,
            rejections,
            degraded,
            wall_ms,
            serve_events_per_sec: events_per_sec,
            serve_p50_us: p50,
            serve_p99_us: p99,
            latency_samples: latencies.len(),
            digest: format!("{:016x}", sink.combined()),
        };
        // Crash-safe: the baseline appears complete or not at all.
        detdiv_resil::AtomicFile::write(out, serde_json::to_string_pretty(&baseline)?)?;
        eprintln!("loadgen: wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("loadgen: environment error: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("DETDIV_LOG").is_none() {
        detdiv_obs::set_max_level(detdiv_obs::Level::Warn);
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

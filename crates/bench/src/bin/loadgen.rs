//! Load generator for the sharded ingest service: drives millions of
//! distinct synthetic keyed streams through one [`IngestService`] in a
//! single process and writes a machine-readable baseline
//! (`BENCH_pr9.json`-shaped) recording sustained events/sec and the
//! enqueue→verdict latency distribution (p50/p99).
//!
//! ```text
//! loadgen [--streams N] [--events-per-stream N] [--shards N]
//!         [--queue-cap N] [--threads N] [--full-tiering]
//!         [--overload] [--guard-bytes N] [--flight PATH]
//!         [--fault SPEC] [--snapshot PATH] [--resume PATH] [--out PATH]
//! ```
//!
//! Events are synthesized deterministically (a splitmix64 mix of the
//! stream index seeds ids, symbols, and values), so two runs with the
//! same knobs ingest the identical event set. Every verdict folds into
//! a per-shard FNV-1a digest — per-shard drain order is deterministic
//! at every worker count, so the combined digest printed on stdout is
//! the cross-width determinism check CI diffs (`--fault` runs are
//! exempt: chaos changes which slots die, and with it the digest).
//!
//! Tiering is gated by default — the deployment shape: a cheap EWMA
//! gate fronts every stream and roughly one stream in 257 carries a
//! planted spike that escalates it to the trained tier-2 bank. Only
//! escalated streams ever instantiate model state, which is what lets
//! one process hold millions of streams. `--full-tiering` instantiates
//! the full bank per stream instead (small runs only).
//!
//! `--snapshot` writes a crash-safe shard-state snapshot after the
//! run; `--resume` recovers one before ingesting (a discarded snapshot
//! is reported, never fatal) — together they exercise the recovery
//! path under load: run A snapshots, run B resumes and continues.
//!
//! `--overload` attaches the `detdiv-guard` overload protection and
//! switches the producer to an open-loop arrival pattern at twice the
//! service's drain capacity: between drains it offers two full queue
//! generations, so queues overflow, the degradation ladder climbs to
//! shedding, and rejected events are *dropped* (typed-counted, never
//! retried) instead of absorbed. After the offered load ends, a
//! recovery phase drains until every queue is empty and every ladder is
//! back at `Full`, counting the cycles that took. The run asserts the
//! no-silent-drop invariant `offered == delivered + shed` and that the
//! resident-bytes peak stayed within `--guard-bytes` (default 1 MiB,
//! env `DETDIV_GUARD_BYTES`); shed counts, recovery cycles, and the
//! verdict digest all land on stdout because the guard's decisions are
//! pure functions of observed counters — identical at every width.
//!
//! `--flight PATH` arms the flight recorder for the run and exports
//! the audit log — under `--overload` every guard transition (ladder,
//! breaker, hibernate/rehydrate) lands in the dump for
//! `flightcheck --guard`.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use detdiv_core::SequenceAnomalyDetector;
use detdiv_detectors::Stide;
use detdiv_guard::{BreakerConfig, DegradationLevel, GuardConfig};
use detdiv_sequence::{symbols, Symbol};
use detdiv_serve::{
    IngestService, RecoverOutcome, RejectReason, ServeConfig, Tier1Config, VerdictEvent,
    VerdictSink,
};
use detdiv_stream::{ModelAdapter, SignalContext, StreamDetector};
use serde::Serialize;

/// Sample one enqueue→verdict latency out of this many verdicts: keeps
/// the sample vector small at millions of events while staying dense
/// enough for stable percentiles. Prime, so the sampling never locks
/// onto a per-stream emission period.
const LATENCY_SAMPLE_EVERY: u64 = 997;

/// One spike stream per this many streams escalates to tier-2.
const SPIKE_PERIOD: u64 = 257;

#[derive(Debug, Serialize)]
struct Baseline {
    bench: String,
    streams: u64,
    events_per_stream: u64,
    shards: usize,
    queue_capacity: usize,
    threads: usize,
    /// Total events processed (every synthesized event, exactly once).
    events: u64,
    /// Verdicts emitted across both tiers.
    emitted: u64,
    /// Streams escalated from the tier-1 gate to the tier-2 bank.
    escalated: u64,
    /// Backpressure rejections absorbed by drain-and-retry.
    rejections: u64,
    /// Detector slots degraded during the run (non-zero under --fault).
    degraded: u64,
    /// Ingest wall time: first enqueue to final drain, ms.
    wall_ms: f64,
    /// Sustained throughput over the ingest wall time, events/sec.
    serve_events_per_sec: f64,
    /// Median enqueue→verdict latency, microseconds.
    serve_p50_us: f64,
    /// 99th-percentile enqueue→verdict latency, microseconds.
    serve_p99_us: f64,
    /// Latencies the percentiles were computed from.
    latency_samples: usize,
    /// Events offered by the producer (== `events` except under
    /// `--overload`, where shed events are offered but not delivered).
    offered: u64,
    /// Events shed (guard shedding + queue-full drops) under
    /// `--overload`; always 0 otherwise.
    shed: u64,
    /// Shed events rejected by the guard's shedding ladder level.
    shed_guard: u64,
    /// Shed events dropped on a full queue while overloaded.
    shed_queue: u64,
    /// Drain cycles the recovery phase needed to return every ladder to
    /// `Full` with empty queues (0 outside `--overload`).
    recovery_cycles: u64,
    /// `shed_guard / offered` — the guard's shed rate under overload.
    guard_shed_rate: f64,
    /// Peak summed resident detector-state bytes reported by the guard
    /// (0 without `--overload`).
    serve_resident_bytes_peak: u64,
    /// Combined per-shard verdict digest (the determinism check).
    digest: String,
}

struct Args {
    streams: u64,
    events_per_stream: u64,
    shards: usize,
    queue_cap: usize,
    threads: Option<usize>,
    full_tiering: bool,
    overload: bool,
    guard_bytes: Option<u64>,
    flight: Option<String>,
    fault: Option<String>,
    snapshot: Option<String>,
    resume: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        streams: 1_000_000,
        events_per_stream: 6,
        shards: 64,
        queue_cap: 4096,
        threads: None,
        full_tiering: false,
        overload: false,
        guard_bytes: None,
        flight: None,
        fault: None,
        snapshot: None,
        resume: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--streams" => {
                args.streams = value("--streams")?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?;
            }
            "--events-per-stream" => {
                args.events_per_stream = value("--events-per-stream")?
                    .parse()
                    .map_err(|e| format!("--events-per-stream: {e}"))?;
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads: must be at least 1".to_owned());
                }
                args.threads = Some(n);
            }
            "--full-tiering" => args.full_tiering = true,
            "--overload" => args.overload = true,
            "--guard-bytes" => {
                let n: u64 = value("--guard-bytes")?
                    .parse()
                    .map_err(|e| format!("--guard-bytes: {e}"))?;
                if n == 0 {
                    return Err("--guard-bytes: must be at least 1".to_owned());
                }
                args.guard_bytes = Some(n);
            }
            "--flight" => args.flight = Some(value("--flight")?),
            "--fault" => args.fault = Some(value("--fault")?),
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--streams N] [--events-per-stream N] [--shards N]\n\
                     \x20       [--queue-cap N] [--threads N] [--full-tiering]\n\
                     \x20       [--overload] [--guard-bytes N] [--flight PATH]\n\
                     \x20       [--fault SPEC] [--snapshot PATH] [--resume PATH] [--out PATH]\n\
                     Drives N synthetic keyed streams through a sharded ingest service and\n\
                     prints a deterministic verdict digest; --out writes the BENCH baseline.\n\
                     --overload attaches the guard and offers load at 2x drain capacity,\n\
                     shedding (never silently dropping) the overflow."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        if args.streams == 0 || args.events_per_stream == 0 || args.shards == 0 {
            return Err("streams, events-per-stream, and shards must be positive".to_owned());
        }
    }
    if args.overload && args.full_tiering {
        return Err("--overload requires gated tiering (drop --full-tiering)".to_owned());
    }
    Ok(args)
}

/// splitmix64: the per-stream deterministic seed mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The synthetic event for stream index `i` at position `seq`.
///
/// Each stream holds a per-stream-constant quiet value (symbols still
/// vary per event for tier-2), so the gate's deviation is exactly zero
/// and quiet streams never escalate. Every [`SPIKE_PERIOD`]th stream
/// carries one planted spike (at the third event, so the gate is past
/// warmup and tier-2 still sees the tail): against zero variance any
/// deviation is an infinite z-score, so escalation is deterministic.
fn event(i: u64, seq: u64) -> SignalContext {
    let id = mix(i.wrapping_mul(0x1000_0000_01b3) ^ 0x5ee5_0bad_c0de);
    let bits = mix(id ^ seq);
    let symbol = Symbol::new((bits % 4) as u32 + 1);
    let spike = i.is_multiple_of(SPIKE_PERIOD) && seq == 2;
    let value = if spike {
        1000.0
    } else {
        1.0 + (id % 8) as f64 * 0.125
    };
    SignalContext::new(seq, id, symbol, value)
}

/// Per-shard FNV-1a verdict digests plus sampled latencies. Per-shard
/// folding is what makes the combined digest width-independent: one
/// worker drains a shard at a time, so each shard's verdict order is
/// deterministic even when shards interleave freely.
struct LoadSink {
    digests: Vec<Mutex<u64>>,
    latencies: Mutex<Vec<u64>>,
    seen: Mutex<u64>,
}

impl LoadSink {
    fn new(shards: usize) -> LoadSink {
        LoadSink {
            digests: (0..shards)
                .map(|_| Mutex::new(0xcbf2_9ce4_8422_2325))
                .collect(),
            latencies: Mutex::new(Vec::new()),
            seen: Mutex::new(0),
        }
    }

    /// Folds the per-shard digests, in shard order, into one value.
    fn combined(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for d in &self.digests {
            for b in d.lock().unwrap().to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

impl VerdictSink for LoadSink {
    fn on_verdict(&self, event: &VerdictEvent) {
        let mut digest = self.digests[event.shard].lock().unwrap();
        for word in [
            event.stream_hash,
            event.seq,
            event.slot as u64,
            event.result.score.to_bits(),
        ] {
            for b in word.to_le_bytes() {
                *digest = (*digest ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        }
        drop(digest);
        let mut seen = self.seen.lock().unwrap();
        *seen += 1;
        let sample = seen.is_multiple_of(LATENCY_SAMPLE_EVERY);
        drop(seen);
        if sample {
            let micros = event.latency.as_nanos() as u64 / 1000;
            self.latencies.lock().unwrap().push(micros);
        }
    }
}

/// Exact percentile over the sorted samples (nearest-rank).
fn percentile(sorted: &[u64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

fn bench_label(out: &str) -> String {
    std::path::Path::new(out)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| out.to_owned())
        .trim_start_matches("BENCH_")
        .to_owned()
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(threads) = args.threads {
        detdiv_par::global().set_threads(Some(threads));
    }
    let threads = detdiv_par::global().threads();
    if let Some(spec) = &args.fault {
        detdiv_resil::arm(detdiv_resil::FaultPlan::parse(spec)?);
    }
    if let Some(path) = &args.flight {
        detdiv_flight::arm(path);
    }
    eprintln!(
        "loadgen: streams={} events/stream={} shards={} queue-cap={} threads={threads} \
         tiering={}{}{}",
        args.streams,
        args.events_per_stream,
        args.shards,
        args.queue_cap,
        if args.full_tiering { "full" } else { "gate" },
        if args.overload { " (overload)" } else { "" },
        if args.fault.is_some() {
            " (chaos armed)"
        } else {
            ""
        },
    );

    // The tier-2 bank: one trained sliding-window model per stream.
    // Training happens once, outside the timed region; escalated
    // streams share the model through the Arc and keep only their own
    // window state.
    let mut stide = Stide::new(3);
    let mut train = Vec::new();
    for _ in 0..64 {
        train.extend(symbols(&[1, 2, 3, 4, 2, 3, 1, 4]));
    }
    stide.train(&train);
    let model: Arc<dyn detdiv_core::TrainedModel> = Arc::new(stide);

    let config = ServeConfig::new(args.shards, args.queue_cap);
    let config = if args.full_tiering {
        config
    } else {
        // Warmup 2 so short per-stream feeds still clear the gate, and
        // the planted spike at seq 2 is the first escalatable event.
        config.gated(Tier1Config {
            alpha: 0.3,
            warmup: 2,
            escalate_score: 0.5,
        })
    };
    let factory =
        move || vec![Box::new(ModelAdapter::new(Arc::clone(&model))) as Box<dyn StreamDetector>];
    // Overload runs attach the guard: resident-byte budget from
    // --guard-bytes (or DETDIV_GUARD_BYTES, default 1 MiB), hibernation
    // segments in DETDIV_GUARD_DIR or a per-process temp directory
    // (only the latter is removed on exit), and a hair-trigger breaker
    // so a single tier-2 failure (chaos runs) opens it.
    let env_guard = GuardConfig::from_env();
    let temp_spill = env_guard.spill_dir.is_none();
    let spill_dir = args.overload.then(|| {
        env_guard.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("detdiv-loadgen-guard-{}", std::process::id()))
        })
    });
    let guard_budget = args
        .guard_bytes
        .or(env_guard.budget_bytes)
        .unwrap_or(1 << 20);
    let service = if args.overload {
        let guard_config = GuardConfig {
            budget_bytes: Some(guard_budget),
            spill_dir: spill_dir.clone(),
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_cycles: 2,
            },
            ..GuardConfig::default()
        };
        IngestService::with_guard(config, guard_config, factory)?
    } else {
        IngestService::new(config, factory)
    };
    service.register_introspection();

    if let Some(path) = &args.resume {
        match service.recover(path) {
            RecoverOutcome::Recovered { streams, skipped } => {
                eprintln!("loadgen: resumed {streams} stream(s) from {path} ({skipped} skipped)");
            }
            RecoverOutcome::Discarded { reason } => {
                eprintln!("loadgen: snapshot {path} discarded ({reason}); cold start");
            }
        }
    }

    let sink = LoadSink::new(args.shards);
    let mut processed = 0u64;
    let mut emitted = 0u64;
    let mut escalated = 0u64;
    let mut degraded = 0u64;
    let mut rejections = 0u64;
    let mut offered = 0u64;
    let mut shed_guard = 0u64;
    let mut shed_queue = 0u64;
    let mut recovery_cycles = 0u64;
    let started = Instant::now();
    if args.overload {
        // Open-loop overload in alternating waves. A *burst* wave
        // offers two full queue generations back to back with a single
        // drain between them: the first generation overfills every
        // queue (half of it drops on QueueFull), the drain sees 100%
        // fill and jumps the ladder to Shedding, and the second
        // generation is then shed by the guard at the door — arrival at
        // ~4x what the service delivers. Cool-down drains walk the
        // ladder back to Full, then a short *paced* wave (quarter-fill,
        // drained immediately) delivers traffic normally so gates warm
        // up, spike streams escalate, and tier-2 banks engage — which
        // is what gives the chaos variant a breaker to trip. Every
        // decision is a pure function of per-shard queue depths at
        // drain boundaries, and the single-threaded producer makes
        // those identical at every worker width, so shed counts and the
        // verdict digest are width-invariant.
        let total = args.streams * args.events_per_stream;
        let capacity = (args.shards * args.queue_cap) as u64;
        let offer = |k: u64,
                     service: &IngestService,
                     offered: &mut u64,
                     shed_guard: &mut u64,
                     shed_queue: &mut u64| {
            let (seq, i) = (k / args.streams, k % args.streams);
            *offered += 1;
            match service.enqueue(event(i, seq)) {
                Ok(()) => {}
                Err(RejectReason::Shedding { .. }) => *shed_guard += 1,
                Err(_) => *shed_queue += 1,
            }
        };
        let mut k = 0u64;
        let mut wave = 0u64;
        let paced_rounds = [capacity / 4; 8];
        let burst_rounds = [2 * capacity, 2 * capacity];
        while k < total {
            // Paced first: the early seqs (where the planted spikes
            // live) are delivered at Full so tier-2 actually engages
            // before the first burst slams the ladder shut.
            let burst = !wave.is_multiple_of(2);
            let rounds: &[u64] = if burst { &burst_rounds } else { &paced_rounds };
            for &round in rounds {
                let end = (k + round).min(total);
                while k < end {
                    offer(k, &service, &mut offered, &mut shed_guard, &mut shed_queue);
                    k += 1;
                }
                let summary = service.drain(&sink);
                processed += summary.processed;
                emitted += summary.emitted;
                escalated += summary.escalated;
                degraded += summary.degraded;
            }
            if burst {
                // Cool down: drain (offering nothing) until every
                // ladder is back at Full, so the next wave starts from
                // a healthy service. These cycles are the recovery-time
                // metric: how long the ladder takes to walk back down
                // once the overload stops.
                let mut cool = 0u32;
                while !service
                    .guard_levels()
                    .iter()
                    .all(|level| *level == DegradationLevel::Full)
                {
                    let summary = service.drain(&sink);
                    processed += summary.processed;
                    emitted += summary.emitted;
                    escalated += summary.escalated;
                    degraded += summary.degraded;
                    recovery_cycles += 1;
                    cool += 1;
                    if cool > 64 {
                        return Err("ladder failed to cool down after a burst".into());
                    }
                }
            }
            wave += 1;
        }
        // Recovery: the offered load has ended; drain until every queue
        // is empty and every ladder has cooled back to Full, counting
        // the cycles that takes (the recovery-time metric).
        loop {
            let recovered = service.pending() == 0
                && service
                    .guard_levels()
                    .iter()
                    .all(|level| *level == DegradationLevel::Full);
            if recovered {
                break;
            }
            let summary = service.drain(&sink);
            processed += summary.processed;
            emitted += summary.emitted;
            escalated += summary.escalated;
            degraded += summary.degraded;
            recovery_cycles += 1;
            if recovery_cycles > 4096 {
                return Err("overload recovery made no progress".into());
            }
        }
    } else {
        for seq in 0..args.events_per_stream {
            for i in 0..args.streams {
                let ctx = event(i, seq);
                while let Err(_reject) = service.enqueue(ctx) {
                    // Backpressure: the queue is full, so drain the service
                    // and retry — the producer absorbs the pushback instead
                    // of the service buffering without bound.
                    rejections += 1;
                    let summary = service.drain(&sink);
                    processed += summary.processed;
                    emitted += summary.emitted;
                    escalated += summary.escalated;
                    degraded += summary.degraded;
                }
            }
        }
        offered = args.streams * args.events_per_stream;
        // Final drains: under --fault a shard batch may defer, so spin
        // until every queue is empty (the fault plan's hit index advances,
        // so progress is guaranteed).
        let mut spins = 0u32;
        while service.pending() > 0 {
            let summary = service.drain(&sink);
            processed += summary.processed;
            emitted += summary.emitted;
            escalated += summary.escalated;
            degraded += summary.degraded;
            spins += 1;
            if spins > 4096 {
                return Err("drain made no progress".into());
            }
        }
    }
    let wall = started.elapsed();
    if args.fault.is_some() {
        detdiv_resil::disarm();
    }

    // No silent drops: every offered event was either delivered through
    // detection or typed-counted as shed.
    let shed = shed_guard + shed_queue;
    if processed + shed != offered {
        return Err(format!(
            "accounting hole: offered {offered} != delivered {processed} + shed {shed}"
        )
        .into());
    }
    let resident_peak = service
        .guard_stats()
        .map(|stats| {
            stats
                .resident_peak
                .load(std::sync::atomic::Ordering::Relaxed)
        })
        .unwrap_or(0);
    if args.overload && resident_peak > guard_budget {
        return Err(format!(
            "resident bytes peaked at {resident_peak}, over the {guard_budget} budget"
        )
        .into());
    }

    let mut latencies = std::mem::take(&mut *sink.latencies.lock().unwrap());
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events_per_sec = if wall.as_secs_f64() > 0.0 {
        processed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    if let Some(path) = &args.snapshot {
        let stats = service.snapshot(path)?;
        eprintln!(
            "loadgen: snapshot {} stream(s), {} bytes -> {path}",
            stats.streams, stats.bytes
        );
    }

    eprintln!(
        "loadgen: {processed} events over {} stream(s) in {wall_ms:.0} ms \
         ({events_per_sec:.0} events/s), {emitted} verdicts, {escalated} escalated, \
         {degraded} degraded, {rejections} backpressure rejections, \
         p50 {p50:.0} us, p99 {p99:.0} us ({} samples)",
        service.stream_count(),
        latencies.len()
    );
    if args.overload {
        eprintln!(
            "loadgen: overload offered={offered} delivered={processed} shed={shed} \
             (guard {shed_guard}, queue {shed_queue}), recovered to Full in \
             {recovery_cycles} cycle(s), resident peak {resident_peak} bytes \
             (budget {guard_budget})"
        );
    }
    // stdout carries only the deterministic facts CI diffs across
    // worker counts; timing stays on stderr. (resident peak is *not*
    // printed here: per-shard cycles overlap freely, so the instant the
    // peak is sampled at differs across widths.)
    if args.overload {
        println!(
            "loadgen: overload streams={} offered={offered} delivered={processed} \
             shed={shed} shed_guard={shed_guard} shed_queue={shed_queue} \
             recovery_cycles={recovery_cycles} digest={:016x}",
            args.streams,
            sink.combined()
        );
    } else {
        println!(
            "loadgen: streams={} events={processed} digest={:016x}",
            args.streams,
            sink.combined()
        );
    }

    if let Some(path) = &args.flight {
        detdiv_flight::disarm();
        match detdiv_flight::export(path) {
            Ok(records) => eprintln!("loadgen: exported {records} flight record(s) -> {path}"),
            Err(e) => return Err(format!("flight export to {path} failed: {e}").into()),
        }
    }

    if let Some(out) = &args.out {
        let baseline = Baseline {
            bench: bench_label(out),
            streams: args.streams,
            events_per_stream: args.events_per_stream,
            shards: args.shards,
            queue_capacity: args.queue_cap,
            threads,
            events: processed,
            emitted,
            escalated,
            rejections,
            degraded,
            wall_ms,
            serve_events_per_sec: events_per_sec,
            serve_p50_us: p50,
            serve_p99_us: p99,
            latency_samples: latencies.len(),
            offered,
            shed,
            shed_guard,
            shed_queue,
            recovery_cycles,
            guard_shed_rate: if offered > 0 {
                shed_guard as f64 / offered as f64
            } else {
                0.0
            },
            serve_resident_bytes_peak: resident_peak,
            digest: format!("{:016x}", sink.combined()),
        };
        // Crash-safe: the baseline appears complete or not at all.
        detdiv_resil::AtomicFile::write(out, serde_json::to_string_pretty(&baseline)?)?;
        eprintln!("loadgen: wrote {out}");
    }
    if let Some(dir) = &spill_dir {
        drop(service);
        // Hibernation segments are scratch state; drop them with the
        // run — but never delete a user-chosen DETDIV_GUARD_DIR.
        if temp_spill {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: argument error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("loadgen: environment error: {e}");
        return ExitCode::FAILURE;
    }
    if std::env::var_os("DETDIV_LOG").is_none() {
        detdiv_obs::set_max_level(detdiv_obs::Level::Warn);
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

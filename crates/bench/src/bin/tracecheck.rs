//! Validates a Chrome trace-event JSON file written by `--trace` /
//! `DETDIV_TRACE` (the CI trace gate's checker).
//!
//! ```text
//! tracecheck PATH [--expect-thread NAME]...
//! ```
//!
//! Checks, in order:
//!
//! 1. the file parses as JSON and has a top-level `traceEvents` array;
//! 2. every event is an object carrying `name` (string), `ph` (one of
//!    `B E i X C M`), a numeric `ts`, and integer `pid`/`tid`;
//! 3. per `tid`, timestamps never decrease in file order (the exporter
//!    sorts stably on nanoseconds, so any regression is a bug);
//! 4. per `tid`, `B`/`E` events balance as a stack: every `E` closes
//!    the innermost open `B` of the same name, and no `B` is left open
//!    at end of file;
//! 5. every `--expect-thread NAME` matches some `thread_name` metadata
//!    event's `args.name` (substring match), e.g. `par-worker-1`.
//!
//! Prints a one-line summary on success; on any violation prints the
//! offending event index and exits nonzero.

use std::process::ExitCode;

use serde::Value;

struct Check {
    events: usize,
    tids: std::collections::BTreeSet<u64>,
    thread_names: Vec<String>,
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::UInt(u) => Some(*u),
        _ => None,
    }
}

fn as_number(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn check(doc: &Value) -> Result<Check, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;

    let mut tids = std::collections::BTreeSet::new();
    let mut thread_names = Vec::new();
    // Per-tid state: last timestamp seen and the open B-span stack.
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();

    for (index, event) in events.iter().enumerate() {
        let fail = |what: &str| format!("event {index}: {what}");
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing string \"name\""))?;
        let phase = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing string \"ph\""))?;
        if !matches!(phase, "B" | "E" | "i" | "X" | "C" | "M") {
            return Err(fail(&format!("unknown phase {phase:?}")));
        }
        let ts = event
            .get("ts")
            .and_then(as_number)
            .ok_or_else(|| fail("missing numeric \"ts\""))?;
        event
            .get("pid")
            .and_then(as_u64)
            .ok_or_else(|| fail("missing integer \"pid\""))?;
        let tid = event
            .get("tid")
            .and_then(as_u64)
            .ok_or_else(|| fail("missing integer \"tid\""))?;
        tids.insert(tid);

        // 3. Per-tid monotonic timestamps. Metadata events carry ts 0
        //    by convention and are exempt.
        if phase != "M" {
            if let Some(&previous) = last_ts.get(&tid) {
                if ts < previous {
                    return Err(fail(&format!(
                        "tid {tid} timestamp went backwards: {previous} -> {ts}"
                    )));
                }
            }
            last_ts.insert(tid, ts);
        }

        // 4. B/E stack balance per tid.
        match phase {
            "B" => stacks.entry(tid).or_default().push(name.to_owned()),
            "E" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| fail(&format!("tid {tid}: E {name:?} without an open B")))?;
                if open != name {
                    return Err(fail(&format!(
                        "tid {tid}: E {name:?} closes B {open:?} (mismatched nesting)"
                    )));
                }
            }
            _ => {}
        }

        // 5. Collect thread names for --expect-thread.
        if phase == "M" && name == "thread_name" {
            if let Some(thread) = event
                .get("args")
                .and_then(|args| args.get("name"))
                .and_then(Value::as_str)
            {
                thread_names.push(thread.to_owned());
            }
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "tid {tid}: {} span(s) left open at end of trace (innermost {open:?})",
                stack.len()
            ));
        }
    }

    Ok(Check {
        events: events.len(),
        tids,
        thread_names,
    })
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(flag) if flag == "--help" || flag == "-h" => {
            println!("usage: tracecheck PATH [--expect-thread NAME]...");
            return Ok(());
        }
        Some(path) => path,
        None => return Err("usage: tracecheck PATH [--expect-thread NAME]...".to_owned()),
    };
    let mut expected_threads = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--expect-thread" => {
                expected_threads.push(args.next().ok_or("--expect-thread needs a name")?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }

    let raw = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::from_str_value(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let report = check(&doc).map_err(|e| format!("{path}: {e}"))?;
    for expected in &expected_threads {
        if !report
            .thread_names
            .iter()
            .any(|name| name.contains(expected.as_str()))
        {
            return Err(format!(
                "{path}: no thread_name metadata matching {expected:?} (saw {:?})",
                report.thread_names
            ));
        }
    }
    println!(
        "tracecheck: {path}: OK — {} events, {} thread(s), {} named",
        report.events,
        report.tids.len(),
        report.thread_names.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    if let Err(e) = detdiv_bench::preflight_env() {
        eprintln!("tracecheck: environment error: {e}");
        return ExitCode::FAILURE;
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tracecheck: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Perf-history analysis over the committed `BENCH_*.json` baselines.
//!
//! Every PR that touches performance commits a baseline written by
//! `perfbaseline` (`BENCH_pr3.json`, `BENCH_pr4.json`, ...). This
//! module parses all of them, orders them by PR number, renders a
//! per-metric trajectory table, and gates the newest comparable pair:
//! when the most recent baseline's headline wall time regresses beyond
//! a noise threshold against its predecessor *measured at the same
//! sweep shape* (training length and thread count), the `perfhist`
//! binary exits non-zero so CI fails.
//!
//! Baselines from different PRs carry different field sets (`pr3` has
//! no cache statistics), so parsing goes through the generic JSON
//! value tree and every metric is optional.

use serde::Value;
use std::path::{Path, PathBuf};

/// The metrics the trajectory table tracks, in display order. The
/// first entry (`wall_ms_trace_off` — the default-configuration
/// full-report wall time) is the gated headline metric; the dotted
/// name walks nested objects.
pub const TRACKED_METRICS: &[&str] = &[
    "wall_ms_trace_off",
    "wall_ms_trace_on",
    "wall_ms_cache_off",
    "cache_speedup_percent",
    "cache.hit_rate_percent",
    "trace_overhead_percent",
    "trace_events",
    "trace_dropped",
    "stream_events_per_sec",
    "utilization_percent",
];

/// The metric the regression gate compares.
pub const GATED_METRIC: &str = "wall_ms_trace_off";

/// One parsed baseline file.
#[derive(Debug, Clone)]
pub struct BaselineFile {
    /// Source path, for diagnostics.
    pub path: PathBuf,
    /// The `bench` label (`pr4`), falling back to the file stem.
    pub label: String,
    /// PR number parsed from the label's trailing digits (ordering
    /// key; label text breaks ties).
    pub order: u64,
    /// Sweep shape: training length.
    pub training_len: Option<u64>,
    /// Sweep shape: thread count.
    pub threads: Option<u64>,
    /// The parsed value tree, for metric lookups.
    value: Value,
}

impl BaselineFile {
    /// Parses one baseline JSON file.
    ///
    /// # Errors
    ///
    /// Unreadable file or malformed JSON, with the path named.
    pub fn load(path: impl AsRef<Path>) -> Result<BaselineFile, String> {
        let path = path.as_ref();
        let raw = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = serde_json::from_str_value(&raw)
            .map_err(|e| format!("{}: not valid JSON: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let label = value
            .get("bench")
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .unwrap_or_else(|| stem.trim_start_matches("BENCH_").to_owned());
        let order = trailing_number(&label);
        let training_len = value.get("training_len").and_then(as_u64);
        let threads = value.get("threads").and_then(as_u64);
        Ok(BaselineFile {
            path: path.to_owned(),
            label,
            order,
            training_len,
            threads,
            value,
        })
    }

    /// Looks up one (possibly dotted) metric as a float.
    pub fn metric(&self, name: &str) -> Option<f64> {
        let mut cursor = &self.value;
        for part in name.split('.') {
            cursor = cursor.get(part)?;
        }
        as_f64(cursor)
    }

    /// Whether two baselines measured the same sweep shape, making
    /// their wall times comparable.
    pub fn comparable_with(&self, other: &BaselineFile) -> bool {
        self.training_len == other.training_len && self.threads == other.threads
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(n) => Some(*n as f64),
        Value::UInt(n) => Some(*n as f64),
        _ => None,
    }
}

/// PR-number ordering key: the value of the label's trailing digit
/// run (`pr10` → 10), or 0 when there is none (sorts first).
fn trailing_number(label: &str) -> u64 {
    let digits: String = label
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().unwrap_or(0)
}

/// Finds every `BENCH_*.json` directly inside `dir`, sorted by PR
/// number then label.
///
/// # Errors
///
/// Unreadable directory, or any individual file failing to parse.
pub fn discover(dir: impl AsRef<Path>) -> Result<Vec<BaselineFile>, String> {
    let dir = dir.as_ref();
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            files.push(BaselineFile::load(entry.path())?);
        }
    }
    sort_baselines(&mut files);
    Ok(files)
}

/// Sorts baselines into trajectory order (PR number, then label).
pub fn sort_baselines(files: &mut [BaselineFile]) {
    files.sort_by(|a, b| a.order.cmp(&b.order).then_with(|| a.label.cmp(&b.label)));
}

/// Renders the per-metric trajectory table: one column per baseline in
/// PR order, one row per tracked metric, `-` where a baseline predates
/// the metric.
pub fn render_trajectory(files: &[BaselineFile]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if files.is_empty() {
        out.push_str("perfhist: no BENCH_*.json baselines found\n");
        return out;
    }
    let _ = write!(out, "{:<28}", "metric");
    for f in files {
        let _ = write!(out, " {:>14}", f.label);
    }
    out.push('\n');
    let _ = write!(out, "{:<28}", "  (sweep)");
    for f in files {
        let shape = match (f.training_len, f.threads) {
            (Some(len), Some(t)) => format!("{}k/t{t}", len / 1000),
            _ => "?".to_owned(),
        };
        let _ = write!(out, " {shape:>14}");
    }
    out.push('\n');
    for metric in TRACKED_METRICS {
        let _ = write!(out, "{metric:<28}");
        for f in files {
            match f.metric(metric) {
                Some(v) => {
                    let _ = write!(out, " {v:>14.2}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// The regression gate's verdict on the newest pair of baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Fewer than two baselines: nothing to compare.
    TooFewBaselines,
    /// The newest two baselines measured different sweep shapes;
    /// wall times are not comparable, so the gate abstains.
    NotComparable {
        /// Newest baseline's label.
        newest: String,
        /// Predecessor's label.
        previous: String,
    },
    /// Newest is within the threshold of (or faster than) its
    /// predecessor.
    Ok {
        /// Newest baseline's label.
        newest: String,
        /// Predecessor's label.
        previous: String,
        /// Newest-over-previous change of the gated metric, percent
        /// (negative = faster).
        change_percent: f64,
    },
    /// Newest regressed the gated metric beyond the threshold.
    Regression {
        /// Newest baseline's label.
        newest: String,
        /// Predecessor's label.
        previous: String,
        /// Newest-over-previous change of the gated metric, percent.
        change_percent: f64,
        /// The threshold that was exceeded, percent.
        threshold_percent: f64,
    },
}

impl Verdict {
    /// Whether CI should fail on this verdict.
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression { .. })
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            Verdict::TooFewBaselines => {
                "perfhist: fewer than two baselines; nothing to gate".to_owned()
            }
            Verdict::NotComparable { newest, previous } => format!(
                "perfhist: {newest} and {previous} measured different sweeps; gate abstains"
            ),
            Verdict::Ok {
                newest,
                previous,
                change_percent,
            } => format!(
                "perfhist: OK — {GATED_METRIC} {newest} vs {previous}: {change_percent:+.2}%"
            ),
            Verdict::Regression {
                newest,
                previous,
                change_percent,
                threshold_percent,
            } => format!(
                "perfhist: REGRESSION — {GATED_METRIC} {newest} vs {previous}: \
                 {change_percent:+.2}% exceeds the {threshold_percent:.1}% threshold"
            ),
        }
    }
}

/// Gates the newest baseline against its predecessor: regression when
/// the gated metric grew by more than `threshold_percent` between the
/// two newest baselines that share a sweep shape with each other.
pub fn gate(files: &[BaselineFile], threshold_percent: f64) -> Verdict {
    let Some(newest) = files.last() else {
        return Verdict::TooFewBaselines;
    };
    let Some(previous) = files.iter().rev().nth(1) else {
        return Verdict::TooFewBaselines;
    };
    if !newest.comparable_with(previous) {
        return Verdict::NotComparable {
            newest: newest.label.clone(),
            previous: previous.label.clone(),
        };
    }
    let (Some(new_wall), Some(old_wall)) =
        (newest.metric(GATED_METRIC), previous.metric(GATED_METRIC))
    else {
        return Verdict::NotComparable {
            newest: newest.label.clone(),
            previous: previous.label.clone(),
        };
    };
    if old_wall <= 0.0 {
        return Verdict::NotComparable {
            newest: newest.label.clone(),
            previous: previous.label.clone(),
        };
    }
    let change_percent = (new_wall - old_wall) / old_wall * 100.0;
    if change_percent > threshold_percent {
        Verdict::Regression {
            newest: newest.label.clone(),
            previous: previous.label.clone(),
            change_percent,
            threshold_percent,
        }
    } else {
        Verdict::Ok {
            newest: newest.label.clone(),
            previous: previous.label.clone(),
            change_percent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(label: &str, wall: f64, training_len: u64, threads: u64) -> BaselineFile {
        let json = format!(
            r#"{{"bench": "{label}", "training_len": {training_len}, "threads": {threads},
                "wall_ms_trace_off": {wall}, "trace_dropped": 0}}"#
        );
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "detdiv-perfhist-test-{}-BENCH_{label}.json",
            std::process::id()
        ));
        std::fs::write(&path, json).unwrap();
        let parsed = BaselineFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        parsed
    }

    #[test]
    fn baselines_sort_by_pr_number_not_lexically() {
        let mut files = vec![
            synthetic("pr10", 100.0, 60_000, 1),
            synthetic("pr4", 100.0, 60_000, 1),
            synthetic("pr3", 100.0, 60_000, 1),
        ];
        sort_baselines(&mut files);
        let labels: Vec<_> = files.iter().map(|f| f.label.as_str()).collect();
        assert_eq!(labels, ["pr3", "pr4", "pr10"]);
    }

    #[test]
    fn committed_baselines_parse_and_carry_the_gated_metric() {
        // The real BENCH files at the repository root are test fixtures
        // for the parser: they must stay loadable forever.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("repo root scans");
        assert!(
            files.len() >= 2,
            "at least pr3 and pr4 baselines are committed"
        );
        for f in &files {
            assert!(
                f.metric(GATED_METRIC).is_some(),
                "{} carries {GATED_METRIC}",
                f.path.display()
            );
        }
        let table = render_trajectory(&files);
        assert!(table.contains("pr3"));
        assert!(table.contains("pr4"));
        assert!(table.contains(GATED_METRIC));
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond_it() {
        let files = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 1040.0, 60_000, 1),
        ];
        assert!(!gate(&files, 10.0).is_regression(), "4% growth under 10%");
        let verdict = gate(&files, 2.0);
        assert!(verdict.is_regression(), "4% growth over 2%");
        assert!(verdict.render().contains("REGRESSION"));

        let improved = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 700.0, 60_000, 1),
        ];
        assert!(!gate(&improved, 10.0).is_regression(), "speedups pass");
    }

    #[test]
    fn gate_abstains_on_shape_mismatch_and_missing_data() {
        let files = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 9000.0, 120_000, 1),
        ];
        assert_eq!(
            gate(&files, 10.0),
            Verdict::NotComparable {
                newest: "pr2".to_owned(),
                previous: "pr1".to_owned(),
            },
            "different training lengths are not comparable"
        );
        assert_eq!(
            gate(&files[..1], 10.0),
            Verdict::TooFewBaselines,
            "a single baseline gates nothing"
        );
        assert_eq!(gate(&[], 10.0), Verdict::TooFewBaselines);
    }

    #[test]
    fn dotted_metrics_walk_nested_objects() {
        let json = r#"{"bench": "prX", "cache": {"hit_rate_percent": 60.25}}"#;
        let path = std::env::temp_dir().join(format!(
            "detdiv-perfhist-dotted-{}.json",
            std::process::id()
        ));
        std::fs::write(&path, json).unwrap();
        let f = BaselineFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(f.metric("cache.hit_rate_percent"), Some(60.25));
        assert_eq!(f.metric("cache.absent"), None);
        assert_eq!(f.metric("absent.whatever"), None);
    }
}

//! Perf-history analysis over the committed `BENCH_*.json` baselines.
//!
//! Every PR that touches performance commits a baseline written by
//! `perfbaseline` or `loadgen` (`BENCH_pr3.json`, `BENCH_pr9.json`,
//! ...). This module parses all of them, orders them by PR number,
//! renders a per-metric trajectory table, and gates each metric in
//! [`GATED_METRICS`] independently, direction-aware: for every gated
//! metric it finds the newest baseline *carrying* that metric and
//! compares it against the newest older carrier *measured at the same
//! sweep shape* (training length, stream count, and thread count).
//! When a wall time *grows* — or a throughput *drops* — beyond a noise
//! threshold, the `perfhist` binary exits non-zero so CI fails.
//!
//! Pair selection is per metric, not per file, so a baseline that
//! introduces a brand-new gauge (the first `loadgen` run bringing
//! `serve_events_per_sec`) abstains on the new metric instead of
//! failing — and, crucially, does *not* un-gate the established
//! metrics, which keep comparing their own newest carrier pair.
//!
//! Baselines from different PRs carry different field sets (`pr3` has
//! no cache statistics), so parsing goes through the generic JSON
//! value tree and every metric is optional.

use serde::Value;
use std::path::{Path, PathBuf};

/// The metrics the trajectory table tracks, in display order. The
/// first entry (`wall_ms_trace_off` — the default-configuration
/// full-report wall time) is the gated headline metric; the dotted
/// name walks nested objects.
pub const TRACKED_METRICS: &[&str] = &[
    "wall_ms_trace_off",
    "wall_ms_trace_on",
    "wall_ms_cache_off",
    "cache_speedup_percent",
    "cache.hit_rate_percent",
    "trace_overhead_percent",
    "trace_events",
    "trace_dropped",
    "stream_events_per_sec",
    "utilization_percent",
    "serve_events_per_sec",
    "serve_p50_us",
    "serve_p99_us",
    "guard_shed_rate",
    "serve_resident_bytes_peak",
];

/// Which way a gated metric is supposed to move: wall times regress
/// upward, throughputs regress downward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (wall times): a regression is growth beyond
    /// the threshold.
    LowerIsBetter,
    /// Larger is better (throughputs): a regression is a drop beyond
    /// the threshold.
    HigherIsBetter,
}

/// One metric the regression gate enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatedMetric {
    /// Dotted metric name, looked up via [`BaselineFile::metric`].
    pub name: &'static str,
    /// Which way this metric regresses.
    pub direction: Direction,
}

/// The metrics the regression gate compares, each with its regression
/// direction. Each metric picks its own newest-carrier pair (see
/// [`gate`]); a metric first measured by the newest baseline abstains
/// until a second carrier exists.
pub const GATED_METRICS: &[GatedMetric] = &[
    GatedMetric {
        name: "wall_ms_trace_off",
        direction: Direction::LowerIsBetter,
    },
    GatedMetric {
        name: "stream_events_per_sec",
        direction: Direction::HigherIsBetter,
    },
    GatedMetric {
        name: "serve_events_per_sec",
        direction: Direction::HigherIsBetter,
    },
    GatedMetric {
        name: "serve_p99_us",
        direction: Direction::LowerIsBetter,
    },
    // Resident-state ceiling under overload (`loadgen --overload`): the
    // hibernation budget must keep working-set growth in check, so a
    // higher peak than the comparable baseline is a regression.
    GatedMetric {
        name: "serve_resident_bytes_peak",
        direction: Direction::LowerIsBetter,
    },
];

/// One parsed baseline file.
#[derive(Debug, Clone)]
pub struct BaselineFile {
    /// Source path, for diagnostics.
    pub path: PathBuf,
    /// The `bench` label (`pr4`), falling back to the file stem.
    pub label: String,
    /// PR number parsed from the label's trailing digits (ordering
    /// key; label text breaks ties).
    pub order: u64,
    /// Sweep shape: training length.
    pub training_len: Option<u64>,
    /// Sweep shape: distinct stream count (`loadgen` baselines).
    pub streams: Option<u64>,
    /// Sweep shape: thread count.
    pub threads: Option<u64>,
    /// The parsed value tree, for metric lookups.
    value: Value,
}

impl BaselineFile {
    /// Parses one baseline JSON file.
    ///
    /// # Errors
    ///
    /// Unreadable file or malformed JSON, with the path named.
    pub fn load(path: impl AsRef<Path>) -> Result<BaselineFile, String> {
        let path = path.as_ref();
        let raw = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = serde_json::from_str_value(&raw)
            .map_err(|e| format!("{}: not valid JSON: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let label = value
            .get("bench")
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .unwrap_or_else(|| stem.trim_start_matches("BENCH_").to_owned());
        let order = trailing_number(&label);
        let training_len = value.get("training_len").and_then(as_u64);
        let streams = value.get("streams").and_then(as_u64);
        let threads = value.get("threads").and_then(as_u64);
        Ok(BaselineFile {
            path: path.to_owned(),
            label,
            order,
            training_len,
            streams,
            threads,
            value,
        })
    }

    /// Looks up one (possibly dotted) metric as a float.
    pub fn metric(&self, name: &str) -> Option<f64> {
        let mut cursor = &self.value;
        for part in name.split('.') {
            cursor = cursor.get(part)?;
        }
        as_f64(cursor)
    }

    /// Whether two baselines measured the same sweep shape, making
    /// their wall times comparable. Shape is the full triple — an
    /// offline-eval baseline (`training_len`, no `streams`) is never
    /// comparable with a `loadgen` one (`streams`, no `training_len`),
    /// and two `loadgen` runs must agree on the stream count.
    pub fn comparable_with(&self, other: &BaselineFile) -> bool {
        self.training_len == other.training_len
            && self.streams == other.streams
            && self.threads == other.threads
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(n) => Some(*n as f64),
        Value::UInt(n) => Some(*n as f64),
        _ => None,
    }
}

/// PR-number ordering key: the value of the label's trailing digit
/// run (`pr10` → 10), or 0 when there is none (sorts first).
fn trailing_number(label: &str) -> u64 {
    let digits: String = label
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().unwrap_or(0)
}

/// Finds every `BENCH_*.json` directly inside `dir`, sorted by PR
/// number then label.
///
/// # Errors
///
/// Unreadable directory, or any individual file failing to parse.
pub fn discover(dir: impl AsRef<Path>) -> Result<Vec<BaselineFile>, String> {
    let dir = dir.as_ref();
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            files.push(BaselineFile::load(entry.path())?);
        }
    }
    sort_baselines(&mut files);
    Ok(files)
}

/// Sorts baselines into trajectory order (PR number, then label).
pub fn sort_baselines(files: &mut [BaselineFile]) {
    files.sort_by(|a, b| a.order.cmp(&b.order).then_with(|| a.label.cmp(&b.label)));
}

/// Renders the per-metric trajectory table: one column per baseline in
/// PR order, one row per tracked metric, `-` where a baseline predates
/// the metric.
pub fn render_trajectory(files: &[BaselineFile]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if files.is_empty() {
        out.push_str("perfhist: no BENCH_*.json baselines found\n");
        return out;
    }
    let _ = write!(out, "{:<28}", "metric");
    for f in files {
        let _ = write!(out, " {:>14}", f.label);
    }
    out.push('\n');
    let _ = write!(out, "{:<28}", "  (sweep)");
    for f in files {
        let shape = match (f.training_len, f.streams, f.threads) {
            (Some(len), _, Some(t)) => format!("{}k/t{t}", len / 1000),
            (None, Some(s), Some(t)) => format!("{}ks/t{t}", s / 1000),
            _ => "?".to_owned(),
        };
        let _ = write!(out, " {shape:>14}");
    }
    out.push('\n');
    for metric in TRACKED_METRICS {
        let _ = write!(out, "{metric:<28}");
        for f in files {
            match f.metric(metric) {
                Some(v) => {
                    let _ = write!(out, " {v:>14.2}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// The regression gate's verdict on one gated metric, over the pair of
/// baselines that metric selected for itself.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Fewer than two baselines: nothing to compare.
    TooFewBaselines,
    /// Older baselines carry this metric, but none of them measured
    /// the newest carrier's sweep shape; this metric abstains.
    NotComparable {
        /// The gated metric with no same-shape predecessor.
        metric: &'static str,
        /// The metric's newest carrier.
        newest: String,
        /// The newest older carrier (whose shape differs).
        previous: String,
    },
    /// Exactly one baseline carries this metric — it was introduced by
    /// that baseline and has nothing older to compare against, so it
    /// abstains until a second carrier is committed.
    Introduced {
        /// The freshly introduced gated metric.
        metric: &'static str,
        /// The introducing baseline's label.
        newest: String,
    },
    /// No committed baseline carries this metric at all; it abstains.
    NeverMeasured {
        /// The gated metric no baseline carries.
        metric: &'static str,
    },
    /// Newest is within the threshold of (or better than) its
    /// predecessor on this metric.
    Ok {
        /// The gated metric.
        metric: &'static str,
        /// Newest baseline's label.
        newest: String,
        /// Predecessor's label.
        previous: String,
        /// Newest-over-previous change, percent (sign is raw: a wall
        /// time improves negative, a throughput improves positive).
        change_percent: f64,
    },
    /// Newest regressed this metric beyond the threshold, in the
    /// metric's regression direction.
    Regression {
        /// The gated metric.
        metric: &'static str,
        /// Newest baseline's label.
        newest: String,
        /// Predecessor's label.
        previous: String,
        /// Newest-over-previous change, percent.
        change_percent: f64,
        /// The threshold that was exceeded, percent.
        threshold_percent: f64,
    },
}

impl Verdict {
    /// Whether CI should fail on this verdict.
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression { .. })
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            Verdict::TooFewBaselines => {
                "perfhist: fewer than two baselines; nothing to gate".to_owned()
            }
            Verdict::NotComparable {
                metric,
                newest,
                previous,
            } => format!(
                "perfhist: {metric} carriers {newest} and {previous} measured \
                 different sweeps; this metric abstains"
            ),
            Verdict::Introduced { metric, newest } => format!(
                "perfhist: {metric} first measured by {newest}; nothing older to \
                 compare, so this metric abstains"
            ),
            Verdict::NeverMeasured { metric } => {
                format!("perfhist: {metric} not measured by any baseline; this metric abstains")
            }
            Verdict::Ok {
                metric,
                newest,
                previous,
                change_percent,
            } => {
                format!("perfhist: OK — {metric} {newest} vs {previous}: {change_percent:+.2}%")
            }
            Verdict::Regression {
                metric,
                newest,
                previous,
                change_percent,
                threshold_percent,
            } => format!(
                "perfhist: REGRESSION — {metric} {newest} vs {previous}: \
                 {change_percent:+.2}% exceeds the {threshold_percent:.1}% threshold"
            ),
        }
    }
}

/// Gates every metric in [`GATED_METRICS`] over its own
/// newest-carrier pair, direction-aware: a wall time regresses when it
/// *grew* by more than `threshold_percent`, a throughput when it
/// *dropped* by more than `threshold_percent`.
///
/// Pair selection, per metric: the newest baseline carrying the metric
/// is compared against the newest *older* carrier with the same sweep
/// shape ([`BaselineFile::comparable_with`]), skipping interlopers
/// that don't carry it. A metric carried by no baseline, or only by
/// its introducing baseline, abstains — so a freshly committed
/// `loadgen` baseline neither fails on its new gauges nor un-gates the
/// established ones. Returns one verdict per gated metric; CI fails
/// when any verdict [`is_regression`](Verdict::is_regression).
pub fn gate(files: &[BaselineFile], threshold_percent: f64) -> Vec<Verdict> {
    if files.len() < 2 {
        return vec![Verdict::TooFewBaselines];
    }
    GATED_METRICS
        .iter()
        .map(|gated| gate_metric(gated, files, threshold_percent))
        .collect()
}

/// Whether `file` carries a usable value for the metric: present and,
/// for the *older* side of a pair, positive (a zero denominator cannot
/// anchor a change percentage).
fn carries(file: &BaselineFile, name: &str) -> bool {
    file.metric(name).is_some_and(|v| v > 0.0)
}

fn gate_metric(gated: &GatedMetric, files: &[BaselineFile], threshold_percent: f64) -> Verdict {
    let Some(newest_idx) = files.iter().rposition(|f| f.metric(gated.name).is_some()) else {
        return Verdict::NeverMeasured { metric: gated.name };
    };
    let newest = &files[newest_idx];
    let older = &files[..newest_idx];
    let Some(latest_carrier) = older.iter().rev().find(|f| carries(f, gated.name)) else {
        return Verdict::Introduced {
            metric: gated.name,
            newest: newest.label.clone(),
        };
    };
    let Some(previous) = older
        .iter()
        .rev()
        .find(|f| carries(f, gated.name) && f.comparable_with(newest))
    else {
        return Verdict::NotComparable {
            metric: gated.name,
            newest: newest.label.clone(),
            previous: latest_carrier.label.clone(),
        };
    };
    let new_value = newest.metric(gated.name).unwrap_or(0.0);
    let old_value = previous.metric(gated.name).unwrap_or(f64::INFINITY);
    let change_percent = (new_value - old_value) / old_value * 100.0;
    let regressed = match gated.direction {
        Direction::LowerIsBetter => change_percent > threshold_percent,
        Direction::HigherIsBetter => change_percent < -threshold_percent,
    };
    if regressed {
        Verdict::Regression {
            metric: gated.name,
            newest: newest.label.clone(),
            previous: previous.label.clone(),
            change_percent,
            threshold_percent,
        }
    } else {
        Verdict::Ok {
            metric: gated.name,
            newest: newest.label.clone(),
            previous: previous.label.clone(),
            change_percent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(label: &str, wall: f64, training_len: u64, threads: u64) -> BaselineFile {
        synthetic_with_stream(label, wall, None, training_len, threads)
    }

    fn synthetic_with_stream(
        label: &str,
        wall: f64,
        stream_eps: Option<f64>,
        training_len: u64,
        threads: u64,
    ) -> BaselineFile {
        let stream = match stream_eps {
            Some(eps) => format!(r#", "stream_events_per_sec": {eps}"#),
            None => String::new(),
        };
        let json = format!(
            r#"{{"bench": "{label}", "training_len": {training_len}, "threads": {threads},
                "wall_ms_trace_off": {wall}, "trace_dropped": 0{stream}}}"#
        );
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "detdiv-perfhist-test-{}-BENCH_{label}.json",
            std::process::id()
        ));
        std::fs::write(&path, json).unwrap();
        let parsed = BaselineFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        parsed
    }

    /// A loadgen-shaped baseline: serve gauges plus the `streams`
    /// sweep field, no `training_len` and no wall time.
    fn synthetic_serve(
        label: &str,
        eps: f64,
        p50_us: f64,
        p99_us: f64,
        streams: u64,
        threads: u64,
    ) -> BaselineFile {
        let json = format!(
            r#"{{"bench": "{label}", "streams": {streams}, "threads": {threads},
                "serve_events_per_sec": {eps}, "serve_p50_us": {p50_us},
                "serve_p99_us": {p99_us}}}"#
        );
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "detdiv-perfhist-test-serve-{}-BENCH_{label}.json",
            std::process::id()
        ));
        std::fs::write(&path, json).unwrap();
        let parsed = BaselineFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        parsed
    }

    fn any_regression(verdicts: &[Verdict]) -> bool {
        verdicts.iter().any(Verdict::is_regression)
    }

    #[test]
    fn baselines_sort_by_pr_number_not_lexically() {
        let mut files = vec![
            synthetic("pr10", 100.0, 60_000, 1),
            synthetic("pr4", 100.0, 60_000, 1),
            synthetic("pr3", 100.0, 60_000, 1),
        ];
        sort_baselines(&mut files);
        let labels: Vec<_> = files.iter().map(|f| f.label.as_str()).collect();
        assert_eq!(labels, ["pr3", "pr4", "pr10"]);
    }

    #[test]
    fn committed_baselines_parse_and_carry_the_gated_metric() {
        // The real BENCH files at the repository root are test fixtures
        // for the parser: they must stay loadable forever.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("repo root scans");
        assert!(
            files.len() >= 2,
            "at least pr3 and pr4 baselines are committed"
        );
        // Baselines come from different harnesses (`perfbaseline` vs
        // `loadgen`), so no single metric spans all of them — but every
        // committed file must carry at least one gated metric, and the
        // headline wall time must still have a carrier.
        let headline = GATED_METRICS[0].name;
        for f in &files {
            assert!(
                GATED_METRICS.iter().any(|g| f.metric(g.name).is_some()),
                "{} carries no gated metric",
                f.path.display()
            );
        }
        assert!(
            files.iter().any(|f| f.metric(headline).is_some()),
            "some baseline carries {headline}"
        );
        let table = render_trajectory(&files);
        assert!(table.contains("pr3"));
        assert!(table.contains("pr4"));
        assert!(table.contains(headline));
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond_it() {
        let files = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 1040.0, 60_000, 1),
        ];
        assert!(!any_regression(&gate(&files, 10.0)), "4% growth under 10%");
        let verdicts = gate(&files, 2.0);
        let regression = verdicts
            .iter()
            .find(|v| v.is_regression())
            .expect("4% growth over 2%");
        assert!(regression.render().contains("REGRESSION"));
        assert!(regression.render().contains("wall_ms_trace_off"));

        let improved = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 700.0, 60_000, 1),
        ];
        assert!(!any_regression(&gate(&improved, 10.0)), "speedups pass");
    }

    #[test]
    fn throughput_gates_in_the_opposite_direction() {
        // Wall time holds steady while streaming throughput collapses:
        // the HigherIsBetter direction must flag the *drop*.
        let dropped = vec![
            synthetic_with_stream("pr1", 1000.0, Some(2_000_000.0), 60_000, 1),
            synthetic_with_stream("pr2", 1000.0, Some(1_000_000.0), 60_000, 1),
        ];
        let verdicts = gate(&dropped, 25.0);
        let regression = verdicts
            .iter()
            .find(|v| v.is_regression())
            .expect("a 50% throughput drop trips the gate");
        assert!(
            regression.render().contains("stream_events_per_sec"),
            "{}",
            regression.render()
        );

        // A throughput *gain* of the same magnitude passes — the raw
        // change percent is large and positive, which LowerIsBetter
        // logic would misread as a regression.
        let gained = vec![
            synthetic_with_stream("pr1", 1000.0, Some(1_000_000.0), 60_000, 1),
            synthetic_with_stream("pr2", 1000.0, Some(2_000_000.0), 60_000, 1),
        ];
        assert!(!any_regression(&gate(&gained, 25.0)), "speedups pass");

        // A gauge first measured by the newest baseline abstains on
        // that metric only: it was introduced, nothing older carries it.
        let gap = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic_with_stream("pr2", 1000.0, Some(2_000_000.0), 60_000, 1),
        ];
        let verdicts = gate(&gap, 25.0);
        assert!(!any_regression(&verdicts));
        assert!(
            verdicts.iter().any(|v| matches!(
                v,
                Verdict::Introduced {
                    metric: "stream_events_per_sec",
                    ..
                }
            )),
            "{verdicts:?}"
        );
    }

    #[test]
    fn gate_abstains_on_shape_mismatch_and_missing_data() {
        // Shape mismatch is now per metric: the wall time abstains with
        // its own NotComparable verdict (naming the nearest carrier it
        // could not use), while metrics no file carries abstain as
        // NeverMeasured. Nothing fails.
        let files = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 9000.0, 120_000, 1),
        ];
        let verdicts = gate(&files, 10.0);
        assert!(!any_regression(&verdicts));
        assert_eq!(
            verdicts[0],
            Verdict::NotComparable {
                metric: "wall_ms_trace_off",
                newest: "pr2".to_owned(),
                previous: "pr1".to_owned(),
            },
            "different training lengths are not comparable"
        );
        for v in &verdicts[1..] {
            assert!(
                matches!(v, Verdict::NeverMeasured { .. }),
                "uncarried metrics abstain: {v:?}"
            );
        }
        assert_eq!(
            gate(&files[..1], 10.0),
            vec![Verdict::TooFewBaselines],
            "a single baseline gates nothing"
        );
        assert_eq!(gate(&[], 10.0), vec![Verdict::TooFewBaselines]);
    }

    #[test]
    fn introduced_metric_abstains_without_ungating_the_rest() {
        // The satellite fix in one scene: pr9 is a loadgen baseline
        // carrying only the serve gauges. The serve gauges abstain as
        // freshly introduced — and the wall-time gate must KEEP
        // comparing pr7 vs pr8 (its own newest carrier pair), catching
        // the regression pr9's arrival would previously have hidden.
        let files = vec![
            synthetic("pr7", 1000.0, 60_000, 1),
            synthetic("pr8", 2000.0, 60_000, 1),
            synthetic_serve("pr9", 1_500_000.0, 40.0, 900.0, 1_000_000, 1),
        ];
        let verdicts = gate(&files, 25.0);
        assert!(
            matches!(
                &verdicts[0],
                Verdict::Regression { metric: "wall_ms_trace_off", newest, previous, .. }
                    if newest == "pr8" && previous == "pr7"
            ),
            "the wall gate still fires on its own carrier pair: {verdicts:?}"
        );
        assert!(verdicts.iter().any(|v| matches!(
            v,
            Verdict::Introduced {
                metric: "serve_events_per_sec",
                ..
            }
        )));
        assert!(verdicts.iter().any(|v| matches!(
            v,
            Verdict::Introduced {
                metric: "serve_p99_us",
                ..
            }
        )));

        // A second loadgen baseline at the same shape arms the serve
        // gates for real: a throughput drop and a p99 growth both trip.
        let regressed = vec![
            synthetic_serve("pr9", 1_500_000.0, 40.0, 900.0, 1_000_000, 1),
            synthetic_serve("pr10", 700_000.0, 40.0, 2000.0, 1_000_000, 1),
        ];
        let verdicts = gate(&regressed, 25.0);
        assert!(verdicts.iter().any(|v| matches!(
            v,
            Verdict::Regression {
                metric: "serve_events_per_sec",
                ..
            }
        )));
        assert!(verdicts.iter().any(|v| matches!(
            v,
            Verdict::Regression {
                metric: "serve_p99_us",
                ..
            }
        )));
        // ...while a loadgen run at a different stream count abstains:
        // the sweep shapes are not comparable.
        let reshaped = vec![
            synthetic_serve("pr9", 1_500_000.0, 40.0, 900.0, 1_000_000, 1),
            synthetic_serve("pr10", 700_000.0, 40.0, 2000.0, 250_000, 1),
        ];
        assert!(!any_regression(&gate(&reshaped, 25.0)));
    }

    #[test]
    fn pair_selection_skips_non_carriers_and_incomparable_shapes() {
        // pr2 measured a different sweep; pr3's wall time compares
        // against pr1 (the newest older carrier at the same shape),
        // not against its incomparable neighbor.
        let files = vec![
            synthetic("pr1", 1000.0, 60_000, 1),
            synthetic("pr2", 9000.0, 120_000, 1),
            synthetic("pr3", 1050.0, 60_000, 1),
        ];
        let verdicts = gate(&files, 10.0);
        assert!(
            matches!(
                &verdicts[0],
                Verdict::Ok { metric: "wall_ms_trace_off", newest, previous, .. }
                    if newest == "pr3" && previous == "pr1"
            ),
            "{verdicts:?}"
        );
    }

    #[test]
    fn dotted_metrics_walk_nested_objects() {
        let json = r#"{"bench": "prX", "cache": {"hit_rate_percent": 60.25}}"#;
        let path = std::env::temp_dir().join(format!(
            "detdiv-perfhist-dotted-{}.json",
            std::process::id()
        ));
        std::fs::write(&path, json).unwrap();
        let f = BaselineFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(f.metric("cache.hit_rate_percent"), Some(60.25));
        assert_eq!(f.metric("cache.absent"), None);
        assert_eq!(f.metric("absent.whatever"), None);
    }
}

//! CLI contract tests for the `perfhist` binary: the trajectory table,
//! the pass path, and — the part CI depends on — a demonstrable
//! non-zero exit on a synthetic regressed baseline pair.

use std::path::PathBuf;
use std::process::Command;

fn perfhist() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perfhist"))
}

/// A scratch directory holding synthetic `BENCH_*.json` baselines.
fn fixture_dir(tag: &str, baselines: &[(&str, f64)]) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("detdiv-perfhist-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (label, wall) in baselines {
        let json = format!(
            r#"{{"bench": "{label}", "training_len": 60000, "threads": 1,
                "wall_ms_trace_off": {wall}, "trace_events": 800, "trace_dropped": 0}}"#
        );
        std::fs::write(dir.join(format!("BENCH_{label}.json")), json).unwrap();
    }
    dir
}

#[test]
fn regressed_pair_exits_nonzero_with_diagnostic() {
    let dir = fixture_dir("regress", &[("pr1", 1000.0), ("pr2", 2500.0)]);
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !output.status.success(),
        "a 150% wall-time regression must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("REGRESSION") && stderr.contains("pr2"),
        "diagnostic names the verdict and the offender: {stderr:?}"
    );
}

#[test]
fn improving_pair_passes_and_prints_the_trajectory() {
    let dir = fixture_dir("improve", &[("pr1", 1000.0), ("pr2", 800.0)]);
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        output.status.success(),
        "a speed-up passes: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("wall_ms_trace_off"), "table rows: {stdout}");
    assert!(
        stdout.contains("pr1") && stdout.contains("pr2"),
        "table columns in PR order: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("OK"), "verdict rendered: {stderr}");
}

#[test]
fn committed_repo_baselines_parse_end_to_end() {
    // The repo root relative to this crate; the committed BENCH files
    // must always survive the binary's full parse-render-gate path.
    // The huge threshold makes this a parse test, not a perf test —
    // committed baselines may come from different machines.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = perfhist()
        .args(["--dir", root.to_str().unwrap(), "--threshold", "100000"])
        .output()
        .expect("spawn perfhist");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("pr3") && stdout.contains("pr4"));
}

#[test]
fn explicit_file_arguments_bypass_discovery() {
    let dir = fixture_dir("files", &[("pr7", 500.0), ("pr8", 510.0)]);
    let a = dir.join("BENCH_pr7.json");
    let b = dir.join("BENCH_pr8.json");
    let output = perfhist()
        .args([
            b.to_str().unwrap(),
            a.to_str().unwrap(),
            "--threshold",
            "25",
        ])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    let pr7 = stdout.find("pr7").expect("pr7 in table");
    let pr8 = stdout.find("pr8").expect("pr8 in table");
    assert!(
        pr7 < pr8,
        "files are sorted into PR order regardless of argv order"
    );
}

#[test]
fn streaming_gauge_absent_from_the_older_baseline_abstains() {
    // PR 7 baselines carry the streaming throughput gauge; older ones
    // do not. The trajectory must render the new row (with a gap for
    // the old baseline), and the throughput gate must abstain — not
    // fail — on the metric it cannot compare.
    let dir =
        std::env::temp_dir().join(format!("detdiv-perfhist-cli-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("BENCH_pr1.json"),
        r#"{"bench": "pr1", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 1000.0, "trace_events": 800, "trace_dropped": 0}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("BENCH_pr2.json"),
        r#"{"bench": "pr2", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 990.0, "trace_events": 800, "trace_dropped": 0,
            "stream_events": 60000, "stream_events_per_sec": 2500000.0}"#,
    )
    .unwrap();
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        output.status.success(),
        "an absent streaming gauge must abstain, not fail: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("stream_events_per_sec"),
        "streaming throughput row rendered: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("abstains"),
        "the abstention is visible in the verdicts: {stderr}"
    );
}

#[test]
fn streaming_throughput_regression_exits_nonzero() {
    // Both baselines carry the gauge and wall time holds steady, but
    // throughput halves: the direction-aware gate must fail on the
    // *drop* (the raw change percent is negative, which the wall-time
    // rule would wave through).
    let dir = std::env::temp_dir().join(format!(
        "detdiv-perfhist-cli-streamregress-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("BENCH_pr1.json"),
        r#"{"bench": "pr1", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 1000.0, "trace_events": 800, "trace_dropped": 0,
            "stream_events": 60000, "stream_events_per_sec": 2500000.0}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("BENCH_pr2.json"),
        r#"{"bench": "pr2", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 1000.0, "trace_events": 800, "trace_dropped": 0,
            "stream_events": 60000, "stream_events_per_sec": 1250000.0}"#,
    )
    .unwrap();
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        !output.status.success(),
        "a 50% throughput drop must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("REGRESSION") && stderr.contains("stream_events_per_sec"),
        "diagnostic names the regressed metric: {stderr:?}"
    );
    assert!(
        stderr.contains("wall_ms_trace_off") && stderr.contains("OK"),
        "the healthy metric still renders its own verdict: {stderr:?}"
    );
}

#[test]
fn loadgen_baseline_introducing_serve_metrics_abstains_without_ungating_wall() {
    // A loadgen-shaped BENCH_pr9.json (serve gauges + `streams`, no
    // wall time) lands as the newest baseline. Two promises at once:
    // its brand-new metrics abstain visibly instead of failing, and
    // the wall-time gate keeps comparing ITS newest carrier pair
    // (pr7 vs pr8) — where a planted 100% regression must still fail
    // the run.
    let dir = std::env::temp_dir().join(format!(
        "detdiv-perfhist-cli-loadgen-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("BENCH_pr7.json"),
        r#"{"bench": "pr7", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 1000.0, "trace_events": 800, "trace_dropped": 0}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("BENCH_pr8.json"),
        r#"{"bench": "pr8", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 2000.0, "trace_events": 800, "trace_dropped": 0}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("BENCH_pr9.json"),
        r#"{"bench": "pr9", "streams": 1000000, "threads": 4, "shards": 64,
            "serve_events_per_sec": 1500000.0, "serve_p50_us": 40.0,
            "serve_p99_us": 900.0}"#,
    )
    .unwrap();
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    assert!(
        !output.status.success(),
        "the pr7→pr8 wall regression must still fail with pr9 newest"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("REGRESSION") && stderr.contains("wall_ms_trace_off"),
        "the established gate is not silently disarmed: {stderr:?}"
    );
    assert!(
        stderr.contains("serve_events_per_sec")
            && stderr.contains("serve_p99_us")
            && stderr.contains("abstains"),
        "the introduced serve gauges abstain visibly: {stderr:?}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("serve_events_per_sec") && stdout.contains("serve_p99_us"),
        "serve gauges join the trajectory table: {stdout}"
    );

    // Fixing the wall regression turns the same directory green: the
    // introduced gauges alone never fail a run.
    std::fs::write(
        dir.join("BENCH_pr8.json"),
        r#"{"bench": "pr8", "training_len": 60000, "threads": 1,
            "wall_ms_trace_off": 1010.0, "trace_events": 800, "trace_dropped": 0}"#,
    )
    .unwrap();
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        output.status.success(),
        "introduced metrics abstain, they never fail: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn resident_bytes_ceiling_regression_exits_nonzero() {
    // Two overload-shaped baselines (same streams/threads shape): the
    // resident-state peak doubling past the threshold must fail the
    // LowerIsBetter gate, while the tracked-but-ungated shed rate only
    // joins the trajectory table.
    let dir = std::env::temp_dir().join(format!(
        "detdiv-perfhist-cli-resident-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("BENCH_pr9.json"),
        r#"{"bench": "pr9", "streams": 2000, "threads": 1, "shards": 16,
            "serve_events_per_sec": 1500000.0, "serve_p50_us": 40.0,
            "serve_p99_us": 900.0, "guard_shed_rate": 0.38,
            "serve_resident_bytes_peak": 65536}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("BENCH_pr10.json"),
        r#"{"bench": "pr10", "streams": 2000, "threads": 1, "shards": 16,
            "serve_events_per_sec": 1500000.0, "serve_p50_us": 40.0,
            "serve_p99_us": 900.0, "guard_shed_rate": 0.39,
            "serve_resident_bytes_peak": 131072}"#,
    )
    .unwrap();
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    assert!(
        !output.status.success(),
        "a doubled resident-bytes ceiling must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("REGRESSION") && stderr.contains("serve_resident_bytes_peak"),
        "diagnostic names the regressed ceiling: {stderr:?}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("guard_shed_rate"),
        "the shed rate is tracked in the trajectory: {stdout}"
    );

    // An equal-or-lower ceiling passes: the gate is a ceiling, not a
    // fingerprint.
    std::fs::write(
        dir.join("BENCH_pr10.json"),
        r#"{"bench": "pr10", "streams": 2000, "threads": 1, "shards": 16,
            "serve_events_per_sec": 1500000.0, "serve_p50_us": 40.0,
            "serve_p99_us": 900.0, "guard_shed_rate": 0.39,
            "serve_resident_bytes_peak": 65536}"#,
    )
    .unwrap();
    let output = perfhist()
        .args(["--dir", dir.to_str().unwrap(), "--threshold", "25"])
        .output()
        .expect("spawn perfhist");
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        output.status.success(),
        "a held ceiling passes: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn unreadable_input_fails_with_diagnostic() {
    let output = perfhist()
        .args(["/nonexistent/BENCH_nope.json"])
        .output()
        .expect("spawn perfhist");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("BENCH_nope"), "names the file: {stderr}");
}

//! End-to-end gate for `regenerate --trace` / `DETDIV_TRACE`: the
//! exported file must be valid Chrome trace-event JSON with per-tid
//! monotonic timestamps and balanced B/E stacks, at one worker and at
//! four — and tracing must be inert when not requested.
//!
//! Validation runs through the `tracecheck` binary (the same checker
//! the CI trace gate uses), so this test also pins `tracecheck`'s CLI
//! contract.

use std::path::PathBuf;
use std::process::Command;

fn regenerate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regenerate"))
}

fn tracecheck() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracecheck"))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "detdiv_trace_gate_{tag}_{}.json",
        std::process::id()
    ))
}

/// Runs a reduced parallel experiment (`fig5`, a full coverage-grid
/// fan-out) with tracing armed at the given width, returning the trace
/// path.
fn traced_run(tag: &str, threads: &str) -> PathBuf {
    let path = temp_path(tag);
    let output = regenerate()
        .env("DETDIV_THREADS", threads)
        .env_remove("DETDIV_TRACE")
        .args([
            "--experiment",
            "fig5",
            "--training-len",
            "20000",
            "--log",
            "off",
            "--trace",
        ])
        .arg(&path)
        .output()
        .expect("spawn regenerate");
    assert!(
        output.status.success(),
        "regenerate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        path.is_file(),
        "trace file must exist at {}",
        path.display()
    );
    path
}

fn check(path: &PathBuf, extra: &[&str]) {
    let output = tracecheck()
        .arg(path)
        .args(extra)
        .output()
        .expect("spawn tracecheck");
    assert!(
        output.status.success(),
        "tracecheck rejected {}: {}",
        path.display(),
        String::from_utf8_lossy(&output.stderr)
    );
}

/// One worker: a single-threaded run exports a valid, balanced trace.
#[test]
fn traced_run_at_one_thread_validates() {
    let path = traced_run("t1", "1");
    check(&path, &[]);
    let _ = std::fs::remove_file(&path);
}

/// Four workers: still valid and balanced, and the pool workers are
/// named `par-worker-N` in the thread metadata.
#[test]
fn traced_run_at_four_threads_validates_with_worker_names() {
    let path = traced_run("t4", "4");
    check(
        &path,
        &[
            "--expect-thread",
            "par-worker-1",
            "--expect-thread",
            "par-worker-2",
        ],
    );
    let raw = std::fs::read_to_string(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    // The coverage grid's cells ride along as X slices with their
    // (detector, window, anomaly_size) args.
    assert!(raw.contains("\"name\":\"cell\""), "grid cells traced");
    assert!(
        raw.contains("\"detector\":\"stide\""),
        "cell args carry the detector"
    );
    assert!(
        raw.contains("\"anomaly_size\""),
        "cell args carry the anomaly size"
    );
}

/// `DETDIV_TRACE` alone (no `--trace` flag) arms the recorder and
/// writes the file.
#[test]
fn env_var_arms_tracing_without_the_flag() {
    let path = temp_path("env");
    let output = regenerate()
        .env("DETDIV_THREADS", "2")
        .env("DETDIV_TRACE", &path)
        .args(["--experiment", "fig7", "--log", "off"])
        .output()
        .expect("spawn regenerate");
    assert!(
        output.status.success(),
        "regenerate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(path.is_file(), "DETDIV_TRACE must produce a trace file");
    check(&path, &[]);
    let _ = std::fs::remove_file(&path);
}

/// Without `--trace` and without `DETDIV_TRACE`, no trace file appears
/// and stderr never mentions one.
#[test]
fn disarmed_run_emits_no_trace_file() {
    let path = temp_path("off");
    let output = regenerate()
        .env("DETDIV_THREADS", "1")
        .env_remove("DETDIV_TRACE")
        .args(["--experiment", "fig7", "--log", "off"])
        .output()
        .expect("spawn regenerate");
    assert!(output.status.success());
    assert!(!path.exists(), "no trace file may be written when disarmed");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !stderr.contains("trace events"),
        "disarmed run must not report a trace export: {stderr:?}"
    );
}

/// An unwritable `--trace` destination fails fast, before any
/// computation (same preflight contract as `--json`).
#[test]
fn unwritable_trace_destination_fails_fast() {
    let target = std::env::temp_dir()
        .join(format!("detdiv_trace_gate_missing_{}", std::process::id()))
        .join("no/such/dir/trace.json");
    let output = regenerate()
        .args(["--log", "off", "--trace"])
        .arg(&target)
        .output()
        .expect("spawn regenerate");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--trace") && stderr.contains("does not exist"),
        "diagnostic should name the missing directory: {stderr:?}"
    );
}

/// `tracecheck` rejects garbage: invalid JSON and unbalanced traces
/// both exit non-zero with a diagnostic.
#[test]
fn tracecheck_rejects_invalid_and_unbalanced_input() {
    let bad_json = temp_path("badjson");
    std::fs::write(&bad_json, "{not json").unwrap();
    let output = tracecheck()
        .arg(&bad_json)
        .output()
        .expect("spawn tracecheck");
    let _ = std::fs::remove_file(&bad_json);
    assert!(!output.status.success(), "invalid JSON must be rejected");

    let unbalanced = temp_path("unbalanced");
    std::fs::write(
        &unbalanced,
        r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2.0,"pid":1,"tid":1}
        ]}"#,
    )
    .unwrap();
    let output = tracecheck()
        .arg(&unbalanced)
        .output()
        .expect("spawn tracecheck");
    let _ = std::fs::remove_file(&unbalanced);
    assert!(!output.status.success(), "mismatched B/E must be rejected");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("mismatched nesting"), "{stderr:?}");
}

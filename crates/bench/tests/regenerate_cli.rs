//! CLI contract tests for the `regenerate` binary.
//!
//! These run the compiled binary (via `CARGO_BIN_EXE_regenerate`) and
//! pin down the behaviours a scripted caller relies on:
//!
//! * an unwritable `--json` destination fails *fast* (before any
//!   synthesis) with a non-zero exit code and a stderr diagnostic;
//! * invalid flags (`--threads 0`, unknown experiments) are rejected
//!   with diagnostics even when logging is off;
//! * a corpus-free experiment runs to success under an explicit
//!   `--threads` override.

use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn regenerate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regenerate"))
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// `--json` into a nonexistent directory must exit non-zero with a
/// diagnostic naming the directory — and it must do so quickly, i.e.
/// before the corpus is synthesized (a full run takes minutes; the
/// preflight must fail in well under 30 seconds even on a loaded CI
/// machine).
#[test]
fn json_into_missing_directory_fails_fast_with_diagnostic() {
    let target = std::env::temp_dir()
        .join(format!("detdiv_cli_missing_{}", std::process::id()))
        .join("definitely/not/here/out.json");
    let started = Instant::now();
    let output = regenerate()
        .args(["--log", "off", "--json"])
        .arg(&target)
        .output()
        .expect("spawn regenerate");
    let elapsed = started.elapsed();
    assert!(
        !output.status.success(),
        "expected failure, got {:?}",
        output.status
    );
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("does not exist"),
        "diagnostic should say the directory does not exist: {stderr:?}"
    );
    assert!(
        stderr.contains("definitely/not/here"),
        "diagnostic should name the directory: {stderr:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "preflight should fail before any computation, took {elapsed:?}"
    );
}

/// `--json` pointing at a directory (not a file path) is rejected.
#[test]
fn json_pointing_at_a_directory_is_rejected() {
    let dir = std::env::temp_dir().join(format!("detdiv_cli_isdir_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let output = regenerate()
        .args(["--log", "off", "--json"])
        .arg(&dir)
        .output()
        .expect("spawn regenerate");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("is a directory"),
        "diagnostic should say the target is a directory: {stderr:?}"
    );
}

/// `--threads 0` is an argument error, reported even with logging off.
#[test]
fn zero_threads_is_rejected_with_a_diagnostic() {
    let output = regenerate()
        .args(["--log", "off", "--threads", "0"])
        .output()
        .expect("spawn regenerate");
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("--threads") && stderr.contains("at least 1"),
        "diagnostic should explain the constraint: {stderr:?}"
    );
}

/// Unknown experiment ids fail with a diagnostic under `--log off`
/// (the error path must not depend on the structured logger).
#[test]
fn unknown_experiment_fails_with_diagnostic_under_log_off() {
    let output = regenerate()
        .args(["--log", "off", "--experiment", "fig99"])
        .output()
        .expect("spawn regenerate");
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("fig99"),
        "diagnostic should name the unknown experiment: {stderr:?}"
    );
}

/// A corpus-free experiment succeeds under an explicit thread override.
#[test]
fn corpus_free_experiment_succeeds_with_thread_override() {
    let output = regenerate()
        .args(["--log", "off", "--experiment", "fig7", "--threads", "2"])
        .output()
        .expect("spawn regenerate");
    assert!(
        output.status.success(),
        "fig7 should succeed: stderr={:?}",
        stderr_of(&output)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("Sim"),
        "fig7 output should include the similarity table: {stdout:?}"
    );
}

/// `--serve` on a port that is already taken must fail fast — the bind
/// happens during preflight, before any synthesis.
#[test]
fn serve_on_taken_port_fails_fast_with_diagnostic() {
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").expect("bind blocker");
    let taken = blocker.local_addr().unwrap().to_string();
    let started = Instant::now();
    let output = regenerate()
        .args(["--log", "off", "--serve", &taken])
        .output()
        .expect("spawn regenerate");
    let elapsed = started.elapsed();
    assert!(!output.status.success(), "taken port must fail the run");
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("cannot arm --serve") && stderr.contains(&taken),
        "diagnostic names the flag and the address: {stderr:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "serve preflight should fail before any computation, took {elapsed:?}"
    );
}

/// A served corpus-free run succeeds, echoes the bound address on
/// stderr (the line CI parses for the ephemeral port), and still
/// prints its normal output.
#[test]
fn serve_run_echoes_bound_address_and_succeeds() {
    let output = regenerate()
        .args([
            "--log",
            "off",
            "--experiment",
            "fig7",
            "--serve",
            "127.0.0.1:0",
        ])
        .output()
        .expect("spawn regenerate");
    assert!(
        output.status.success(),
        "served fig7 should succeed: stderr={:?}",
        stderr_of(&output)
    );
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("serving live metrics on http://127.0.0.1:"),
        "bound address echoed for scripted scrapers: {stderr:?}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Sim"), "fig7 output intact: {stdout:?}");
}

/// A malformed `DETDIV_SERVE` is caught by the environment preflight
/// with a diagnostic naming the variable.
#[test]
fn malformed_detdiv_serve_env_is_rejected() {
    let output = regenerate()
        .args(["--log", "off", "--experiment", "fig7"])
        .env("DETDIV_SERVE", "not a socket")
        .output()
        .expect("spawn regenerate");
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("DETDIV_SERVE"),
        "diagnostic names the variable: {stderr:?}"
    );
}

/// A malformed `DETDIV_SCOPE_INTERVAL_MS` is likewise rejected up
/// front, even when `--serve` is not armed.
#[test]
fn malformed_scope_interval_env_is_rejected() {
    let output = regenerate()
        .args(["--log", "off", "--experiment", "fig7"])
        .env("DETDIV_SCOPE_INTERVAL_MS", "0")
        .output()
        .expect("spawn regenerate");
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("DETDIV_SCOPE_INTERVAL_MS"),
        "diagnostic names the variable: {stderr:?}"
    );
}

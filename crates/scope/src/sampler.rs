//! Background time-series sampler over the obs counter registry.
//!
//! A [`Sampler`] owns one thread that wakes at a fixed interval,
//! exports the obs counters, and appends the absolute value of every
//! selected counter to a fixed-capacity ring buffer (oldest samples
//! are evicted). From the two newest samples of each series it derives
//! an events-per-second rate gauge; the synthetic `scope/events`
//! series aggregates all `*/windows_scored` counters so the headline
//! `detdiv_events_per_sec` gauge tracks scoring throughput.
//!
//! Determinism contract: the sampler only ever **reads** the registry.
//! Every tick first checks [`detdiv_obs::telemetry_enabled`], so under
//! `DETDIV_LOG=off` — the mode the byte-determinism CI gates run in —
//! it records nothing at all, exactly like the PR 3 `busy_nanos`
//! gauges. Sampled data is wall-clock-dependent by construction and is
//! surfaced only through channels that are empty when no sampler is
//! armed (`/metrics`, the snapshot `timeseries` section).

use detdiv_obs::SeriesSummary;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Name of the synthetic aggregate series: the sum of every
/// `*/windows_scored` counter at each tick.
pub const EVENTS_SERIES: &str = "scope/events";

/// Environment variable overriding the sampling interval, in
/// milliseconds (positive integer).
pub const INTERVAL_ENV: &str = "DETDIV_SCOPE_INTERVAL_MS";

/// Configuration for a [`Sampler`].
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Tick interval (default 250 ms; override via
    /// `DETDIV_SCOPE_INTERVAL_MS`).
    pub interval: Duration,
    /// Ring capacity per series: the newest `capacity` samples are
    /// kept (default 512 — two minutes of history at the default
    /// interval).
    pub capacity: usize,
    /// Registry-name prefixes selecting which counters are sampled.
    pub prefixes: Vec<String>,
    /// Upper bound on distinct sampled series; once reached, counters
    /// not already tracked are ignored (protects the ring memory from
    /// unbounded registry growth).
    pub max_series: usize,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: Duration::from_millis(250),
            capacity: 512,
            prefixes: vec![
                "detector/".to_owned(),
                "cache/".to_owned(),
                "eval/".to_owned(),
                "synth/".to_owned(),
                "par/pool/".to_owned(),
                "resil/".to_owned(),
            ],
            max_series: 64,
        }
    }
}

impl SamplerConfig {
    /// The default config with the interval taken from
    /// `DETDIV_SCOPE_INTERVAL_MS` when set.
    ///
    /// # Errors
    ///
    /// A diagnostic when the variable is set but not a positive
    /// integer.
    pub fn from_env() -> Result<SamplerConfig, String> {
        let mut config = SamplerConfig::default();
        if let Ok(raw) = std::env::var(INTERVAL_ENV) {
            let ms: u64 = raw
                .parse()
                .ok()
                .filter(|&ms| ms > 0)
                .ok_or_else(|| format!("{INTERVAL_ENV}={raw:?} is not a positive integer"))?;
            config.interval = Duration::from_millis(ms);
        }
        Ok(config)
    }
}

/// One series' ring plus the bookkeeping its rate derives from.
#[derive(Debug, Default)]
struct Series {
    samples: VecDeque<u64>,
    rate_per_sec: f64,
}

/// Shared state between the sampling thread, the exposition server,
/// and the snapshot timeseries source.
#[derive(Debug)]
pub struct SamplerState {
    series: Mutex<BTreeMap<String, Series>>,
    ticks: AtomicU64,
    last_tick: Mutex<Option<Instant>>,
    previous_tick_at: Mutex<Option<Instant>>,
    interval_ms: u64,
    capacity: usize,
}

impl SamplerState {
    fn new(config: &SamplerConfig) -> SamplerState {
        SamplerState {
            series: Mutex::new(BTreeMap::new()),
            ticks: AtomicU64::new(0),
            last_tick: Mutex::new(None),
            previous_tick_at: Mutex::new(None),
            interval_ms: config.interval.as_millis().max(1) as u64,
            capacity: config.capacity.max(2),
        }
    }

    /// Takes one sample of every selected counter. Reads the registry,
    /// never writes it; records nothing when telemetry is disabled.
    pub fn tick(&self, config: &SamplerConfig) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        if !detdiv_obs::telemetry_enabled() {
            return;
        }
        let now = Instant::now();
        let elapsed = {
            let mut last = self.last_tick.lock().expect("sampler clock poisoned");
            let elapsed = last.map(|t| now.duration_since(t));
            let mut previous = self
                .previous_tick_at
                .lock()
                .expect("sampler clock poisoned");
            *previous = *last;
            *last = Some(now);
            elapsed
        };
        let counters = detdiv_obs::export_counters();
        let mut events = 0u64;
        let mut map = self.series.lock().expect("sampler series poisoned");
        for (name, value) in &counters {
            if name.ends_with("/windows_scored") {
                events += value;
            }
            if !config.prefixes.iter().any(|p| name.starts_with(p)) {
                continue;
            }
            if !map.contains_key(name) && map.len() >= config.max_series {
                continue;
            }
            Self::push(&mut map, name, *value, elapsed, self.capacity);
        }
        Self::push(&mut map, EVENTS_SERIES, events, elapsed, self.capacity);
    }

    fn push(
        map: &mut BTreeMap<String, Series>,
        name: &str,
        value: u64,
        elapsed: Option<Duration>,
        capacity: usize,
    ) {
        let series = map.entry(name.to_owned()).or_default();
        let rate = match (series.samples.back(), elapsed) {
            (Some(&previous), Some(elapsed)) if value >= previous && !elapsed.is_zero() => {
                (value - previous) as f64 / elapsed.as_secs_f64()
            }
            _ => {
                // First sample, counter went backwards (obs::reset
                // between ticks), or a degenerate clock: declare no
                // rate rather than a wild one, and restart the ring on
                // a reset so samples stay monotone.
                if series.samples.back().is_some_and(|&p| value < p) {
                    series.samples.clear();
                }
                0.0
            }
        };
        series.rate_per_sec = rate;
        series.samples.push_back(value);
        while series.samples.len() > capacity {
            series.samples.pop_front();
        }
    }

    /// Number of sampling ticks taken so far (including disabled ones).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Number of distinct series currently tracked.
    pub fn series_count(&self) -> usize {
        self.series.lock().expect("sampler series poisoned").len()
    }

    /// Age of the newest recorded sample, when any exists.
    pub fn last_sample_age(&self) -> Option<Duration> {
        self.last_tick
            .lock()
            .expect("sampler clock poisoned")
            .map(|t| t.elapsed())
    }

    /// The current per-series rate gauges, in series-name order.
    pub fn rates(&self) -> Vec<(String, f64)> {
        self.series
            .lock()
            .expect("sampler series poisoned")
            .iter()
            .map(|(name, s)| (name.clone(), s.rate_per_sec))
            .collect()
    }

    /// The aggregate events-per-second rate (0 before two ticks).
    pub fn events_per_sec(&self) -> f64 {
        self.series
            .lock()
            .expect("sampler series poisoned")
            .get(EVENTS_SERIES)
            .map(|s| s.rate_per_sec)
            .unwrap_or(0.0)
    }

    /// Freezes every series into the serializable snapshot form, in
    /// series-name order. This is what the obs timeseries source hook
    /// returns, and what `DETDIV_SCOPE_DUMP` persists.
    pub fn summaries(&self) -> Vec<SeriesSummary> {
        self.series
            .lock()
            .expect("sampler series poisoned")
            .iter()
            .map(|(name, s)| SeriesSummary {
                name: name.clone(),
                interval_ms: self.interval_ms,
                samples: s.samples.iter().copied().collect(),
                rate_per_sec: s.rate_per_sec,
            })
            .collect()
    }
}

/// Handle to the background sampling thread.
#[derive(Debug)]
pub struct Sampler {
    state: Arc<SamplerState>,
    config: SamplerConfig,
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts the sampling thread. The first tick happens immediately,
    /// so even runs shorter than one interval record a sample.
    pub fn start(config: SamplerConfig) -> Sampler {
        let state = Arc::new(SamplerState::new(&config));
        let stop: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
        let thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("detdiv-scope-sampler".to_owned())
                .spawn(move || {
                    let (flag, signal) = &*stop;
                    loop {
                        state.tick(&config);
                        let guard = flag.lock().expect("sampler stop flag poisoned");
                        if *guard {
                            break;
                        }
                        let (guard, _timeout) = signal
                            .wait_timeout(guard, config.interval)
                            .expect("sampler stop flag poisoned");
                        if *guard {
                            break;
                        }
                    }
                })
                .expect("spawn sampler thread")
        };
        Sampler {
            state,
            config,
            stop,
            thread: Some(thread),
        }
    }

    /// The shared state (for the server and the snapshot source).
    pub fn state(&self) -> Arc<SamplerState> {
        Arc::clone(&self.state)
    }

    /// Stops the thread promptly and joins it. The final tick taken on
    /// the way out means the ring always includes end-of-run values.
    pub fn shutdown(mut self) {
        self.signal_stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        // One closing sample after the thread is gone, so whatever ran
        // between the last tick and shutdown is represented.
        self.state.tick(&self.config);
    }

    fn signal_stop(&self) {
        let (flag, signal) = &*self.stop;
        *flag.lock().expect("sampler stop flag poisoned") = true;
        signal.notify_all();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(prefix: &str) -> SamplerConfig {
        SamplerConfig {
            interval: Duration::from_millis(5),
            capacity: 4,
            prefixes: vec![prefix.to_owned()],
            max_series: 8,
        }
    }

    #[test]
    fn ticks_record_selected_counters_into_rings() {
        let config = test_config("scopetest_a/");
        let state = SamplerState::new(&config);
        detdiv_obs::incr_counter("scopetest_a/widgets", 10);
        state.tick(&config);
        detdiv_obs::incr_counter("scopetest_a/widgets", 5);
        std::thread::sleep(Duration::from_millis(2));
        state.tick(&config);
        let summaries = state.summaries();
        let widgets = summaries
            .iter()
            .find(|s| s.name == "scopetest_a/widgets")
            .expect("sampled series present");
        assert_eq!(widgets.samples.last(), Some(&15));
        assert!(widgets.samples.len() >= 2);
        let rate = state
            .rates()
            .iter()
            .find(|(n, _)| n == "scopetest_a/widgets")
            .map(|(_, r)| *r)
            .unwrap();
        assert!(rate > 0.0, "positive rate after an increment, got {rate}");
    }

    #[test]
    fn ring_capacity_evicts_oldest_samples() {
        let config = test_config("scopetest_b/");
        let state = SamplerState::new(&config);
        for i in 0..10u64 {
            detdiv_obs::set_counter("scopetest_b/gauge", i);
            state.tick(&config);
        }
        let summaries = state.summaries();
        let series = summaries
            .iter()
            .find(|s| s.name == "scopetest_b/gauge")
            .unwrap();
        assert!(series.samples.len() <= 4, "ring respects capacity");
        assert_eq!(series.samples.last(), Some(&9));
        // Oldest-first ordering with the early samples evicted.
        assert!(series.samples[0] >= 6);
    }

    #[test]
    fn counter_reset_restarts_the_ring_with_zero_rate() {
        let config = test_config("scopetest_c/");
        let state = SamplerState::new(&config);
        detdiv_obs::set_counter("scopetest_c/resetting", 100);
        state.tick(&config);
        detdiv_obs::set_counter("scopetest_c/resetting", 3);
        std::thread::sleep(Duration::from_millis(2));
        state.tick(&config);
        let summaries = state.summaries();
        let series = summaries
            .iter()
            .find(|s| s.name == "scopetest_c/resetting")
            .unwrap();
        assert_eq!(series.samples.as_slice(), &[3], "ring restarted on reset");
        assert_eq!(series.rate_per_sec, 0.0);
    }

    #[test]
    fn events_series_aggregates_windows_scored() {
        let config = test_config("scopetest_never_matches/");
        let state = SamplerState::new(&config);
        detdiv_obs::incr_counter("detector/scopetest_d/windows_scored", 40);
        state.tick(&config);
        let summaries = state.summaries();
        let events = summaries
            .iter()
            .find(|s| s.name == EVENTS_SERIES)
            .expect("aggregate series always present");
        assert!(
            events.samples.last().copied().unwrap_or(0) >= 40,
            "aggregate includes the detector counter"
        );
    }

    #[test]
    fn max_series_bounds_tracked_counters() {
        let config = SamplerConfig {
            max_series: 2,
            ..test_config("scopetest_e/")
        };
        let state = SamplerState::new(&config);
        for i in 0..5 {
            detdiv_obs::incr_counter(&format!("scopetest_e/c{i}"), 1);
        }
        state.tick(&config);
        // 2 selected series + the synthetic aggregate.
        assert!(state.series_count() <= 3);
    }

    #[test]
    fn sampler_thread_starts_ticks_and_shuts_down() {
        let sampler = Sampler::start(test_config("scopetest_f/"));
        let state = sampler.state();
        let deadline = Instant::now() + Duration::from_secs(5);
        while state.ticks() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(state.ticks() >= 3, "sampler thread ticks on its own");
        let before = state.ticks();
        sampler.shutdown();
        // Shutdown takes one final tick; after that the count is frozen.
        let after = state.ticks();
        assert!(after > before || after >= 3);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(state.ticks(), after, "no ticks after shutdown");
    }

    #[test]
    fn from_env_rejects_malformed_interval() {
        // Uses the parsing path directly rather than mutating the
        // process environment (other tests run concurrently).
        let parse = |raw: &str| {
            raw.parse::<u64>()
                .ok()
                .filter(|&ms| ms > 0)
                .ok_or_else(|| format!("{INTERVAL_ENV}={raw:?} is not a positive integer"))
        };
        assert!(parse("250").is_ok());
        assert!(parse("0").is_err());
        assert!(parse("fast").is_err());
        assert!(parse("-5").is_err());
    }
}

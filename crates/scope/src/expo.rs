//! Prometheus text exposition (format 0.0.4) over the obs registry,
//! plus the hand-rolled validator the test suite and `scopecheck` use.
//!
//! The mapping from obs instruments to exposition families is a pure
//! function of the registry contents:
//!
//! * counter `par/jobs_executed` → `detdiv_par_jobs_executed_total`
//!   (`# TYPE ... counter`);
//! * histogram `span/report` → `detdiv_span_report` with cumulative
//!   `_bucket{le="..."}` lines rendered from the raw log2 buckets
//!   (bucket `i` is published under its inclusive upper bound
//!   `2^(i+1) - 1`, the last bucket folds into `le="+Inf"`), plus
//!   `_sum` / `_count`, plus `detdiv_span_report_p50` / `_p90` /
//!   `_p99` gauges carrying the interpolated quantile estimates;
//! * sampler rates → `detdiv_rate_per_sec{series="<registry name>"}`
//!   gauges and the aggregate `detdiv_events_per_sec`.
//!
//! Counter values are rendered as exact integers, so a scrape of a
//! finished deterministic run reproduces the `TelemetrySnapshot`
//! counter map value-for-value — the exposition-correctness test pins
//! that down.

use detdiv_obs::Histogram;
use std::fmt::Write as _;
use std::sync::Arc;

/// Maps an obs registry name onto the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every run of invalid characters
/// becomes one `_`. The rendered names are additionally prefixed with
/// `detdiv_`, so a leading digit can never start a metric name.
pub fn sanitize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut gap = false;
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
            gap = false;
        } else if !gap {
            out.push('_');
            gap = true;
        }
    }
    out
}

/// The exposition name of an obs counter (`…_total` per convention).
pub fn counter_metric_name(raw: &str) -> String {
    format!("detdiv_{}_total", sanitize(raw))
}

/// The exposition family name of an obs histogram.
pub fn histogram_metric_name(raw: &str) -> String {
    format!("detdiv_{}", sanitize(raw))
}

/// Escapes a HELP docstring (backslash and newline, per the format).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (backslash, quote, newline).
fn escape_label(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Incremental builder for one exposition page. Families are emitted
/// in the order the `emit_*` calls arrive; each carries its `# HELP`
/// and `# TYPE` header.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty page.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one counter family with a single exact-integer sample.
    pub fn emit_counter(&mut self, raw: &str, value: u64) {
        let name = counter_metric_name(raw);
        self.header(&name, &format!("detdiv counter `{raw}`"), "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Emits one unlabeled gauge family with an integer sample.
    pub fn emit_gauge_u64(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Emits one unlabeled gauge family with a float sample.
    pub fn emit_gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Emits one gauge family whose samples are distinguished by a
    /// single label; `series` holds `(label value, sample)` pairs.
    pub fn emit_labeled_gauge(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        series: &[(String, f64)],
    ) {
        if series.is_empty() {
            return;
        }
        self.header(name, help, "gauge");
        for (value, sample) in series {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {sample}",
                escape_label(value)
            );
        }
    }

    /// Emits one histogram family from the live log2 instrument:
    /// cumulative buckets (only up to the highest non-empty bucket,
    /// then the mandatory `le="+Inf"`), `_sum`, `_count`, and the
    /// three quantile-estimate gauges.
    pub fn emit_histogram(&mut self, raw: &str, h: &Histogram) {
        let name = histogram_metric_name(raw);
        // One consistent view: buckets are copied once, and count/sum
        // are derived from that copy so `_count` always equals the
        // terminal bucket even while recording continues concurrently.
        let buckets = h.bucket_counts();
        let total: u64 = buckets.iter().sum();
        self.header(
            &name,
            &format!("detdiv histogram `{raw}` (nanoseconds, log2 buckets)"),
            "histogram",
        );
        let highest = buckets.iter().rposition(|&n| n > 0);
        let mut cumulative = 0u64;
        if let Some(highest) = highest {
            for (i, &n) in buckets.iter().enumerate().take(highest + 1) {
                cumulative += n;
                let le = detdiv_obs::histogram::bucket_upper_inclusive(i);
                if le == u64::MAX {
                    break; // the last bucket is published as +Inf only
                }
                let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(self.out, "{name}_sum {}", h.sum());
        let _ = writeln!(self.out, "{name}_count {total}");
        for (q, suffix) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
            let gauge = format!("{name}_{suffix}");
            self.emit_gauge_u64(
                &gauge,
                &format!("detdiv histogram `{raw}` {suffix} estimate, nanoseconds"),
                h.quantile(q),
            );
        }
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders the whole obs registry (every counter and histogram, in
/// registry name order) into one exposition page, preceded by the
/// caller-supplied scope-process families. This is what `GET /metrics`
/// serves.
pub fn render_registry(mut page: Exposition) -> String {
    for (name, value) in detdiv_obs::export_counters() {
        page.emit_counter(&name, value);
    }
    for (name, h) in detdiv_obs::export_histograms() {
        page.emit_histogram(&name, h.as_ref());
    }
    page.finish()
}

/// Re-export used by [`render_registry`] callers that pre-populate the
/// page with process metrics.
pub type HistogramHandle = Arc<Histogram>;

// ---------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (before any `{...}`).
    pub name: String,
    /// Raw label block contents (without braces; empty when absent).
    pub labels: String,
    /// The raw value token, preserved exactly for integer comparisons.
    pub value: String,
}

/// The outcome of a successful validation: every sample plus the
/// family census.
#[derive(Debug, Clone, Default)]
pub struct PromText {
    /// All sample lines, in page order.
    pub samples: Vec<PromSample>,
    /// Families seen via `# TYPE`, `(name, kind)` in page order.
    pub families: Vec<(String, String)>,
}

impl PromText {
    /// The raw value of the first unlabeled sample named `name`.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value.as_str())
    }

    /// The unlabeled sample named `name`, parsed as `u64`.
    pub fn value_u64(&self, name: &str) -> Option<u64> {
        self.value_of(name).and_then(|v| v.parse().ok())
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_value(value: &str) -> bool {
    matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok()
}

/// Splits `name{labels} value` / `name value`; labels may contain
/// spaces inside quoted values.
fn split_sample(line: &str) -> Result<PromSample, String> {
    let (head, labels, rest) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unterminated label block: {line}"))?;
            if close < open {
                return Err(format!("malformed label block: {line}"));
            }
            (
                &line[..open],
                line[open + 1..close].to_owned(),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let head = it.next().unwrap_or_default();
            (head, String::new(), it.next().unwrap_or("").trim())
        }
    };
    let name = head.trim().to_owned();
    if name.is_empty() || rest.is_empty() {
        return Err(format!("sample line needs `name value`: {line}"));
    }
    // Timestamps (a second token after the value) are permitted by the
    // format but never emitted by detdiv; reject them to keep scrapes
    // canonical.
    let mut tokens = rest.split_whitespace();
    let value = tokens.next().unwrap_or("").to_owned();
    if tokens.next().is_some() {
        return Err(format!("unexpected trailing token: {line}"));
    }
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

fn label_value(labels: &str, key: &str) -> Option<String> {
    // Good enough for detdiv's own pages: single-label blocks with
    // escaped quotes handled by the renderer's escaping rules.
    let needle = format!("{key}=\"");
    let start = labels.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut escaped = false;
    for c in labels[start..].chars() {
        match (escaped, c) {
            (true, _) => {
                out.push(c);
                escaped = false;
            }
            (false, '\\') => escaped = true,
            (false, '"') => return Some(out),
            (false, _) => out.push(c),
        }
    }
    None
}

/// Validates one Prometheus text-format 0.0.4 page, enforcing the
/// contract the detdiv renderer promises:
///
/// * every line is empty, `# HELP`, `# TYPE`, or a sample;
/// * each `# TYPE` names a known kind and appears once per family,
///   with a matching `# HELP` on the page;
/// * every sample belongs to a family with a `# TYPE` (histogram
///   samples resolve through their `_bucket`/`_sum`/`_count` suffix);
/// * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*` and values parse;
/// * every histogram's buckets are cumulative (non-decreasing), their
///   `le` bounds strictly increase, the terminal bucket is
///   `le="+Inf"`, and `_count` equals the terminal bucket.
///
/// # Errors
///
/// The first violated rule, as a human-readable message naming the
/// offending line or family.
pub fn validate(text: &str) -> Result<PromText, String> {
    let mut out = PromText::default();
    let mut helps: Vec<String> = Vec::new();
    let mut types: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default().to_owned();
            if !valid_metric_name(&name) {
                return Err(format!("HELP names an invalid metric: {line}"));
            }
            helps.push(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or_default().to_owned();
            let kind = it.next().unwrap_or_default().to_owned();
            if !valid_metric_name(&name) {
                return Err(format!("TYPE names an invalid metric: {line}"));
            }
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown TYPE kind {kind:?}: {line}"));
            }
            if types.iter().any(|(n, _)| *n == name) {
                return Err(format!("duplicate TYPE for family {name}"));
            }
            if !helps.contains(&name) {
                return Err(format!("TYPE for {name} has no preceding HELP"));
            }
            types.push((name, kind));
            continue;
        }
        if line.starts_with('#') {
            // Free comments are legal; detdiv never emits them but a
            // scrape proxy might.
            continue;
        }
        let sample = split_sample(line)?;
        if !valid_metric_name(&sample.name) {
            return Err(format!("invalid metric name {:?}", sample.name));
        }
        if !valid_value(&sample.value) {
            return Err(format!(
                "sample {} has unparseable value {:?}",
                sample.name, sample.value
            ));
        }
        let family = types
            .iter()
            .find(|(n, _)| *n == sample.name)
            .map(|(n, _)| n.clone())
            .or_else(|| {
                ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                    let base = sample.name.strip_suffix(suffix)?;
                    types
                        .iter()
                        .find(|(n, k)| n == base && k == "histogram")
                        .map(|(n, _)| n.clone())
                })
            });
        if family.is_none() {
            return Err(format!("sample {} has no TYPE header", sample.name));
        }
        out.samples.push(sample);
    }
    // Histogram shape checks.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{family}_bucket");
        let buckets: Vec<&PromSample> = out
            .samples
            .iter()
            .filter(|s| s.name == bucket_name)
            .collect();
        if buckets.is_empty() {
            return Err(format!("histogram {family} has no buckets"));
        }
        let mut previous_le = f64::NEG_INFINITY;
        let mut previous_count = 0u64;
        for (i, bucket) in buckets.iter().enumerate() {
            let le = label_value(&bucket.labels, "le")
                .ok_or_else(|| format!("histogram {family} bucket without le label"))?;
            let le_value = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|e| format!("histogram {family} bucket le {le:?}: {e}"))?
            };
            if le_value <= previous_le {
                return Err(format!("histogram {family} le bounds not increasing"));
            }
            previous_le = le_value;
            let count: u64 = bucket
                .value
                .parse()
                .map_err(|e| format!("histogram {family} bucket count {:?}: {e}", bucket.value))?;
            if count < previous_count {
                return Err(format!("histogram {family} buckets not cumulative"));
            }
            previous_count = count;
            let is_last = i == buckets.len() - 1;
            if is_last && le != "+Inf" {
                return Err(format!("histogram {family} terminal bucket is not +Inf"));
            }
        }
        let count = out
            .value_u64(&format!("{family}_count"))
            .ok_or_else(|| format!("histogram {family} has no _count"))?;
        if count != previous_count {
            return Err(format!(
                "histogram {family} _count {count} != +Inf bucket {previous_count}"
            ));
        }
        if out.value_of(&format!("{family}_sum")).is_none() {
            return Err(format!("histogram {family} has no _sum"));
        }
    }
    out.families = types;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_collapses_invalid_runs() {
        assert_eq!(
            sanitize("par/worker0/jobs_executed"),
            "par_worker0_jobs_executed"
        );
        assert_eq!(
            sanitize("detector/lane-brodley/train_ns"),
            "detector_lane_brodley_train_ns"
        );
        assert_eq!(sanitize("a//b"), "a_b");
        assert_eq!(counter_metric_name("eval/cases"), "detdiv_eval_cases_total");
    }

    #[test]
    fn rendered_counter_page_validates_and_round_trips_values() {
        let mut page = Exposition::new();
        page.emit_counter("eval/cases", 1234);
        page.emit_counter("detector/stide/alarms_raised", 9);
        let text = page.finish();
        let parsed = validate(&text).expect("renderer output validates");
        assert_eq!(parsed.value_u64("detdiv_eval_cases_total"), Some(1234));
        assert_eq!(
            parsed.value_u64("detdiv_detector_stide_alarms_raised_total"),
            Some(9)
        );
        assert_eq!(parsed.families.len(), 2);
    }

    #[test]
    fn rendered_histogram_is_cumulative_with_inf_terminal() {
        let h = Histogram::new();
        for v in [1u64, 2, 2, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let mut page = Exposition::new();
        page.emit_histogram("span/report", &h);
        let text = page.finish();
        let parsed = validate(&text).expect("histogram page validates");
        assert_eq!(parsed.value_u64("detdiv_span_report_count"), Some(6));
        assert_eq!(parsed.value_u64("detdiv_span_report_sum"), Some(1_001_010));
        assert!(parsed.value_u64("detdiv_span_report_p50").is_some());
        let inf_bucket = parsed
            .samples
            .iter()
            .find(|s| s.name == "detdiv_span_report_bucket" && s.labels.contains("+Inf"))
            .expect("terminal bucket present");
        assert_eq!(inf_bucket.value, "6");
    }

    #[test]
    fn empty_histogram_still_validates() {
        let h = Histogram::new();
        let mut page = Exposition::new();
        page.emit_histogram("span/empty", &h);
        let parsed = validate(&page.finish()).expect("empty histogram validates");
        assert_eq!(parsed.value_u64("detdiv_span_empty_count"), Some(0));
    }

    #[test]
    fn labeled_gauges_validate() {
        let mut page = Exposition::new();
        page.emit_labeled_gauge(
            "detdiv_rate_per_sec",
            "sampled counter rate",
            "series",
            &[
                ("detector/stide/windows_scored".to_owned(), 123.5),
                ("cache/hits".to_owned(), 0.0),
            ],
        );
        let parsed = validate(&page.finish()).expect("labeled gauge validates");
        assert_eq!(parsed.samples.len(), 2);
        assert!(parsed.samples[0].labels.contains("series=\""));
    }

    #[test]
    fn validator_rejects_the_contract_violations() {
        // No TYPE header.
        assert!(validate("orphan_metric 1\n").is_err());
        // TYPE without HELP.
        assert!(validate("# TYPE x counter\nx 1\n").is_err());
        // Unknown kind.
        assert!(validate("# HELP x d\n# TYPE x rainbow\nx 1\n").is_err());
        // Invalid name charset.
        assert!(validate("# HELP x d\n# TYPE x counter\nx-y 1\n").is_err());
        // Unparseable value.
        assert!(validate("# HELP x d\n# TYPE x counter\nx banana\n").is_err());
        // Non-cumulative buckets.
        let shrinking = "# HELP h d\n# TYPE h histogram\n\
                         h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 3\n\
                         h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(shrinking).unwrap_err().contains("cumulative"));
        // Missing +Inf terminal.
        let no_inf = "# HELP h d\n# TYPE h histogram\n\
                      h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
        // _count disagrees with the terminal bucket.
        let bad_count = "# HELP h d\n# TYPE h histogram\n\
                         h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(validate(bad_count).unwrap_err().contains("_count"));
        // le bounds must strictly increase.
        let repeated_le = "# HELP h d\n# TYPE h histogram\n\
                           h_bucket{le=\"1\"} 1\nh_bucket{le=\"1\"} 2\n\
                           h_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 2\n";
        assert!(validate(repeated_le).unwrap_err().contains("increasing"));
    }
}

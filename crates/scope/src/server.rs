//! The metrics exposition server: a tiny single-threaded HTTP/1.1
//! responder over [`std::net::TcpListener`].
//!
//! The server exists to be scraped, not to be a web framework: it
//! accepts one connection at a time, answers the `GET` routes listed
//! in [`ENDPOINTS`], and closes the connection. Binding ([`bind`]) is
//! separate from serving ([`BoundServer::serve`]) so callers can fail
//! fast on a taken or invalid address *before* doing any expensive
//! work — the regeneration binary binds during preflight, before
//! training starts.
//!
//! Routing is table-driven: [`ENDPOINTS`] is the single source of
//! truth for paths, content types, and handlers, and the 404 body is
//! derived from the same table so the route list can never drift from
//! the error hint.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text format 0.0.4 (see
//!   [`crate::expo`]): scope process gauges, sampler rate gauges, and
//!   every obs counter and histogram.
//! * `GET /healthz` — JSON liveness: status, uptime, last-sample age,
//!   whether telemetry is enabled, scrape count, degraded-stream
//!   count, and which optional subsystems are armed
//!   (serve/stream/fault/flight).
//! * `GET /snapshot.json` — the full serialized
//!   [`detdiv_obs::TelemetrySnapshot`], timeseries section included.
//! * `GET /profilez` — the live self-profile table as plain text.
//! * `GET /streams` — per-stream introspection from the flight
//!   registry: events, emitted verdicts, alarm totals, degraded slots,
//!   last score and event index, keyed by stream hash with the human
//!   label when known.
//! * `GET /flightz` — the live tail of the flight recorder's crash
//!   ring: recorder status plus the most recent wide events as JSONL.
//! * `GET /servez` — per-shard counters of the registered
//!   `detdiv-serve` ingest service (queue depths, rejections,
//!   escalations), or `{"registered":false}` when none is running.
//! * `GET /guardz` — per-shard overload-guard state of the registered
//!   service (degradation ladder level, breaker state, resident bytes,
//!   shed and hibernation counters), or `{"registered":false}` when no
//!   guarded service is running.
//!
//! Shutdown sets a flag and pokes the listener with a self-connect so
//! the accept loop observes it promptly, then joins the thread.

use crate::expo;
use crate::sampler::SamplerState;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection I/O timeout: a stuck scraper cannot wedge the
/// accept loop for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head the server reads before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// What `GET /healthz` serializes.
#[derive(Debug, Serialize)]
struct Health {
    status: String,
    uptime_seconds: f64,
    last_sample_age_seconds: f64,
    telemetry_enabled: bool,
    sampler_ticks: u64,
    series: u64,
    scrapes_total: u64,
    degraded_streams: u64,
    subsystems: SubsystemHealth,
}

/// The armed-subsystem block inside `/healthz`, mirrored from
/// [`detdiv_flight::flags::subsystems`].
#[derive(Debug, Serialize)]
struct SubsystemHealth {
    serve: bool,
    stream: bool,
    fault: bool,
    flight: bool,
}

/// State shared between the accept loop and the handle.
#[derive(Debug)]
struct Shared {
    started: Instant,
    scrapes: AtomicU64,
    stop: AtomicBool,
    sampler: Option<Arc<SamplerState>>,
}

/// A successfully bound, not-yet-serving listener. Produced by
/// [`bind`]; consumed by [`BoundServer::serve`].
#[derive(Debug)]
pub struct BoundServer {
    listener: TcpListener,
    addr: SocketAddr,
}

/// Binds the exposition listener.
///
/// This is the preflight: a taken port, a malformed address, or a
/// hostname that does not resolve surfaces here as a one-line
/// diagnostic, before any training work has run.
///
/// # Errors
///
/// A human-readable message naming the address and the OS error.
pub fn bind(addr: &str) -> Result<BoundServer, String> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| format!("cannot bind metrics server on {addr}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address for {addr}: {e}"))?;
    Ok(BoundServer { listener, addr })
}

impl BoundServer {
    /// The actual bound address (port filled in when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the accept loop on a background thread and returns the
    /// controlling handle. `sampler` (when present) feeds the rate
    /// gauges on `/metrics` and the sample-age field on `/healthz`.
    pub fn serve(self, sampler: Option<Arc<SamplerState>>) -> ServerHandle {
        let shared = Arc::new(Shared {
            started: Instant::now(),
            scrapes: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            sampler,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("detdiv-scope-server".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(stream) = stream {
                            handle_connection(stream, &shared);
                        }
                    }
                })
                .expect("spawn exposition server thread")
        };
        ServerHandle {
            addr: self.addr,
            shared,
            thread: Some(thread),
        }
    }
}

/// Handle to a running exposition server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop and joins the
/// thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total `GET` requests answered so far.
    pub fn scrapes_total(&self) -> u64 {
        self.shared.scrapes.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Poke the blocking accept so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Reads the request head (through the blank line), answers, closes.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                    || head.len() > MAX_REQUEST_BYTES
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let oversized = head.len() > MAX_REQUEST_BYTES;
    let request = String::from_utf8_lossy(&head);
    let mut tokens = request.split_whitespace();
    let (method, path) = (tokens.next().unwrap_or(""), tokens.next().unwrap_or(""));
    let response = if oversized {
        respond(400, "text/plain; charset=utf-8", "request head too large\n")
    } else {
        match (method, path) {
            ("GET", _) => {
                shared.scrapes.fetch_add(1, Ordering::Relaxed);
                route_get(path, shared)
            }
            ("", _) => respond(400, "text/plain; charset=utf-8", "bad request\n"),
            _ => respond(405, "text/plain; charset=utf-8", "method not allowed\n"),
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// One `GET` route: its path, response content type, one-line summary
/// (shown in the 404 hint), and handler.
struct Endpoint {
    path: &'static str,
    content_type: &'static str,
    summary: &'static str,
    render: fn(&Shared) -> String,
}

/// The single source of truth for the server's routes. The router
/// dispatch and the 404 hint body are both derived from this table.
const ENDPOINTS: &[Endpoint] = &[
    Endpoint {
        path: "/metrics",
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        summary: "Prometheus exposition of every obs counter and histogram",
        render: render_metrics,
    },
    Endpoint {
        path: "/healthz",
        content_type: "application/json; charset=utf-8",
        summary: "liveness, degraded-stream count, armed subsystems",
        render: render_health,
    },
    Endpoint {
        path: "/snapshot.json",
        content_type: "application/json; charset=utf-8",
        summary: "full telemetry snapshot, timeseries included",
        render: render_snapshot,
    },
    Endpoint {
        path: "/profilez",
        content_type: "text/plain; charset=utf-8",
        summary: "live self-profile table",
        render: render_profile,
    },
    Endpoint {
        path: "/streams",
        content_type: "application/json; charset=utf-8",
        summary: "per-stream counters from the flight registry",
        render: render_streams,
    },
    Endpoint {
        path: "/flightz",
        content_type: "text/plain; charset=utf-8",
        summary: "flight recorder status and live event tail",
        render: render_flightz,
    },
    Endpoint {
        path: "/servez",
        content_type: "application/json; charset=utf-8",
        summary: "ingest service shard counters (queues, rejections, tiering)",
        render: render_servez,
    },
    Endpoint {
        path: "/guardz",
        content_type: "application/json; charset=utf-8",
        summary: "overload guard state (ladder levels, breaker, hibernation)",
        render: render_guardz,
    },
];

fn route_get(path: &str, shared: &Shared) -> String {
    // Scrapers may append query strings; routing ignores them.
    let path = path.split('?').next().unwrap_or(path);
    match ENDPOINTS.iter().find(|e| e.path == path) {
        Some(endpoint) => respond(200, endpoint.content_type, &(endpoint.render)(shared)),
        None => respond(404, "text/plain; charset=utf-8", &not_found(path)),
    }
}

/// The 404 body: names the missed path and lists every route from
/// [`ENDPOINTS`] with its summary.
fn not_found(path: &str) -> String {
    let mut body = String::from("no route for ");
    body.push_str(path);
    body.push_str("; endpoints:\n");
    for endpoint in ENDPOINTS {
        body.push_str("  ");
        body.push_str(endpoint.path);
        body.push_str(" - ");
        body.push_str(endpoint.summary);
        body.push('\n');
    }
    body
}

fn render_metrics(shared: &Shared) -> String {
    let mut page = expo::Exposition::new();
    page.emit_gauge_f64(
        "scope_uptime_seconds",
        "seconds since the exposition server started",
        shared.started.elapsed().as_secs_f64(),
    );
    page.emit_gauge_u64(
        "scope_scrapes_total",
        "GET requests answered by the exposition server",
        // Incremented before routing, so the scrape being served
        // counts itself and the value stays monotone across scrapes.
        shared.scrapes.load(Ordering::Relaxed),
    );
    page.emit_gauge_u64(
        "scope_telemetry_enabled",
        "1 when the obs registry records telemetry (DETDIV_LOG != off)",
        u64::from(detdiv_obs::telemetry_enabled()),
    );
    if let Some(sampler) = &shared.sampler {
        page.emit_gauge_u64(
            "scope_sampler_ticks_total",
            "sampling ticks taken by the time-series sampler",
            sampler.ticks(),
        );
        page.emit_gauge_u64(
            "scope_series",
            "distinct counter series currently sampled",
            sampler.series_count() as u64,
        );
        page.emit_gauge_f64(
            "detdiv_events_per_sec",
            "aggregate windows-scored throughput from the two newest samples",
            sampler.events_per_sec(),
        );
        page.emit_labeled_gauge(
            "detdiv_rate_per_sec",
            "per-series counter rate from the two newest samples",
            "series",
            &sampler.rates(),
        );
    }
    expo::render_registry(page)
}

fn health(shared: &Shared) -> Health {
    let last_sample_age_seconds = shared
        .sampler
        .as_ref()
        .and_then(|s| s.last_sample_age())
        .map(|d| d.as_secs_f64())
        .unwrap_or(-1.0);
    let armed = detdiv_flight::flags::subsystems();
    Health {
        status: "ok".to_owned(),
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        last_sample_age_seconds,
        telemetry_enabled: detdiv_obs::telemetry_enabled(),
        sampler_ticks: shared.sampler.as_ref().map(|s| s.ticks()).unwrap_or(0),
        series: shared
            .sampler
            .as_ref()
            .map(|s| s.series_count() as u64)
            .unwrap_or(0),
        scrapes_total: shared.scrapes.load(Ordering::Relaxed),
        degraded_streams: detdiv_flight::streams::degraded_streams(),
        subsystems: SubsystemHealth {
            serve: armed.serve,
            stream: armed.stream,
            fault: armed.fault,
            flight: armed.flight,
        },
    }
}

fn render_health(shared: &Shared) -> String {
    serde_json::to_string_pretty(&health(shared)).unwrap_or_default()
}

fn render_snapshot(_shared: &Shared) -> String {
    serde_json::to_string_pretty(&detdiv_obs::snapshot()).unwrap_or_default()
}

/// Renders `/streams`: one JSON object per registered stream, hashes
/// ascending, plus the registry-wide degraded-stream count.
fn render_streams(_shared: &Shared) -> String {
    let snapshots = detdiv_flight::streams::snapshots();
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"registry_enabled\": {},\n",
        detdiv_flight::streams::enabled()
    ));
    out.push_str(&format!(
        "  \"degraded_streams\": {},\n",
        detdiv_flight::streams::degraded_streams()
    ));
    out.push_str("  \"streams\": [");
    for (i, snap) in snapshots.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {{\"hash\":\"{:016x}\",", snap.stream_hash));
        out.push_str("\"label\":\"");
        detdiv_flight::push_json_escaped(&mut out, &snap.label);
        out.push('"');
        out.push_str(&format!(
            ",\"events\":{},\"emitted\":{},\"alarms\":{},\"degraded\":{}",
            snap.events, snap.emitted, snap.alarms, snap.degraded
        ));
        if snap.last_score.is_finite() {
            out.push_str(&format!(",\"last_score\":{:?}", snap.last_score));
        } else {
            out.push_str(",\"last_score\":null");
        }
        out.push_str(&format!(
            ",\"last_event_index\":{}}}",
            snap.last_event_index
        ));
    }
    if snapshots.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders `/servez`: the registered ingest service's per-shard
/// counters, or `{"registered":false}` when no service is running in
/// this process.
fn render_servez(_shared: &Shared) -> String {
    let mut out = detdiv_serve::introspect::render_json();
    out.push('\n');
    out
}

/// Renders `/guardz`: the registered service's overload-guard state —
/// per-shard degradation level, breaker state, resident bytes and
/// shed/hibernation counters — or `{"registered":false}` when no
/// guarded service is running in this process.
fn render_guardz(_shared: &Shared) -> String {
    let mut out = detdiv_guard::introspect::render_json();
    out.push('\n');
    out
}

/// Renders `/flightz`: recorder status header plus the crash ring's
/// most recent wide events, oldest first, as JSONL.
fn render_flightz(_shared: &Shared) -> String {
    let mut out = format!(
        "flight recorder: armed={} recorded={} dropped={} ring={}\n",
        detdiv_flight::armed(),
        detdiv_flight::recorded(),
        detdiv_flight::dropped(),
        detdiv_flight::blackbox::len(),
    );
    let tail = detdiv_flight::blackbox::tail(detdiv_flight::blackbox::BLACKBOX_CAPACITY);
    if tail.is_empty() {
        out.push_str("(no wide events recorded yet)\n");
    } else {
        for line in tail {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

fn render_profile(_shared: &Shared) -> String {
    let profile = detdiv_obs::snapshot().profile;
    let mut out = String::from("detdiv self-profile (live)\n");
    if profile.is_empty() {
        out.push_str("(no spans recorded yet)\n");
    } else {
        out.push_str(&profile.render_text(40));
    }
    out
}

fn respond(status: u16, content_type: &str, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

// ---------------------------------------------------------------------
// Minimal HTTP client (used by tests and the `scopecheck` checker)
// ---------------------------------------------------------------------

/// Performs one `GET` against a detdiv exposition server and returns
/// `(status, body)`.
///
/// # Errors
///
/// Connection, I/O, or response-parsing failures as readable messages.
pub fn http_get(addr: &SocketAddr, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect_timeout(addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send request to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response from {addr}: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in response from {addr}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Splits a scrape URL (`http://127.0.0.1:9184/metrics` or bare
/// `127.0.0.1:9184`) into its socket address and path (`/metrics`
/// when absent).
///
/// # Errors
///
/// A diagnostic when the host:port part does not resolve.
pub fn parse_scrape_url(url: &str) -> Result<(SocketAddr, String), String> {
    use std::net::ToSocketAddrs;
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_owned()),
        None => (rest, "/metrics".to_owned()),
    };
    let addr = host
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {host}: {e}"))?
        .next()
        .ok_or_else(|| format!("{host} resolves to no address"))?;
    Ok((addr, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_rejects_taken_and_invalid_addresses() {
        let first = bind("127.0.0.1:0").expect("ephemeral bind works");
        let taken = first.local_addr().to_string();
        let err = bind(&taken).expect_err("double bind fails");
        assert!(
            err.contains("cannot bind"),
            "diagnostic names the failure: {err}"
        );
        assert!(err.contains(&taken), "diagnostic names the address: {err}");
        assert!(bind("not-an-address").is_err());
    }

    #[test]
    fn parse_scrape_url_accepts_all_supported_shapes() {
        let (addr, path) = parse_scrape_url("http://127.0.0.1:9184/metrics").unwrap();
        assert_eq!(addr.port(), 9184);
        assert_eq!(path, "/metrics");
        let (_, path) = parse_scrape_url("127.0.0.1:9184").unwrap();
        assert_eq!(path, "/metrics");
        let (_, path) = parse_scrape_url("127.0.0.1:9184/healthz").unwrap();
        assert_eq!(path, "/healthz");
        assert!(parse_scrape_url("http:///nope").is_err());
    }

    #[test]
    fn responses_carry_status_and_content_length() {
        let r = respond(200, "text/plain", "body\n");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 5\r\n"));
        assert!(r.ends_with("body\n"));
        assert!(respond(404, "text/plain", "x").contains("Not Found"));
    }
}

//! `detdiv-scope`: live runtime introspection for the detdiv
//! workspace — a metrics exposition server and a time-series sampler
//! layered on the `detdiv-obs` registry, std-only like everything else
//! here.
//!
//! # Pieces
//!
//! * [`server`] — a tiny `TcpListener` HTTP responder serving
//!   `GET /metrics` (Prometheus text format 0.0.4), `/healthz`,
//!   `/snapshot.json`, `/profilez`, and the flight-layer views
//!   `/streams` and `/flightz`. Binding is separate from serving so
//!   arming can fail fast during preflight; routing is driven by one
//!   endpoint table shared with the 404 hint.
//! * [`sampler`] — a background thread sampling selected obs counters
//!   at a fixed interval into fixed-capacity ring buffers, deriving
//!   events-per-second rate gauges, and feeding the snapshot's
//!   `timeseries` section through the obs source hook.
//! * [`expo`] — the Prometheus renderer plus the hand-rolled format
//!   validator used by the tests and the `scopecheck` CI checker.
//!
//! # Arming and the determinism contract
//!
//! A [`Scope`] is only ever constructed when explicitly asked for
//! (`regenerate --serve ADDR`, `DETDIV_SERVE`); a run without one pays
//! nothing and emits byte-identical artifacts. While armed, neither
//! the server nor the sampler writes the obs registry — scope-process
//! metrics (uptime, scrape counts) live in scope-private atomics and
//! appear only on `/metrics` — and the sampler additionally records
//! nothing when telemetry is disabled (`DETDIV_LOG=off`), mirroring
//! the PR 3 `busy_nanos` gating. The byte-determinism CI gate runs a
//! `--serve` run against a plain run and `cmp`s every artifact.
//!
//! # Example
//!
//! ```
//! use detdiv_scope::{Scope, ScopeConfig};
//!
//! let scope = Scope::start("127.0.0.1:0", ScopeConfig::default()).unwrap();
//! let addr = scope.local_addr();
//! detdiv_obs::incr_counter("detector/doc/windows_scored", 94);
//! let (status, body) = detdiv_scope::server::http_get(
//!     &addr,
//!     "/metrics",
//!     std::time::Duration::from_secs(2),
//! )
//! .unwrap();
//! assert_eq!(status, 200);
//! detdiv_scope::expo::validate(&body).unwrap();
//! scope.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod expo;
pub mod sampler;
pub mod server;

pub use sampler::{Sampler, SamplerConfig, SamplerState};
pub use server::{bind, http_get, parse_scrape_url, BoundServer, ServerHandle};

use std::net::SocketAddr;
use std::sync::Arc;

/// Environment variable arming the scope without a CLI flag: its value
/// is the listen address (`regenerate --serve ADDR` wins when both are
/// given).
pub const SERVE_ENV: &str = "DETDIV_SERVE";

/// Environment variable naming a JSON file to persist the sampled
/// time series to at shutdown (written crash-safely via
/// `detdiv-resil`'s `AtomicFile`).
pub const DUMP_ENV: &str = "DETDIV_SCOPE_DUMP";

/// Configuration for a [`Scope`].
#[derive(Debug, Clone, Default)]
pub struct ScopeConfig {
    /// Sampler settings (interval, ring capacity, counter selection).
    pub sampler: SamplerConfig,
    /// Optional path receiving the final sampled series as JSON.
    pub dump_path: Option<String>,
}

impl ScopeConfig {
    /// The default config with `DETDIV_SCOPE_INTERVAL_MS` and
    /// `DETDIV_SCOPE_DUMP` applied.
    ///
    /// # Errors
    ///
    /// A diagnostic when the interval variable is set but malformed.
    pub fn from_env() -> Result<ScopeConfig, String> {
        Ok(ScopeConfig {
            sampler: SamplerConfig::from_env()?,
            dump_path: std::env::var(DUMP_ENV).ok().filter(|p| !p.is_empty()),
        })
    }
}

/// A running introspection scope: the exposition server plus the
/// sampler, with the sampler installed as the obs snapshot timeseries
/// source. Shut it down with [`Scope::shutdown`] once the run it
/// observes has finished.
#[derive(Debug)]
pub struct Scope {
    server: ServerHandle,
    sampler: Option<Sampler>,
    state: Arc<SamplerState>,
    dump_path: Option<String>,
}

impl Scope {
    /// Binds `addr`, preflights the dump path (when configured), and
    /// starts the sampler and server threads. Everything that can fail
    /// fails here, before the caller does any expensive work.
    ///
    /// # Errors
    ///
    /// A one-line diagnostic when the address cannot be bound or the
    /// dump path is not writable.
    pub fn start(addr: &str, config: ScopeConfig) -> Result<Scope, String> {
        let bound = server::bind(addr)?;
        if let Some(path) = &config.dump_path {
            detdiv_resil::AtomicFile::dry_run(path)
                .map_err(|e| format!("{DUMP_ENV}={path}: {e}"))?;
        }
        let sampler = Sampler::start(config.sampler);
        let state = sampler.state();
        let source_state = Arc::clone(&state);
        detdiv_obs::set_timeseries_source(Some(Box::new(move || source_state.summaries())));
        let server = bound.serve(Some(Arc::clone(&state)));
        // A live server means `/streams` is reachable: populate the
        // flight stream registry while serving, and report "serve" in
        // the `/healthz` armed-subsystem block.
        detdiv_flight::flags::set_serving(true);
        detdiv_flight::streams::set_enabled(true);
        Ok(Scope {
            server,
            sampler: Some(sampler),
            state,
            dump_path: config.dump_path,
        })
    }

    /// The address the exposition server is listening on (with the
    /// real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The sampler's shared state, for callers that want to inspect
    /// the rings directly.
    pub fn sampler_state(&self) -> Arc<SamplerState> {
        Arc::clone(&self.state)
    }

    /// Graceful shutdown: final sampler tick, server stopped and
    /// joined, the obs timeseries source uninstalled, and — when
    /// configured — the sampled series persisted as JSON.
    ///
    /// The timeseries source is removed *after* the final tick, so the
    /// caller should take its end-of-run `detdiv_obs::snapshot()`
    /// before calling this (the regeneration binary snapshots inside
    /// the report and shuts the scope down afterwards).
    ///
    /// # Errors
    ///
    /// A diagnostic when the dump file cannot be written; server and
    /// sampler are torn down regardless.
    pub fn shutdown(self) -> Result<(), String> {
        if let Some(sampler) = self.sampler {
            sampler.shutdown();
        }
        let summaries = self.state.summaries();
        self.server.shutdown();
        detdiv_obs::set_timeseries_source(None);
        detdiv_flight::flags::set_serving(false);
        // Streams stay registered (the engine holds its handles); the
        // registry just stops admitting new entries unless the flight
        // recorder itself is armed.
        detdiv_flight::streams::set_enabled(false);
        if let Some(path) = &self.dump_path {
            let json = serde_json::to_string_pretty(&summaries)
                .map_err(|e| format!("serialize sampled series: {e}"))?;
            detdiv_resil::AtomicFile::write(path, json.as_bytes())
                .map_err(|e| format!("write {path}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_start_fails_fast_on_bad_address() {
        let err = Scope::start("256.256.256.256:99999", ScopeConfig::default())
            .expect_err("invalid address rejected at start");
        assert!(err.contains("cannot bind"), "diagnostic: {err}");
    }

    #[test]
    fn scope_start_fails_fast_on_unwritable_dump_path() {
        let config = ScopeConfig {
            dump_path: Some("/nonexistent-detdiv-dir/dump.json".to_owned()),
            ..ScopeConfig::default()
        };
        let err = Scope::start("127.0.0.1:0", config).expect_err("bad dump path rejected");
        assert!(err.contains("DETDIV_SCOPE_DUMP"), "diagnostic: {err}");
    }

    #[test]
    fn scope_serves_and_shuts_down_cleanly() {
        let scope = Scope::start("127.0.0.1:0", ScopeConfig::default()).unwrap();
        let addr = scope.local_addr();
        let (status, body) = server::http_get(&addr, "/healthz", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\""));
        scope.shutdown().unwrap();
        // The port is released: a fresh bind on the same address works.
        let rebound = server::bind(&addr.to_string());
        assert!(rebound.is_ok(), "address released after shutdown");
    }
}

//! Exposition-format contract tests: the golden page, the validator,
//! and the scrape-equals-snapshot guarantee.

use detdiv_obs as obs;
use detdiv_scope::expo;
use detdiv_scope::{server, Scope, ScopeConfig};
use std::time::Duration;

const GOLDEN_PATH: &str = "tests/golden/metrics.prom";

/// Renders the fixed exposition page the golden file pins down.
fn golden_page() -> String {
    let mut page = expo::Exposition::new();
    page.emit_counter("eval/cases", 1234);
    page.emit_counter("detector/stide/windows_scored", 94000);
    let h = obs::Histogram::new();
    for v in [1u64, 2, 2, 5, 1000, 1_000_000] {
        h.record(v);
    }
    page.emit_histogram("span/report", &h);
    page.emit_labeled_gauge(
        "detdiv_rate_per_sec",
        "per-series counter rate from the two newest samples",
        "series",
        &[("detector/stide/windows_scored".to_owned(), 216.0)],
    );
    page.finish()
}

#[test]
fn golden_page_matches_committed_exposition() {
    let rendered = golden_page();
    if std::env::var("DETDIV_BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("bless golden file");
    }
    let committed = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, committed,
        "rendered exposition drifted from {GOLDEN_PATH}; \
         run with DETDIV_BLESS=1 to re-bless after an intentional change"
    );
}

#[test]
fn golden_page_is_valid_prometheus_text() {
    let parsed = expo::validate(include_str!("golden/metrics.prom"))
        .expect("committed golden page validates");
    assert_eq!(parsed.value_u64("detdiv_eval_cases_total"), Some(1234));
    assert_eq!(
        parsed.value_u64("detdiv_detector_stide_windows_scored_total"),
        Some(94000)
    );
    assert_eq!(parsed.value_u64("detdiv_span_report_count"), Some(6));
    assert_eq!(parsed.value_u64("detdiv_span_report_sum"), Some(1_001_010));
    // Families: 2 counters, 1 histogram, 3 quantile gauges, 1 rate gauge.
    assert_eq!(parsed.families.len(), 7);
}

/// The ISSUE acceptance test: counters scraped from a live `/metrics`
/// page are exactly the values an obs snapshot reports, and every
/// snapshot counter appears on the page.
#[test]
fn scraped_counters_equal_snapshot_counters() {
    // Unique prefix so concurrent tests in other binaries can't touch
    // these counters between the snapshot and the scrape.
    obs::incr_counter("expoeq/alpha", 7);
    obs::incr_counter("expoeq/beta", 123_456_789);
    obs::incr_counter("expoeq/gamma", 0);
    obs::record_nanos("expoeq/latency", 1500);

    let scope = Scope::start("127.0.0.1:0", ScopeConfig::default()).expect("scope starts");
    let addr = scope.local_addr();
    let (status, body) =
        server::http_get(&addr, "/metrics", Duration::from_secs(2)).expect("scrape works");
    assert_eq!(status, 200);
    let parsed = expo::validate(&body).expect("live page validates");
    let snapshot = obs::snapshot();
    scope.shutdown().expect("scope shuts down");

    let mut compared = 0;
    for (name, value) in &snapshot.counters {
        let metric = expo::counter_metric_name(name);
        let scraped = parsed
            .value_u64(&metric)
            .unwrap_or_else(|| panic!("snapshot counter {name} missing from /metrics as {metric}"));
        if name.starts_with("expoeq/") {
            assert_eq!(
                scraped, *value,
                "scraped {metric} disagrees with snapshot {name}"
            );
            compared += 1;
        }
    }
    assert_eq!(compared, 3, "all three unique counters compared");
    // The histogram shows up as a full family with exact count.
    assert_eq!(
        parsed.value_u64(&format!(
            "{}_count",
            expo::histogram_metric_name("expoeq/latency")
        )),
        Some(snapshot.histogram("expoeq/latency").unwrap().count)
    );
}

//! End-to-end tests of the exposition server: routes, error paths,
//! sampler wiring into snapshots, and the shutdown dump.
//!
//! `Scope::start` installs the process-global obs timeseries source,
//! so tests that construct a `Scope` serialize on one mutex.

use detdiv_obs as obs;
use detdiv_scope::{expo, sampler, server, SamplerConfig, Scope, ScopeConfig};
use std::io::{Read as _, Write as _};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SCOPE_LOCK: Mutex<()> = Mutex::new(());

fn fast_config() -> ScopeConfig {
    ScopeConfig {
        sampler: SamplerConfig {
            interval: Duration::from_millis(10),
            ..SamplerConfig::default()
        },
        dump_path: None,
    }
}

#[test]
fn all_routes_answer_with_their_content_types() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::incr_counter("srvtest/requests", 3);
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let timeout = Duration::from_secs(2);

    let (status, metrics) = server::http_get(&addr, "/metrics", timeout).unwrap();
    assert_eq!(status, 200);
    let parsed = expo::validate(&metrics).expect("metrics page validates");
    assert!(parsed.value_u64("detdiv_srvtest_requests_total").unwrap() >= 3);
    assert!(parsed.value_of("scope_uptime_seconds").is_some());
    assert!(parsed.value_of("scope_telemetry_enabled").is_some());

    let (status, health) = server::http_get(&addr, "/healthz", timeout).unwrap();
    assert_eq!(status, 200);
    let value = serde_json::from_str_value(&health).expect("healthz is JSON");
    assert_eq!(
        value.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "healthz reports ok: {health}"
    );
    assert!(value.get("uptime_seconds").is_some());
    assert!(value.get("scrapes_total").is_some());

    let (status, snapshot) = server::http_get(&addr, "/snapshot.json", timeout).unwrap();
    assert_eq!(status, 200);
    let snap: obs::TelemetrySnapshot =
        serde_json::from_str(&snapshot).expect("snapshot.json deserializes");
    assert!(snap.counter("srvtest/requests") >= 3);

    let (status, profile) = server::http_get(&addr, "/profilez", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(profile.starts_with("detdiv self-profile"));

    let (status, _) = server::http_get(&addr, "/nope", timeout).unwrap();
    assert_eq!(status, 404);
    // Query strings are ignored for routing.
    let (status, _) = server::http_get(&addr, "/metrics?format=raw", timeout).unwrap();
    assert_eq!(status, 200);

    scope.shutdown().expect("clean shutdown");
}

#[test]
fn non_get_methods_are_rejected() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let mut stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)).unwrap();
    stream
        .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.starts_with("HTTP/1.1 405"),
        "POST rejected: {response}"
    );
    scope.shutdown().unwrap();
}

#[test]
fn sampler_feeds_rates_and_snapshot_timeseries_while_armed() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();

    // Generate load the sampler can see across several ticks.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut sampled = false;
    while Instant::now() < deadline {
        obs::incr_counter("detector/srvtest/windows_scored", 500);
        std::thread::sleep(Duration::from_millis(15));
        if scope.sampler_state().ticks() >= 4 {
            sampled = true;
            break;
        }
    }
    assert!(sampled, "sampler ticked while load ran");

    // While armed, snapshots embed the sampled series.
    let snap = obs::snapshot();
    assert!(
        !snap.timeseries.is_empty(),
        "armed scope feeds the snapshot timeseries section"
    );
    assert!(
        snap.timeseries
            .iter()
            .any(|s| s.name == sampler::EVENTS_SERIES),
        "aggregate events series present"
    );
    let series = snap
        .timeseries
        .iter()
        .find(|s| s.name == "detector/srvtest/windows_scored")
        .expect("sampled detector counter present");
    assert!(!series.samples.is_empty());
    assert_eq!(series.interval_ms, 10);

    // And /metrics carries the rate gauges.
    let (_, metrics) = server::http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap();
    let parsed = expo::validate(&metrics).unwrap();
    assert!(parsed.value_of("detdiv_events_per_sec").is_some());
    assert!(
        metrics.contains("detdiv_rate_per_sec{series=\"detector/srvtest/windows_scored\"}"),
        "per-series rate gauge exposed"
    );

    scope.shutdown().expect("clean shutdown");
    // Disarmed: the timeseries section is empty again.
    assert!(
        obs::snapshot().timeseries.is_empty(),
        "shutdown uninstalls the snapshot source"
    );
}

#[test]
fn shutdown_dump_persists_sampled_series_as_json() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("detdiv-scope-dump-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("timeseries.json");
    let config = ScopeConfig {
        dump_path: Some(path.to_string_lossy().into_owned()),
        ..fast_config()
    };
    let scope = Scope::start("127.0.0.1:0", config).expect("scope starts");
    obs::incr_counter("detector/dumptest/windows_scored", 7);
    let deadline = Instant::now() + Duration::from_secs(5);
    while scope.sampler_state().ticks() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    scope.shutdown().expect("shutdown writes the dump");
    let raw = std::fs::read_to_string(&path).expect("dump file exists");
    let series: Vec<obs::SeriesSummary> =
        serde_json::from_str(&raw).expect("dump deserializes as series list");
    assert!(
        series.iter().any(|s| s.name == sampler::EVENTS_SERIES),
        "dump includes the aggregate series"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flight_routes_serve_registry_and_recorder_views() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let timeout = Duration::from_secs(2);

    // Serving enables the flight stream registry.
    assert!(detdiv_flight::streams::enabled());
    let hash = 0x5eed_5eed_5eed_5eedu64;
    let stats = detdiv_flight::streams::handle(hash).expect("registry admits streams");
    detdiv_flight::streams::label(hash, "login-node");
    stats.on_event(0);
    stats.on_emit(2.5); // >= ALARM_SCORE: counts as an alarm

    let (status, body) = server::http_get(&addr, "/streams", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"label\":\"login-node\""), "labeled: {body}");
    assert!(body.contains("\"alarms\":1"), "alarm counted: {body}");
    assert!(body.contains(&format!("\"hash\":\"{hash:016x}\"")));
    assert!(body.contains("\"degraded_streams\": 0"));

    let (status, body) = server::http_get(&addr, "/flightz", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(
        body.starts_with("flight recorder: armed="),
        "status header: {body}"
    );

    // /healthz reports the armed-subsystem block; "serve" is on while
    // this scope runs.
    let (status, health) = server::http_get(&addr, "/healthz", timeout).unwrap();
    assert_eq!(status, 200);
    let value = serde_json::from_str_value(&health).expect("healthz is JSON");
    let subsystems = value.get("subsystems").expect("subsystems block present");
    assert_eq!(
        subsystems.get("serve"),
        Some(&serde_json::Value::Bool(true)),
        "serve armed while scope runs: {health}"
    );
    assert!(value.get("degraded_streams").is_some());

    scope.shutdown().expect("clean shutdown");
    detdiv_flight::streams::reset();
}

#[test]
fn not_found_hint_lists_every_endpoint() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let (status, body) = server::http_get(&addr, "/nope", Duration::from_secs(2)).unwrap();
    assert_eq!(status, 404);
    assert!(
        body.contains("no route for /nope"),
        "names the miss: {body}"
    );
    for path in [
        "/metrics",
        "/healthz",
        "/snapshot.json",
        "/profilez",
        "/streams",
        "/flightz",
        "/servez",
        "/guardz",
    ] {
        assert!(body.contains(path), "404 hint lists {path}: {body}");
    }
    scope.shutdown().unwrap();
}

#[test]
fn servez_reports_the_registered_ingest_service() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let timeout = Duration::from_secs(2);

    // No service registered yet.
    let (status, body) = server::http_get(&addr, "/servez", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"registered\":false"), "{body}");

    // Register a live service, push some traffic, and scrape again.
    let service = detdiv_serve::IngestService::new(detdiv_serve::ServeConfig::new(2, 8), || {
        vec![Box::new(detdiv_stream::Ewma::new(0.2, 2)) as Box<dyn detdiv_stream::StreamDetector>]
    });
    service.register_introspection();
    for i in 0..8u64 {
        service
            .enqueue(detdiv_stream::SignalContext::new(
                i,
                detdiv_stream::hash_stream_id("scoped"),
                detdiv_sequence::Symbol::new(0),
                1.0,
            ))
            .unwrap();
    }
    service.drain(&detdiv_serve::NullSink);
    let (status, body) = server::http_get(&addr, "/servez", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"registered\":true"), "{body}");
    assert!(body.contains("\"shards\":2"), "{body}");
    assert!(body.contains("\"processed\":8"), "{body}");

    // Dropping the service clears the registration.
    drop(service);
    let (_, body) = server::http_get(&addr, "/servez", timeout).unwrap();
    assert!(body.contains("\"registered\":false"), "{body}");
    scope.shutdown().unwrap();
}

#[test]
fn guardz_reports_the_registered_guard() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let timeout = Duration::from_secs(2);

    // No guarded service registered yet.
    let (status, body) = server::http_get(&addr, "/guardz", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"registered\":false"), "{body}");

    let service = detdiv_serve::IngestService::with_guard(
        detdiv_serve::ServeConfig::new(2, 8).gated(detdiv_serve::Tier1Config::default()),
        detdiv_guard::GuardConfig::default(),
        || {
            vec![Box::new(detdiv_stream::Ewma::new(0.2, 2))
                as Box<dyn detdiv_stream::StreamDetector>]
        },
    )
    .expect("guarded service builds");
    service.register_introspection();
    service.drain(&detdiv_serve::NullSink);
    let (status, body) = server::http_get(&addr, "/guardz", timeout).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"registered\":true"), "{body}");
    assert!(body.contains("\"level\":\"full\""), "{body}");

    // Dropping the service clears the registration.
    drop(service);
    let (_, body) = server::http_get(&addr, "/guardz", timeout).unwrap();
    assert!(body.contains("\"registered\":false"), "{body}");
    scope.shutdown().unwrap();
}

#[test]
fn oversized_request_heads_answer_400() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let mut stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)).unwrap();
    // A single request line far past MAX_REQUEST_BYTES, never
    // terminated by a blank line.
    let huge = format!("GET /{} HTTP/1.1\r\n", "x".repeat(10 * 1024));
    stream.write_all(huge.as_bytes()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "oversized head rejected: {response}"
    );
    scope.shutdown().unwrap();
}

#[test]
fn unknown_methods_are_rejected_with_405() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    let mut stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)).unwrap();
    stream
        .write_all(b"BREW /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.starts_with("HTTP/1.1 405"),
        "unknown method rejected: {response}"
    );
    scope.shutdown().unwrap();
}

#[test]
fn slowloris_connections_time_out_without_wedging_the_server() {
    let _guard = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scope = Scope::start("127.0.0.1:0", fast_config()).expect("scope starts");
    let addr = scope.local_addr();
    // Trickle a few bytes and stall: the server's read timeout must
    // end the connection rather than block the accept loop forever.
    let mut stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(2)).unwrap();
    stream.write_all(b"GET /hea").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response); // server closes after IO_TIMEOUT
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "stalled connection released within the I/O timeout"
    );
    // The accept loop survived: a well-formed request still answers.
    let (status, _) = server::http_get(&addr, "/healthz", Duration::from_secs(2)).unwrap();
    assert_eq!(status, 200);
    scope.shutdown().unwrap();
}

//! Rule-induction substrate for the `detdiv` workspace.
//!
//! Warrender, Forrest & Pearlmutter (1999) — the paper's reference \[20\]
//! — evaluated four data models over system-call streams: stide,
//! t-stide, a hidden Markov model, and **RIPPER**, a sequential-covering
//! rule learner whose rules predict the next call from the preceding
//! window. This crate supplies that last model as an extension baseline:
//!
//! * [`Example`] / [`examples_from_stream`] — weighted unique
//!   (context, next) training pairs;
//! * [`learn_rules`] — RIPPER-style induction: rarest-class-first
//!   sequential covering with FOIL-gain rule growth (see the module docs
//!   for the documented simplifications);
//! * [`RuleSet`] / [`Rule`] — the ordered rule list with confidences and
//!   a default class.
//!
//! ```
//! use detdiv_rules::{examples_from_stream, learn_rules, LearnConfig};
//! use detdiv_sequence::{symbols, Symbol};
//!
//! let mut stream = Vec::new();
//! for _ in 0..50 { stream.extend(symbols(&[3, 1, 4, 1, 5])); }
//! let rules = learn_rules(&examples_from_stream(&stream, 2), &LearnConfig::default()).unwrap();
//! // "ctx ends (3, 1)" predicts 4; "(1, 5)" predicts 3; etc.
//! assert_eq!(rules.predict(&symbols(&[3, 1])).class, Symbol::new(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod error;
mod learn;
mod rule;

pub use error::RuleError;
pub use learn::{examples_from_stream, learn_rules, Example, LearnConfig};
pub use rule::{Condition, Rule, RulePrediction, RuleSet};

//! Sequential-covering rule induction with FOIL-gain growth.
//!
//! A compact RIPPER-style learner specialised to the detectors'
//! workload: contexts are fixed-width symbol windows, classes are next
//! symbols, and training examples carry occurrence weights so the
//! learner runs on the weighted *unique* (context, next) pairs of a
//! stream rather than on the raw stream (the same trick the neural
//! detector uses; equivalent and far cheaper on repetitive data).
//!
//! Simplifications relative to full RIPPER, documented per DESIGN.md:
//! classes are covered rarest-first and rules grown by FOIL gain exactly
//! as in RIPPER, but the incremental-reduced-error pruning phase is
//! replaced by acceptance thresholds (minimum confidence and coverage),
//! which is sufficient for the near-deterministic streams of this study.

use std::collections::HashMap;

use detdiv_sequence::Symbol;
use serde::{Deserialize, Serialize};

use crate::error::RuleError;
use crate::rule::{Condition, Rule, RuleSet};

/// One weighted training example: a context window and the symbol that
/// followed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// The context window (fixed width across the training set).
    pub context: Vec<Symbol>,
    /// The class: the next symbol observed after the context.
    pub class: Symbol,
    /// Occurrence weight (a count, for stream-derived examples).
    pub weight: f64,
}

/// Learning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnConfig {
    /// Rules below this Laplace confidence are rejected.
    pub min_confidence: f64,
    /// Rules covering less than this weighted count of correct examples
    /// are rejected.
    pub min_coverage: f64,
    /// Cap on rules per class (a runaway guard; never reached on the
    /// study's data).
    pub max_rules_per_class: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            min_confidence: 0.6,
            min_coverage: 2.0,
            max_rules_per_class: 32,
        }
    }
}

/// Builds the weighted unique-example set of a stream at context width
/// `width`: one [`Example`] per distinct (context, next) pair, weighted
/// by its occurrence count.
///
/// Returns an empty vector when the stream is shorter than `width + 1`.
pub fn examples_from_stream(stream: &[Symbol], width: usize) -> Vec<Example> {
    if width == 0 || stream.len() <= width {
        return Vec::new();
    }
    let mut counts: HashMap<(Vec<Symbol>, Symbol), f64> = HashMap::new();
    for w in stream.windows(width + 1) {
        *counts.entry((w[..width].to_vec(), w[width])).or_insert(0.0) += 1.0;
    }
    let mut examples: Vec<Example> = counts
        .into_iter()
        .map(|((context, class), weight)| Example {
            context,
            class,
            weight,
        })
        .collect();
    // Hash order is arbitrary; sort for reproducible learning.
    examples.sort_by(|a, b| a.context.cmp(&b.context).then(a.class.cmp(&b.class)));
    examples
}

/// Laplace precision of weighted (positive, total) coverage.
fn laplace(p: f64, total: f64) -> f64 {
    (p + 1.0) / (total + 2.0)
}

/// Weighted coverage of a condition set over `examples`, restricted to
/// indices in `subset` (or all, if `None`): returns (positives covered,
/// total covered) for `class`.
fn coverage(
    examples: &[Example],
    active: &[bool],
    conditions: &[Condition],
    class: Symbol,
    use_active: bool,
) -> (f64, f64) {
    let mut pos = 0.0;
    let mut total = 0.0;
    for (i, e) in examples.iter().enumerate() {
        if use_active && !active[i] && e.class == class {
            // Already-covered positives don't count toward growth...
            continue;
        }
        if conditions.iter().all(|c| e.context[c.position] == c.symbol) {
            total += e.weight;
            if e.class == class {
                pos += e.weight;
            }
        }
    }
    (pos, total)
}

/// Learns an ordered rule set from weighted examples.
///
/// # Errors
///
/// * [`RuleError::EmptyTraining`] on an empty example set;
/// * [`RuleError::InconsistentWidth`] if examples disagree on context
///   width;
/// * [`RuleError::InvalidParameter`] for out-of-range thresholds.
///
/// # Examples
///
/// ```
/// use detdiv_rules::{examples_from_stream, learn_rules, LearnConfig};
/// use detdiv_sequence::symbols;
///
/// let mut stream = Vec::new();
/// for _ in 0..50 { stream.extend(symbols(&[0, 1, 2, 3])); }
/// let examples = examples_from_stream(&stream, 2);
/// let rules = learn_rules(&examples, &LearnConfig::default()).unwrap();
/// let p = rules.predict(&symbols(&[0, 1]));
/// assert_eq!(p.class, symbols(&[2])[0]);
/// assert!(p.confidence > 0.9);
/// ```
pub fn learn_rules(examples: &[Example], config: &LearnConfig) -> Result<RuleSet, RuleError> {
    if examples.is_empty() {
        return Err(RuleError::EmptyTraining);
    }
    if !(config.min_confidence > 0.0 && config.min_confidence < 1.0) {
        return Err(RuleError::InvalidParameter {
            name: "min_confidence",
        });
    }
    if config.min_coverage < 0.0 {
        return Err(RuleError::InvalidParameter {
            name: "min_coverage",
        });
    }
    let width = examples[0].context.len();
    for e in examples {
        if e.context.len() != width {
            return Err(RuleError::InconsistentWidth {
                expected: width,
                found: e.context.len(),
            });
        }
    }

    // Class inventory with weighted frequencies.
    let mut class_weight: HashMap<Symbol, f64> = HashMap::new();
    for e in examples {
        *class_weight.entry(e.class).or_insert(0.0) += e.weight;
    }
    let total_weight: f64 = class_weight.values().sum();
    let mut classes: Vec<(Symbol, f64)> = class_weight.iter().map(|(&c, &w)| (c, w)).collect();
    // RIPPER covers classes rarest-first, leaving the most frequent as
    // the implicit default.
    classes.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite weights")
            .then(a.0.cmp(&b.0))
    });
    let (default_class, default_weight) = *classes.last().expect("nonempty");

    // The symbol vocabulary for candidate conditions.
    let mut vocab: Vec<Symbol> = examples
        .iter()
        .flat_map(|e| e.context.iter().copied())
        .collect();
    vocab.sort();
    vocab.dedup();

    let mut rules: Vec<Rule> = Vec::new();
    // Unlike classic RIPPER, the majority class is covered too (the
    // detector needs confident predictions for normal continuations);
    // it additionally serves as the default for unmatched contexts.
    for &(class, _) in classes.iter() {
        let mut active: Vec<bool> = examples.iter().map(|e| e.class == class).collect();
        for _ in 0..config.max_rules_per_class {
            let remaining: f64 = examples
                .iter()
                .enumerate()
                .filter(|(i, _)| active[*i])
                .map(|(_, e)| e.weight)
                .sum();
            if remaining < config.min_coverage {
                break;
            }
            // Grow one rule by FOIL gain.
            let mut conditions: Vec<Condition> = Vec::new();
            loop {
                let (p_cur, t_cur) = coverage(examples, &active, &conditions, class, true);
                if p_cur <= 0.0 || p_cur >= t_cur {
                    break; // pure or empty
                }
                let prec_cur = laplace(p_cur, t_cur);
                let mut best: Option<(Condition, f64)> = None;
                for position in 0..width {
                    if conditions.iter().any(|c| c.position == position) {
                        continue;
                    }
                    for &symbol in &vocab {
                        let cand = Condition { position, symbol };
                        let mut grown = conditions.clone();
                        grown.push(cand);
                        let (p_new, t_new) = coverage(examples, &active, &grown, class, true);
                        if p_new <= 0.0 {
                            continue;
                        }
                        let gain = p_new * (laplace(p_new, t_new).ln() - prec_cur.ln());
                        if gain > best.as_ref().map(|&(_, g)| g).unwrap_or(1e-12) {
                            best = Some((cand, gain));
                        }
                    }
                }
                match best {
                    Some((cond, _)) => conditions.push(cond),
                    None => break,
                }
            }
            if conditions.is_empty() {
                break;
            }
            // Accept against the full training set.
            let (correct, covered) = coverage(examples, &active, &conditions, class, false);
            let rule = Rule {
                conditions,
                class,
                correct,
                covered,
            };
            if rule.correct < config.min_coverage || rule.confidence() < config.min_confidence {
                break;
            }
            // Retire the positives this rule covers.
            for (i, e) in examples.iter().enumerate() {
                if active[i] && rule.matches(&e.context) {
                    active[i] = false;
                }
            }
            rules.push(rule);
        }
    }

    // Highest-confidence rules decide first.
    rules.sort_by(|a, b| {
        b.confidence()
            .partial_cmp(&a.confidence())
            .expect("finite confidences")
            .then(b.covered.partial_cmp(&a.covered).expect("finite coverage"))
            .then(a.class.cmp(&b.class))
    });

    Ok(RuleSet {
        width,
        rules,
        default_class,
        default_confidence: default_weight / total_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_stream(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..reps {
            v.extend(symbols(&[0, 1, 2, 3]));
        }
        v
    }

    #[test]
    fn examples_aggregate_counts() {
        let s = cycle_stream(10);
        let ex = examples_from_stream(&s, 2);
        assert_eq!(ex.len(), 4); // 4 distinct (context, next) triples
        let total: f64 = ex.iter().map(|e| e.weight).sum();
        assert_eq!(total, (s.len() - 2) as f64);
        assert!(examples_from_stream(&s[..2], 2).is_empty());
        assert!(examples_from_stream(&s, 0).is_empty());
    }

    #[test]
    fn learns_the_cycle() {
        let ex = examples_from_stream(&cycle_stream(50), 2);
        let rules = learn_rules(&ex, &LearnConfig::default()).unwrap();
        for (a, b, next) in [(0u32, 1u32, 2u32), (1, 2, 3), (2, 3, 0)] {
            let p = rules.predict(&symbols(&[a, b]));
            assert_eq!(p.class, Symbol::new(next), "({a},{b})");
            assert!(p.confidence > 0.9, "({a},{b}) confidence {}", p.confidence);
        }
    }

    #[test]
    fn noisy_minority_does_not_override() {
        // 0 -> 1 dominates; 0 -> 2 occurs rarely.
        let mut ex = examples_from_stream(&cycle_stream(100), 1);
        ex.push(Example {
            context: symbols(&[0]),
            class: Symbol::new(2),
            weight: 2.0,
        });
        let rules = learn_rules(&ex, &LearnConfig::default()).unwrap();
        let p = rules.predict(&symbols(&[0]));
        assert_eq!(p.class, Symbol::new(1));
    }

    #[test]
    fn default_class_is_majority() {
        let ex = vec![
            Example {
                context: symbols(&[0]),
                class: Symbol::new(1),
                weight: 10.0,
            },
            Example {
                context: symbols(&[1]),
                class: Symbol::new(1),
                weight: 10.0,
            },
            Example {
                context: symbols(&[2]),
                class: Symbol::new(5),
                weight: 1.0,
            },
        ];
        let rules = learn_rules(&ex, &LearnConfig::default()).unwrap();
        assert_eq!(rules.default_class(), Symbol::new(1));
        // Unseen context falls back to the default.
        let p = rules.predict(&symbols(&[7]));
        assert_eq!(p.class, Symbol::new(1));
        assert!(p.rule.is_none());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            learn_rules(&[], &LearnConfig::default()),
            Err(RuleError::EmptyTraining)
        ));
        let ex = vec![
            Example {
                context: symbols(&[0]),
                class: Symbol::new(1),
                weight: 1.0,
            },
            Example {
                context: symbols(&[0, 1]),
                class: Symbol::new(1),
                weight: 1.0,
            },
        ];
        assert!(matches!(
            learn_rules(&ex, &LearnConfig::default()),
            Err(RuleError::InconsistentWidth { .. })
        ));
        let ex = examples_from_stream(&cycle_stream(5), 1);
        assert!(matches!(
            learn_rules(
                &ex,
                &LearnConfig {
                    min_confidence: 1.0,
                    ..LearnConfig::default()
                }
            ),
            Err(RuleError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn learning_is_deterministic() {
        let ex = examples_from_stream(&cycle_stream(30), 3);
        let a = learn_rules(&ex, &LearnConfig::default()).unwrap();
        let b = learn_rules(&ex, &LearnConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_condition_rules_when_needed() {
        // Class depends on two positions: next = 1 iff ctx = (0, 0);
        // every single-position test is impure.
        let ex = vec![
            Example {
                context: symbols(&[0, 0]),
                class: Symbol::new(1),
                weight: 10.0,
            },
            Example {
                context: symbols(&[0, 1]),
                class: Symbol::new(2),
                weight: 10.0,
            },
            Example {
                context: symbols(&[1, 0]),
                class: Symbol::new(2),
                weight: 10.0,
            },
            Example {
                context: symbols(&[1, 1]),
                class: Symbol::new(2),
                weight: 10.0,
            },
        ];
        let rules = learn_rules(&ex, &LearnConfig::default()).unwrap();
        let p = rules.predict(&symbols(&[0, 0]));
        assert_eq!(p.class, Symbol::new(1));
        assert_eq!(rules.predict(&symbols(&[0, 1])).class, Symbol::new(2));
        // The class-1 rule must test both positions.
        let rule_for_1 = rules
            .rules()
            .iter()
            .find(|r| r.class == Symbol::new(1))
            .expect("class-1 rule learned");
        assert_eq!(rule_for_1.conditions.len(), 2);
    }
}

//! Error types for the rule-induction substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from rule learning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuleError {
    /// The training set was empty.
    EmptyTraining,
    /// Examples disagreed on the context width.
    InconsistentWidth {
        /// Width of the first example.
        expected: usize,
        /// Width found later.
        found: usize,
    },
    /// A learning parameter was out of range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::EmptyTraining => write!(f, "rule learning requires at least one example"),
            RuleError::InconsistentWidth { expected, found } => {
                write!(
                    f,
                    "example width {found} differs from the first example's {expected}"
                )
            }
            RuleError::InvalidParameter { name } => write!(f, "invalid parameter: {name}"),
        }
    }
}

impl Error for RuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RuleError::EmptyTraining.to_string().contains("example"));
        assert!(RuleError::InconsistentWidth {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("width 2"));
        assert!(RuleError::InvalidParameter {
            name: "min_coverage"
        }
        .to_string()
        .contains("min_coverage"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<RuleError>();
    }
}

//! Rules and rule sets.

use detdiv_sequence::Symbol;
use serde::{Deserialize, Serialize};

/// One positional equality test: `context[position] == symbol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// Index into the context window.
    pub position: usize,
    /// Required symbol at that index.
    pub symbol: Symbol,
}

/// A conjunctive classification rule: if every condition holds for a
/// context, predict `class`.
///
/// `correct` / `covered` are the (weighted) training statistics the rule
/// was accepted with; [`Rule::confidence`] is their ratio — the
/// Laplace-smoothed precision RIPPER-style learners rank rules by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The conjunction of positional tests.
    pub conditions: Vec<Condition>,
    /// The predicted next symbol.
    pub class: Symbol,
    /// Weighted count of covered examples with the predicted class.
    pub correct: f64,
    /// Weighted count of all covered examples.
    pub covered: f64,
}

impl Rule {
    /// Whether this rule's conditions all hold for `context`.
    ///
    /// Contexts shorter than a condition's position never match.
    pub fn matches(&self, context: &[Symbol]) -> bool {
        self.conditions
            .iter()
            .all(|c| context.get(c.position) == Some(&c.symbol))
    }

    /// Laplace-smoothed precision `(correct + 1) / (covered + 2)`.
    pub fn confidence(&self) -> f64 {
        (self.correct + 1.0) / (self.covered + 2.0)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.conditions.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write!(f, "ctx[{}]={}", c.position, c.symbol)?;
            }
        }
        write!(f, " => next={} ({:.3})", self.class, self.confidence())
    }
}

/// An ordered rule list with a default class, produced by
/// [`crate::learn_rules`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    pub(crate) width: usize,
    pub(crate) rules: Vec<Rule>,
    pub(crate) default_class: Symbol,
    pub(crate) default_confidence: f64,
}

/// The outcome of consulting a rule set for one context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RulePrediction {
    /// The predicted next symbol.
    pub class: Symbol,
    /// Confidence of the deciding rule (or the default class's prior).
    pub confidence: f64,
    /// Index of the deciding rule in [`RuleSet::rules`], or `None` for
    /// the default class.
    pub rule: Option<usize>,
}

impl RuleSet {
    /// The context width the rules were learned over.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The learned rules, highest-confidence first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The fallback class for contexts no rule matches.
    pub fn default_class(&self) -> Symbol {
        self.default_class
    }

    /// Predicts the next symbol for `context`: the first (i.e.
    /// highest-confidence) matching rule wins; otherwise the default
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != self.width()`.
    pub fn predict(&self, context: &[Symbol]) -> RulePrediction {
        assert_eq!(context.len(), self.width, "context width mismatch");
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(context) {
                return RulePrediction {
                    class: rule.class,
                    confidence: rule.confidence(),
                    rule: Some(i),
                };
            }
        }
        RulePrediction {
            class: self.default_class,
            confidence: self.default_confidence,
            rule: None,
        }
    }
}

impl std::fmt::Display for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "rule-set(width={}, rules={})",
            self.width,
            self.rules.len()
        )?;
        for r in &self.rules {
            writeln!(f, "  {r}")?;
        }
        write!(
            f,
            "  default => next={} ({:.3})",
            self.default_class, self.default_confidence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol::new(i)
    }

    fn rule(conds: &[(usize, u32)], class: u32, correct: f64, covered: f64) -> Rule {
        Rule {
            conditions: conds
                .iter()
                .map(|&(position, s)| Condition {
                    position,
                    symbol: sym(s),
                })
                .collect(),
            class: sym(class),
            correct,
            covered,
        }
    }

    #[test]
    fn matching_and_confidence() {
        let r = rule(&[(0, 1), (2, 3)], 4, 98.0, 100.0);
        assert!(r.matches(&[sym(1), sym(9), sym(3)]));
        assert!(!r.matches(&[sym(1), sym(9), sym(4)]));
        assert!(!r.matches(&[sym(1)])); // too short
        assert!((r.confidence() - 99.0 / 102.0).abs() < 1e-12);
    }

    #[test]
    fn empty_conditions_match_everything() {
        let r = rule(&[], 2, 5.0, 10.0);
        assert!(r.matches(&[sym(0), sym(1)]));
        assert!(r.matches(&[]));
    }

    #[test]
    fn rule_set_prediction_order_and_default() {
        let set = RuleSet {
            width: 2,
            rules: vec![
                rule(&[(1, 5)], 7, 99.0, 100.0),
                rule(&[(0, 1)], 2, 50.0, 100.0),
            ],
            default_class: sym(0),
            default_confidence: 0.4,
        };
        // First rule wins when both match.
        let p = set.predict(&[sym(1), sym(5)]);
        assert_eq!(p.class, sym(7));
        assert_eq!(p.rule, Some(0));
        // Second rule catches what the first misses.
        let p = set.predict(&[sym(1), sym(6)]);
        assert_eq!(p.class, sym(2));
        assert_eq!(p.rule, Some(1));
        // Default otherwise.
        let p = set.predict(&[sym(3), sym(3)]);
        assert_eq!(p.class, sym(0));
        assert_eq!(p.rule, None);
        assert_eq!(p.confidence, 0.4);
    }

    #[test]
    #[should_panic(expected = "context width mismatch")]
    fn predict_checks_width() {
        let set = RuleSet {
            width: 2,
            rules: vec![],
            default_class: sym(0),
            default_confidence: 0.5,
        };
        let _ = set.predict(&[sym(1)]);
    }

    #[test]
    fn display_formats() {
        let r = rule(&[(0, 1)], 2, 9.0, 10.0);
        let text = r.to_string();
        assert!(text.contains("ctx[0]=1"));
        assert!(text.contains("next=2"));
        let set = RuleSet {
            width: 1,
            rules: vec![r],
            default_class: sym(0),
            default_confidence: 0.5,
        };
        assert!(set.to_string().contains("rules=1"));
    }
}

//! `detdiv-par`: a work-stealing thread pool with a **deterministic**
//! parallel-map API, free of third-party dependencies.
//!
//! The only dependency is the in-workspace `detdiv-obs` crate (itself
//! std-only): workers name their trace threads, emit steal/chunk
//! instants, and time their busy intervals through it. Those hooks are
//! fire-and-forget — scheduling, result slots, and error selection
//! depend on nothing but the standard library.
//!
//! Every cell of the paper's (AS × DW) detection-coverage grid — train
//! one detector at one window, score it against one anomaly size — is
//! embarrassingly parallel. This crate is the substrate the evaluation
//! pipeline fans that work out on, under one hard guarantee: **output
//! bytes never depend on the worker count or on scheduling**.
//!
//! * **Scoped workers** — each map call spawns its workers with
//!   [`std::thread::scope`], so jobs may borrow the corpus and config
//!   from the caller's stack; workers are joined before the call
//!   returns.
//! * **Chunked job queue with atomic cursors** — job indices are
//!   partitioned into contiguous per-worker ranges; a worker drains its
//!   own range first, then steals chunks from its peers' ranges.
//! * **Pre-indexed result slots** — the output vector's `i`-th element
//!   is `f(&items[i])` whatever the interleaving; fallible maps return
//!   the error of the smallest failing index.
//! * **Panic propagation** — a panicking job is re-raised on the caller
//!   after all workers are joined; the pool is not poisoned.
//! * **`DETDIV_THREADS` override** — resolution order is programmatic
//!   [`Pool::set_threads`], then the `DETDIV_THREADS` environment
//!   variable, then available parallelism; `threads = 1` short-circuits
//!   to an inline loop on the calling thread (no threads spawned).
//! * **Nested maps run inline** — a parallel map issued from inside a
//!   pool job executes serially on that worker, so fan-outs compose
//!   without spawning a second tier of threads.
//!
//! # Example
//!
//! ```
//! // The global pool honours DETDIV_THREADS; a local pool pins it.
//! let doubled = detdiv_par::par_map(&[1u64, 2, 3], |&x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//!
//! let pool = detdiv_par::Pool::with_threads(2);
//! let parity: Result<Vec<bool>, String> =
//!     pool.try_map(&[2u64, 4, 6], |&x| Ok(x % 2 == 0));
//! assert_eq!(parity.unwrap(), vec![true, true, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod pool;
mod queue;
mod stats;

pub use pool::{inside_pool, Pool};
pub use stats::{PoolStats, WorkerStats};

// Re-exported so callers of the supervised maps can name the policy
// and outcome types without depending on `detdiv-resil` directly.
pub use detdiv_resil::{CellOutcome, RetryPolicy};

use std::sync::OnceLock;

/// The process-global pool used by [`par_map`] / [`par_try_map`] and by
/// the evaluation pipeline's fan-outs.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::new)
}

/// The worker count the global pool would use for its next map
/// (`set_threads` override, then `DETDIV_THREADS`, then available
/// parallelism).
pub fn configured_threads() -> usize {
    global().threads()
}

/// [`Pool::map`] on the global pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().map(items, f)
}

/// [`Pool::try_map`] on the global pool.
pub fn par_try_map<T, R, E>(items: &[T], f: impl Fn(&T) -> Result<R, E> + Sync) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
{
    global().try_map(items, f)
}

/// [`Pool::map_supervised`] on the global pool.
pub fn par_map_supervised<T, R>(
    items: &[T],
    policy: &RetryPolicy,
    site_of: impl Fn(usize, &T) -> String + Sync,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<CellOutcome<R>>
where
    T: Sync,
    R: Send,
{
    global().map_supervised(items, policy, site_of, f)
}

/// [`Pool::try_map_supervised`] on the global pool.
pub fn par_try_map_supervised<T, R, E>(
    items: &[T],
    policy: &RetryPolicy,
    site_of: impl Fn(usize, &T) -> String + Sync,
    f: impl Fn(&T) -> Result<R, E> + Sync,
) -> Result<Vec<CellOutcome<R>>, E>
where
    T: Sync,
    R: Send,
    E: Send,
{
    global().try_map_supervised(items, policy, site_of, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn map_preserves_input_order_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::with_threads(threads);
            assert_eq!(
                pool.map(&items, |&x| x * 3 + 1),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::with_threads(4);
        assert_eq!(pool.map(&[] as &[u8], |&b| b), Vec::<u8>::new());
        assert_eq!(pool.map(&[9u8], |&b| b + 1), vec![10]);
    }

    #[test]
    fn single_thread_runs_inline_on_the_caller() {
        let pool = Pool::with_threads(1);
        let caller = std::thread::current().id();
        let ids: Vec<ThreadId> = pool.map(&[0u8; 16], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn multi_thread_uses_worker_threads() {
        let pool = Pool::with_threads(4);
        let caller = std::thread::current().id();
        // Slow jobs so several workers get a claim in.
        let ids: Vec<ThreadId> = pool.map(&[0u8; 64], |_| {
            std::thread::sleep(Duration::from_micros(200));
            std::thread::current().id()
        });
        assert!(
            ids.iter().all(|&id| id != caller),
            "jobs must run on workers"
        );
    }

    #[test]
    fn pool_lifecycle_accumulates_stats_across_maps() {
        let pool = Pool::with_threads(3);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.map(&[1u8; 10], |&b| b);
        pool.map(&[1u8; 20], |&b| b);
        let stats = pool.stats();
        assert_eq!(stats.maps_run, 2);
        assert_eq!(stats.total_jobs(), 30);
        assert_eq!(stats.workers.len(), 3);
        pool.reset_stats();
        let zeroed = pool.stats();
        assert_eq!(zeroed.maps_run, 0);
        assert_eq!(zeroed.total_jobs(), 0);
        assert_eq!(zeroed.workers.len(), 3, "slots survive a reset");
    }

    #[test]
    fn steals_register_on_skewed_workloads() {
        let pool = Pool::with_threads(2);
        // Worker 0 owns the fast half, worker 1 the slow half; worker 0
        // must steal from worker 1's range to finish the map.
        let items: Vec<u64> = (0..40).collect();
        pool.map(&items, |&i| {
            if i >= 20 {
                std::thread::sleep(Duration::from_millis(1));
            }
            i
        });
        assert!(
            pool.stats().total_steals() > 0,
            "skewed halves must force at least one steal: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn idle_parks_register_when_jobs_are_scarcer_than_workers() {
        let pool = Pool::with_threads(4);
        // 2 jobs, 4 workers: at least two workers find the queue
        // drained and park without executing anything.
        pool.map(&[1u8, 2], |&b| {
            std::thread::sleep(Duration::from_millis(2));
            b
        });
        let stats = pool.stats();
        assert_eq!(stats.total_jobs(), 2);
        assert!(
            stats.total_idle_parks() >= 2,
            "expected idle parks: {stats:?}"
        );
    }

    #[test]
    fn busy_nanos_accumulate_when_telemetry_is_enabled() {
        if !detdiv_obs::telemetry_enabled() {
            // Under DETDIV_LOG=off the busy clock is intentionally
            // never read; the determinism gate covers that path.
            return;
        }
        let pool = Pool::with_threads(2);
        pool.map(&[0u8; 8], |_| {
            std::thread::sleep(Duration::from_micros(300))
        });
        let stats = pool.stats();
        assert!(
            stats.total_busy_nanos() > 0,
            "busy time must register: {stats:?}"
        );
        // Inline runs attribute busy time to slot 0 too.
        let inline = Pool::with_threads(1);
        inline.map(&[0u8; 4], |_| {
            std::thread::sleep(Duration::from_micros(300))
        });
        assert!(inline.stats().total_busy_nanos() > 0);
    }

    #[test]
    fn try_map_returns_smallest_failing_index_error() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let result: Result<Vec<usize>, String> = pool.try_map(&items, |&i| {
                if i % 7 == 3 {
                    Err(format!("boom at {i}"))
                } else {
                    Ok(i)
                }
            });
            assert_eq!(result.unwrap_err(), "boom at 3", "threads={threads}");
        }
    }

    #[test]
    fn try_map_success_matches_serial() {
        let items: Vec<i64> = (-50..50).collect();
        let serial: Vec<i64> = items.iter().map(|x| x.wrapping_mul(11) - 5).collect();
        let pool = Pool::with_threads(4);
        let parallel = pool
            .try_map(&items, |&x| Ok::<i64, ()>(x.wrapping_mul(11) - 5))
            .unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn panicking_job_propagates_and_does_not_poison_the_pool() {
        let pool = Pool::with_threads(4);
        let items: Vec<u32> = (0..200).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, |&i| {
                if i == 137 {
                    panic!("job 137 exploded");
                }
                i
            })
        }));
        let payload = outcome.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(message.contains("job 137 exploded"), "payload: {message}");
        // The pool remains fully usable.
        assert_eq!(pool.map(&[5u32, 6], |&x| x + 1), vec![6, 7]);
    }

    #[test]
    fn panicking_job_propagates_from_inline_runs_too() {
        let pool = Pool::with_threads(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&[0u8], |_| panic!("inline explosion"))
        }));
        assert!(outcome.is_err());
        assert_eq!(pool.map(&[1u8], |&x| x), vec![1]);
    }

    #[test]
    fn nested_maps_run_inline_without_spawning_a_second_tier() {
        let outer = Pool::with_threads(4);
        let inner = Pool::with_threads(4);
        let items: Vec<u64> = (0..16).collect();
        let nested_inline = AtomicU64::new(0);
        let results = outer.map(&items, |&i| {
            assert!(inside_pool());
            let worker = std::thread::current().id();
            let inner_ids: Vec<ThreadId> = inner.map(&[0u8; 4], |_| std::thread::current().id());
            if inner_ids.iter().all(|&id| id == worker) {
                nested_inline.fetch_add(1, Ordering::Relaxed);
            }
            i * 2
        });
        assert_eq!(results, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(
            nested_inline.load(Ordering::Relaxed),
            16,
            "every nested map must stay on its worker"
        );
        assert!(!inside_pool());
    }

    #[test]
    fn resolve_threads_precedence_and_fallbacks() {
        use crate::pool::resolve_threads;
        // Override wins over everything.
        assert_eq!(resolve_threads(3, Some("8"), 16), 3);
        // Environment wins over available parallelism.
        assert_eq!(resolve_threads(0, Some("8"), 16), 8);
        assert_eq!(resolve_threads(0, Some(" 2 "), 16), 2);
        // Invalid or zero environment values fall through.
        assert_eq!(resolve_threads(0, Some("0"), 16), 16);
        assert_eq!(resolve_threads(0, Some("lots"), 16), 16);
        assert_eq!(resolve_threads(0, None, 16), 16);
        // Degenerate availability clamps to one.
        assert_eq!(resolve_threads(0, None, 0), 1);
    }

    #[test]
    fn set_threads_takes_effect_and_releases() {
        let pool = Pool::new();
        pool.set_threads(Some(2));
        assert_eq!(pool.threads(), 2);
        pool.set_threads(Some(7));
        assert_eq!(pool.threads(), 7);
        pool.set_threads(None);
        assert!(pool.threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_thread_pool_is_rejected() {
        let _ = Pool::with_threads(0);
    }

    #[test]
    fn global_helpers_route_through_the_global_pool() {
        let before = global().stats().maps_run;
        assert_eq!(par_map(&[1u8, 2, 3], |&b| b as u16 + 1), vec![2, 3, 4]);
        let summed: Result<Vec<u8>, ()> = par_try_map(&[1u8, 2], |&b| Ok(b));
        assert_eq!(summed.unwrap(), vec![1, 2]);
        assert!(global().stats().maps_run >= before + 2);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn supervised_map_degrades_poisoned_cells_without_killing_the_sweep() {
        let items: Vec<u32> = (0..60).collect();
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        for threads in [1, 2, 4] {
            let pool = Pool::with_threads(threads);
            let outcomes = pool.map_supervised(
                &items,
                &policy,
                |i, _| format!("cell/{i}"),
                |&i| {
                    if i == 17 || i == 41 {
                        panic!("cell {i} poisoned");
                    }
                    i * 10
                },
            );
            assert_eq!(outcomes.len(), items.len(), "threads={threads}");
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 17 || i == 41 {
                    match outcome {
                        CellOutcome::Failed {
                            site,
                            attempts,
                            error,
                        } => {
                            assert_eq!(site, &format!("cell/{i}"));
                            assert_eq!(*attempts, 2);
                            assert!(error.contains("poisoned"), "error: {error}");
                        }
                        other => panic!("slot {i} must degrade, got {other:?}"),
                    }
                } else {
                    assert_eq!(
                        outcome,
                        &CellOutcome::Ok {
                            value: i as u32 * 10,
                            retries: 0
                        },
                        "threads={threads} slot {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn supervised_map_retries_transient_panics_to_success() {
        let attempts: Vec<AtomicU64> = (0..20).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..20).collect();
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let pool = Pool::with_threads(4);
        let outcomes = pool.map_supervised(
            &items,
            &policy,
            |i, _| format!("cell/{i}"),
            |&i| {
                // Every third cell fails twice before succeeding.
                if i % 3 == 0 && attempts[i].fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                i + 100
            },
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            let expected_retries = if i % 3 == 0 { 2 } else { 0 };
            assert_eq!(
                outcome,
                &CellOutcome::Ok {
                    value: i + 100,
                    retries: expected_retries
                },
                "slot {i}"
            );
        }
    }

    #[test]
    fn supervised_try_map_propagates_deliberate_errors_by_smallest_index() {
        let items: Vec<usize> = (0..50).collect();
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            let result: Result<Vec<CellOutcome<usize>>, String> = pool.try_map_supervised(
                &items,
                &policy,
                |i, _| format!("cell/{i}"),
                |&i| {
                    if i == 30 || i == 12 {
                        return Err(format!("config error at {i}"));
                    }
                    if i == 5 {
                        panic!("fault at 5");
                    }
                    Ok(i)
                },
            );
            // The panic at 5 degrades per-slot; the *returned* errors
            // abort the map with the smallest failing index.
            assert_eq!(
                result.unwrap_err(),
                "config error at 12",
                "threads={threads}"
            );
        }
    }

    #[test]
    fn supervised_global_helpers_route_through_the_global_pool() {
        let policy = RetryPolicy::no_retry();
        let outcomes = par_map_supervised(&[1u8, 2], &policy, |i, _| format!("g/{i}"), |&b| b + 1);
        assert_eq!(
            outcomes
                .into_iter()
                .map(|o| o.ok().unwrap())
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        let tried: Result<Vec<CellOutcome<u8>>, ()> =
            par_try_map_supervised(&[7u8], &policy, |i, _| format!("g/{i}"), |&b| Ok(b));
        assert_eq!(
            tried.unwrap()[0],
            CellOutcome::Ok {
                value: 7,
                retries: 0
            }
        );
    }

    #[test]
    fn results_are_identical_across_widths_even_with_shared_state() {
        // A map whose jobs contend on shared state must still produce
        // slot-deterministic output.
        let log = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..100).collect();
        let reference: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1, 2, 4] {
            let pool = Pool::with_threads(threads);
            let out = pool.map(&items, |&i| {
                log.lock().unwrap().push(i);
                i * i
            });
            assert_eq!(out, reference, "threads={threads}");
        }
        assert_eq!(log.lock().unwrap().len(), 300);
    }
}

//! The chunked job queue: contiguous per-worker index ranges drained
//! through atomic cursors, with stealing from the other workers'
//! ranges once a worker's own range is exhausted.
//!
//! The queue hands out *index chunks*, never values: the caller maps an
//! index back to its input item and writes the result into the slot of
//! the same index, which is what makes the pool's output order
//! independent of scheduling (see [`crate::Pool::map`]).

use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker's contiguous index range `[next, end)`.
#[derive(Debug)]
struct IndexRange {
    next: AtomicUsize,
    end: usize,
}

/// A contiguous chunk of job indices claimed from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Claim {
    /// First job index of the chunk (inclusive).
    pub start: usize,
    /// One past the last job index of the chunk.
    pub end: usize,
    /// Whether the chunk came from another worker's range.
    pub stolen: bool,
}

/// The chunked work queue shared by all workers of one parallel map.
#[derive(Debug)]
pub(crate) struct ChunkedQueue {
    ranges: Vec<IndexRange>,
    chunk: usize,
}

impl ChunkedQueue {
    /// Partitions `0..jobs` into `workers` contiguous, balanced ranges
    /// and fixes the claim-chunk size.
    pub fn new(jobs: usize, workers: usize) -> ChunkedQueue {
        assert!(workers > 0, "queue needs at least one worker range");
        let base = jobs / workers;
        let extra = jobs % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            ranges.push(IndexRange {
                next: AtomicUsize::new(start),
                end: start + len,
            });
            start += len;
        }
        debug_assert_eq!(start, jobs);
        // Small chunks keep stealing effective on skewed workloads while
        // amortising cursor contention on huge uniform ones.
        let chunk = (jobs / (workers * 8)).clamp(1, 256);
        ChunkedQueue { ranges, chunk }
    }

    /// The claim-chunk size in effect (visible for tests).
    #[cfg(test)]
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Claims the next chunk for `worker`: first from its own range,
    /// then — marked as a steal — from the other workers' ranges in
    /// ring order. Returns `None` when every range is drained, which is
    /// final: no new work ever enters a queue.
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        let n = self.ranges.len();
        for offset in 0..n {
            let owner = (worker + offset) % n;
            let range = &self.ranges[owner];
            // `fetch_add` may overshoot `end`; the cursor only grows, so
            // every overshoot is observed as "drained" by later claims.
            let start = range.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start < range.end {
                return Some(Claim {
                    start,
                    end: (start + self.chunk).min(range.end),
                    stolen: offset != 0,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(queue: &ChunkedQueue, worker: usize) -> Vec<Claim> {
        let mut claims = Vec::new();
        while let Some(c) = queue.claim(worker) {
            claims.push(c);
        }
        claims
    }

    #[test]
    fn partitions_are_balanced_and_cover_all_indices() {
        for (jobs, workers) in [(10, 3), (1, 4), (0, 2), (7, 7), (100, 1)] {
            let queue = ChunkedQueue::new(jobs, workers);
            let mut seen = BTreeSet::new();
            for w in 0..workers {
                for claim in drain_all(&queue, w) {
                    for i in claim.start..claim.end {
                        assert!(seen.insert(i), "index {i} claimed twice");
                    }
                }
            }
            assert_eq!(
                seen,
                (0..jobs).collect::<BTreeSet<_>>(),
                "jobs={jobs} workers={workers}"
            );
        }
    }

    #[test]
    fn own_range_is_drained_before_stealing() {
        let queue = ChunkedQueue::new(8, 2);
        let claims = drain_all(&queue, 0);
        let first_steal = claims.iter().position(|c| c.stolen).unwrap();
        assert!(claims[..first_steal].iter().all(|c| !c.stolen));
        assert!(claims[first_steal..].iter().all(|c| c.stolen));
        // Worker 0 owns the first half; everything below 4 is its own.
        assert!(claims[..first_steal].iter().all(|c| c.end <= 4));
        assert!(claims[first_steal..].iter().all(|c| c.start >= 4));
    }

    #[test]
    fn empty_queue_yields_no_claims() {
        let queue = ChunkedQueue::new(0, 3);
        for w in 0..3 {
            assert_eq!(queue.claim(w), None);
        }
    }

    #[test]
    fn chunk_size_scales_with_load_but_stays_bounded() {
        assert_eq!(ChunkedQueue::new(4, 4).chunk_size(), 1);
        assert_eq!(ChunkedQueue::new(64, 2).chunk_size(), 4);
        assert_eq!(ChunkedQueue::new(1_000_000, 2).chunk_size(), 256);
    }

    #[test]
    fn concurrent_claims_never_overlap() {
        let queue = ChunkedQueue::new(10_000, 4);
        let seen: Vec<BTreeSet<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut mine = BTreeSet::new();
                        while let Some(c) = queue.claim(w) {
                            mine.extend(c.start..c.end);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all = BTreeSet::new();
        for worker_set in seen {
            for i in worker_set {
                assert!(all.insert(i), "index {i} executed twice");
            }
        }
        assert_eq!(all.len(), 10_000);
    }
}

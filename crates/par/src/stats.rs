//! Per-worker execution counters for the pool.
//!
//! Counters are relaxed atomics updated by the workers and accumulated
//! across every map a [`crate::Pool`] runs; [`crate::Pool::stats`]
//! freezes them into the plain-data [`PoolStats`], which the
//! evaluation pipeline forwards into `detdiv-obs` counters so pool
//! behaviour shows up in the run telemetry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-worker counters (interior, atomic).
#[derive(Debug, Default)]
pub(crate) struct WorkerSlot {
    pub jobs_executed: AtomicU64,
    pub steals: AtomicU64,
    pub idle_parks: AtomicU64,
    pub busy_nanos: AtomicU64,
}

impl WorkerSlot {
    pub fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            idle_parks: self.idle_parks.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.jobs_executed.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.idle_parks.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
    }
}

/// Frozen counters of one worker slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed (across every map of the pool).
    pub jobs_executed: u64,
    /// Chunks this worker claimed from another worker's range.
    pub steals: u64,
    /// Times this worker found the queue already drained and parked
    /// without having executed a single job of that map.
    pub idle_parks: u64,
    /// Wall time this worker spent executing claimed chunks, in
    /// nanoseconds. Timed per chunk claim (one `Instant` pair per
    /// chunk, not per job) and only while telemetry is enabled, so
    /// `DETDIV_LOG=off` keeps the counter at zero and the hot path
    /// clock-free. Feeds the self-profile's worker-utilization figure.
    pub busy_nanos: u64,
}

/// Frozen view of a pool's counters; see [`crate::Pool::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Per-worker counters, indexed by worker id. The vector is as long
    /// as the widest map the pool has run so far.
    pub workers: Vec<WorkerStats>,
    /// Number of parallel maps the pool has executed (inline
    /// single-thread runs included).
    pub maps_run: u64,
}

impl PoolStats {
    /// Total jobs executed across all workers.
    pub fn total_jobs(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs_executed).sum()
    }

    /// Total chunks stolen across all workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total idle parks across all workers.
    pub fn total_idle_parks(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_parks).sum()
    }

    /// Total busy wall time across all workers, in nanoseconds.
    pub fn total_busy_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_nanos).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_workers() {
        let stats = PoolStats {
            workers: vec![
                WorkerStats {
                    jobs_executed: 3,
                    steals: 1,
                    idle_parks: 0,
                    busy_nanos: 100,
                },
                WorkerStats {
                    jobs_executed: 5,
                    steals: 0,
                    idle_parks: 2,
                    busy_nanos: 250,
                },
            ],
            maps_run: 2,
        };
        assert_eq!(stats.total_jobs(), 8);
        assert_eq!(stats.total_steals(), 1);
        assert_eq!(stats.total_idle_parks(), 2);
        assert_eq!(stats.total_busy_nanos(), 350);
    }

    #[test]
    fn slot_snapshot_and_reset_round_trip() {
        let slot = WorkerSlot::default();
        slot.jobs_executed.store(7, Ordering::Relaxed);
        slot.steals.store(2, Ordering::Relaxed);
        slot.idle_parks.store(1, Ordering::Relaxed);
        slot.busy_nanos.store(1234, Ordering::Relaxed);
        assert_eq!(
            slot.snapshot(),
            WorkerStats {
                jobs_executed: 7,
                steals: 2,
                idle_parks: 1,
                busy_nanos: 1234,
            }
        );
        slot.reset();
        assert_eq!(slot.snapshot(), WorkerStats::default());
    }
}

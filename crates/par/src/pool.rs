//! The work-stealing pool and its deterministic parallel-map API.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use detdiv_resil::{CellOutcome, RetryPolicy};

use crate::queue::ChunkedQueue;
use crate::stats::{PoolStats, WorkerSlot};

thread_local! {
    /// Whether the current thread is already executing pool jobs. Set
    /// while a worker (or an inline run) is active so nested parallel
    /// maps short-circuit to serial execution instead of spawning a
    /// second tier of threads.
    static INSIDE_POOL: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for "this thread is executing pool jobs".
struct NestGuard {
    previous: bool,
}

impl NestGuard {
    fn enter() -> NestGuard {
        let previous = INSIDE_POOL.with(|flag| flag.replace(true));
        NestGuard { previous }
    }
}

impl Drop for NestGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        INSIDE_POOL.with(|flag| flag.set(previous));
    }
}

/// Whether the calling thread is inside a pool worker or inline run
/// (nested parallel maps run serially on the calling thread).
pub fn inside_pool() -> bool {
    INSIDE_POOL.with(Cell::get)
}

/// Resolves the worker count from, in precedence order: a programmatic
/// override (`0` = none), the `DETDIV_THREADS` environment value, and
/// the machine's available parallelism. Unparsable or zero environment
/// values are ignored.
pub(crate) fn resolve_threads(
    override_threads: usize,
    env: Option<&str>,
    available: usize,
) -> usize {
    if override_threads > 0 {
        return override_threads;
    }
    if let Some(requested) = env.and_then(|v| v.trim().parse::<usize>().ok()) {
        if requested > 0 {
            return requested;
        }
    }
    available.max(1)
}

/// A work-stealing thread pool with a deterministic parallel-map API.
///
/// Workers are *scoped*: each [`Pool::map`] / [`Pool::try_map`] call
/// spawns its workers for exactly that call (so jobs may borrow from
/// the caller's stack) and joins them before returning. The pool value
/// itself carries configuration (worker count) and accumulated
/// per-worker counters, which persist across calls.
///
/// # Determinism
///
/// Results are written into pre-indexed slots: the output vector's
/// `i`-th element is `f(&items[i])` regardless of worker count, chunk
/// boundaries, or interleaving. [`Pool::try_map`] returns the error of
/// the *smallest failing index*, also independent of scheduling.
///
/// # Panics
///
/// A panicking job does not poison the pool: remaining jobs complete,
/// the workers are joined, and the first panic payload (by worker id)
/// is then resumed on the calling thread.
///
/// # Examples
///
/// ```
/// let pool = detdiv_par::Pool::with_threads(4);
/// let squares = pool.map(&[1i64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// assert_eq!(pool.stats().total_jobs(), 4);
/// ```
#[derive(Debug)]
pub struct Pool {
    /// Programmatic worker-count override; `0` means "auto" (the
    /// `DETDIV_THREADS` environment variable, then available
    /// parallelism).
    override_threads: AtomicUsize,
    /// Per-worker counter slots, grown to the widest map run so far.
    workers: Mutex<Vec<Arc<WorkerSlot>>>,
    maps_run: AtomicU64,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Pool {
    /// A pool with automatic worker-count resolution (`DETDIV_THREADS`,
    /// then available parallelism).
    pub fn new() -> Pool {
        Pool::with_override(0)
    }

    /// A pool pinned to exactly `threads` workers (ignores the
    /// environment). `threads = 1` always runs inline on the caller.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Pool {
        assert!(threads > 0, "a pool needs at least one worker");
        Pool::with_override(threads)
    }

    fn with_override(override_threads: usize) -> Pool {
        Pool {
            override_threads: AtomicUsize::new(override_threads),
            workers: Mutex::new(Vec::new()),
            maps_run: AtomicU64::new(0),
        }
    }

    /// Pins (`Some(n)`) or releases (`None`) the worker-count override.
    /// Takes effect from the next map call; `DETDIV_THREADS` and
    /// available parallelism apply when released.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is `Some(0)`.
    pub fn set_threads(&self, threads: Option<usize>) {
        if threads == Some(0) {
            panic!("a pool needs at least one worker");
        }
        self.override_threads
            .store(threads.unwrap_or(0), Ordering::Relaxed);
    }

    /// The worker count the next map call would use.
    pub fn threads(&self) -> usize {
        resolve_threads(
            self.override_threads.load(Ordering::Relaxed),
            std::env::var("DETDIV_THREADS").ok().as_deref(),
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Applies `f` to every item, in parallel, preserving input order
    /// in the returned vector (see the type-level determinism notes).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_map(items, |item| Ok::<R, std::convert::Infallible>(f(item))) {
            Ok(results) => results,
            Err(never) => match never {},
        }
    }

    /// Fallible [`Pool::map`]: returns `f`'s results in input order, or
    /// the error of the smallest failing index.
    ///
    /// Once some job fails, jobs at *larger* indices than the smallest
    /// known failure are skipped (their results would be discarded);
    /// every index below the returned failure is still fully evaluated,
    /// so the returned error is schedule-independent.
    pub fn try_map<T, R, E>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
    {
        self.maps_run.fetch_add(1, Ordering::Relaxed);
        let jobs = items.len();
        // Spawn exactly the configured worker count: when jobs are
        // scarcer than workers the surplus workers park immediately,
        // which the `idle_parks` counter makes visible.
        let workers = self.threads();
        let slots = self.worker_slots(workers);
        if workers <= 1 || jobs <= 1 || inside_pool() {
            return run_inline(items, &f, &slots[0]);
        }

        let queue = ChunkedQueue::new(jobs, workers);
        // Smallest failing index seen so far (`usize::MAX` = none).
        let first_err = AtomicUsize::new(usize::MAX);

        let per_worker: Vec<Vec<(usize, Result<R, E>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|id| {
                    let queue = &queue;
                    let first_err = &first_err;
                    let f = &f;
                    let slot: &WorkerSlot = &slots[id];
                    scope.spawn(move || {
                        let _nest = NestGuard::enter();
                        // Observability wiring. Both hooks are pure
                        // side channels: they never influence claim
                        // order, result slots, or error selection.
                        let traced = detdiv_obs::trace::armed();
                        if traced {
                            detdiv_obs::trace::set_thread_name(&format!("par-worker-{id}"));
                        }
                        // Busy-interval timing is gated on telemetry
                        // (not tracing) so `DETDIV_LOG=off` keeps the
                        // hot path clock-free and `busy_nanos` at zero.
                        let timed = detdiv_obs::telemetry_enabled();
                        let mut out: Vec<(usize, Result<R, E>)> = Vec::new();
                        let mut executed = 0u64;
                        while let Some(claim) = queue.claim(id) {
                            if claim.stolen {
                                slot.steals.fetch_add(1, Ordering::Relaxed);
                            }
                            if traced {
                                let kind = if claim.stolen { "steal" } else { "chunk" };
                                detdiv_obs::trace::instant(
                                    kind,
                                    &[
                                        ("worker", &id),
                                        ("start", &claim.start),
                                        ("end", &claim.end),
                                    ],
                                );
                            }
                            let claim_started = timed.then(Instant::now);
                            // An index loop, not `enumerate().skip()`:
                            // `index` is the job's identity (result
                            // slot + error ordering), not a position
                            // in an iteration.
                            #[allow(clippy::needless_range_loop)]
                            for index in claim.start..claim.end {
                                if index > first_err.load(Ordering::Relaxed) {
                                    continue;
                                }
                                let result = f(&items[index]);
                                if result.is_err() {
                                    first_err.fetch_min(index, Ordering::Relaxed);
                                }
                                executed += 1;
                                out.push((index, result));
                            }
                            if let Some(started) = claim_started {
                                let nanos =
                                    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                                slot.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
                            }
                        }
                        if executed == 0 {
                            slot.idle_parks.fetch_add(1, Ordering::Relaxed);
                        } else {
                            slot.jobs_executed.fetch_add(executed, Ordering::Relaxed);
                        }
                        if traced {
                            // Hand this worker's ring to the sink *in*
                            // the closure: the scope can observe
                            // completion before TLS destructors (the
                            // automatic flush) run, and the caller may
                            // drain immediately after the map returns.
                            detdiv_obs::trace::flush_thread();
                        }
                        if detdiv_flight::armed() {
                            // Same TLS-destructor race as the trace
                            // ring: flight records buffered by this
                            // worker must reach the sink before the
                            // scope returns and the caller exports.
                            detdiv_flight::flush_thread();
                        }
                        out
                    })
                })
                .collect();

            let mut gathered = Vec::with_capacity(workers);
            let mut panic_payload = None;
            for handle in handles {
                match handle.join() {
                    Ok(results) => gathered.push(results),
                    Err(payload) => {
                        // Keep the first payload by worker id so the
                        // propagated panic is schedule-independent when
                        // a single job panics.
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = panic_payload {
                std::panic::resume_unwind(payload);
            }
            gathered
        });

        // Deterministic merge: slot `i` holds `f(&items[i])`.
        let mut slots_out: Vec<Option<Result<R, E>>> = Vec::with_capacity(jobs);
        slots_out.resize_with(jobs, || None);
        for results in per_worker {
            for (index, result) in results {
                debug_assert!(slots_out[index].is_none(), "slot {index} filled twice");
                slots_out[index] = Some(result);
            }
        }
        let failing = first_err.load(Ordering::Relaxed);
        if failing != usize::MAX {
            match slots_out.into_iter().nth(failing) {
                Some(Some(Err(error))) => return Err(error),
                _ => unreachable!("smallest failing index {failing} must hold an error"),
            }
        }
        Ok(slots_out
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(value)) => value,
                _ => unreachable!("error-free map must fill every slot"),
            })
            .collect())
    }

    /// Supervised [`Pool::map`]: each job runs under
    /// [`detdiv_resil::supervised`] — `catch_unwind` plus the bounded
    /// retry/backoff/watchdog `policy` — so a panicking job degrades to
    /// a [`CellOutcome::Failed`] in its slot instead of propagating and
    /// discarding the rest of the map.
    ///
    /// `site_of(index, item)` names the unit for failure reports and
    /// fault-injection replay; it is called once per job, outside the
    /// retried closure.
    ///
    /// Determinism carries over from [`Pool::map`]: slot `i` holds the
    /// supervised outcome of `f(&items[i])` at any worker count, and —
    /// given the workspace's contract that `f` is deterministic — a
    /// retried job recomputes the identical value.
    pub fn map_supervised<T, R>(
        &self,
        items: &[T],
        policy: &RetryPolicy,
        site_of: impl Fn(usize, &T) -> String + Sync,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<CellOutcome<R>>
    where
        T: Sync,
        R: Send,
    {
        match self.try_map_supervised(items, policy, site_of, |item| {
            Ok::<R, std::convert::Infallible>(f(item))
        }) {
            Ok(outcomes) => outcomes,
            Err(never) => match never {},
        }
    }

    /// Supervised [`Pool::try_map`]: panics degrade per-slot (retried,
    /// then [`CellOutcome::Failed`]), while a job that *returns* an
    /// error keeps [`Pool::try_map`]'s semantics — the error of the
    /// smallest failing index aborts the map. Deliberate `Err`s are
    /// configuration problems the caller must see; panics are faults
    /// the sweep survives. An `Err` attempt is never retried.
    pub fn try_map_supervised<T, R, E>(
        &self,
        items: &[T],
        policy: &RetryPolicy,
        site_of: impl Fn(usize, &T) -> String + Sync,
        f: impl Fn(&T) -> Result<R, E> + Sync,
    ) -> Result<Vec<CellOutcome<R>>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
    {
        // Map over indices so `site_of` sees the job's identity; slot
        // determinism is inherited from `try_map`.
        let indices: Vec<usize> = (0..items.len()).collect();
        self.try_map(&indices, |&index| {
            let item = &items[index];
            let site = site_of(index, item);
            match detdiv_resil::supervised(&site, policy, || f(item)) {
                CellOutcome::Ok {
                    value: Ok(value),
                    retries,
                } => Ok(CellOutcome::Ok { value, retries }),
                CellOutcome::Ok {
                    value: Err(error), ..
                } => Err(error),
                CellOutcome::Failed {
                    site,
                    attempts,
                    error,
                } => Ok(CellOutcome::Failed {
                    site,
                    attempts,
                    error,
                }),
            }
        })
    }

    /// Freezes the pool's accumulated per-worker counters.
    pub fn stats(&self) -> PoolStats {
        let workers = self
            .workers
            .lock()
            .expect("pool stats poisoned")
            .iter()
            .map(|slot| slot.snapshot())
            .collect();
        PoolStats {
            workers,
            maps_run: self.maps_run.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (worker slots are kept).
    pub fn reset_stats(&self) {
        for slot in self.workers.lock().expect("pool stats poisoned").iter() {
            slot.reset();
        }
        self.maps_run.store(0, Ordering::Relaxed);
    }

    /// Returns the first `count` worker slots, growing the table if a
    /// wider map is starting.
    fn worker_slots(&self, count: usize) -> Vec<Arc<WorkerSlot>> {
        let mut table = self.workers.lock().expect("pool stats poisoned");
        while table.len() < count {
            table.push(Arc::new(WorkerSlot::default()));
        }
        table[..count].to_vec()
    }
}

/// The `threads <= 1` / nested short-circuit: runs every job inline on
/// the calling thread, in index order, stopping at the first error.
/// Counters are attributed to worker slot 0.
fn run_inline<T, R, E>(
    items: &[T],
    f: &(impl Fn(&T) -> Result<R, E> + Sync),
    slot: &WorkerSlot,
) -> Result<Vec<R>, E> {
    let _nest = NestGuard::enter();
    let started = detdiv_obs::telemetry_enabled().then(Instant::now);
    let mut out = Vec::with_capacity(items.len());
    let mut executed = 0u64;
    let result = (|| {
        for item in items {
            executed += 1;
            out.push(f(item)?);
        }
        Ok(out)
    })();
    slot.jobs_executed.fetch_add(executed, Ordering::Relaxed);
    if let Some(started) = started {
        let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        slot.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }
    result
}

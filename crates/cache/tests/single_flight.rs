//! Concurrency tests for the single-flight protocol: one training run
//! per key no matter how many threads race for it, panic propagation
//! that never wedges a waiter, and capacity changes that release bytes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use detdiv_cache::{CacheKey, ModelCache};
use detdiv_core::TrainedModel;
use detdiv_sequence::{symbols, Symbol};

struct Fixed {
    bytes: usize,
}

impl TrainedModel for Fixed {
    fn name(&self) -> &str {
        "fixed"
    }
    fn window(&self) -> usize {
        2
    }
    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        vec![0.25; test.len().saturating_sub(1)]
    }
    fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

fn key(tag: &str) -> CacheKey {
    CacheKey::for_training(&symbols(&[5, 6, 7, 8, 9]), tag, 2)
}

/// Blocks the leader until `want` other callers are parked on the slot's
/// condvar (visible through the `inflight_waits` counter), so the test
/// deterministically exercises the wait path rather than a lucky late
/// arrival hitting an already-published model.
fn wait_for_waiters(cache: &ModelCache, baseline: u64, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while cache.stats().inflight_waits - baseline < want {
        assert!(
            Instant::now() < deadline,
            "waiters never arrived: {} of {want}",
            cache.stats().inflight_waits - baseline
        );
        std::thread::yield_now();
    }
}

#[test]
fn n_racing_threads_train_exactly_once() {
    const CALLERS: usize = 6;
    let cache = ModelCache::with_capacity(8);
    let trained = AtomicUsize::new(0);
    let k = key("race");

    let models: Vec<Arc<dyn TrainedModel>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let cache = &cache;
                let trained = &trained;
                let k = &k;
                scope.spawn(move || {
                    cache.get_or_train(k, || {
                        trained.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open until every other caller
                        // is parked, so all of them take the wait path.
                        wait_for_waiters(cache, 0, (CALLERS - 1) as u64);
                        Arc::new(Fixed { bytes: 64 })
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(trained.load(Ordering::SeqCst), 1, "exactly one leader");
    for m in &models[1..] {
        assert!(Arc::ptr_eq(&models[0], m), "all callers share one model");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, (CALLERS - 1) as u64);
    assert_eq!(stats.inflight_waits, (CALLERS - 1) as u64);
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.resident_bytes, 64);
}

#[test]
fn poisoned_training_propagates_without_wedging_waiters() {
    const WAITERS: usize = 3;
    let cache = ModelCache::with_capacity(8);
    let k = key("poison");

    let outcomes: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WAITERS + 1)
            .map(|_| {
                let cache = &cache;
                let k = &k;
                scope.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cache.get_or_train(k, || {
                            wait_for_waiters(cache, 0, WAITERS as u64);
                            panic!("synthetic training failure");
                        })
                    }));
                    match result {
                        Ok(_) => Ok(()),
                        Err(payload) => Err(payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                            .unwrap_or_default()),
                    }
                })
            })
            .collect();
        // join() itself proves nobody is wedged: a lost waiter would
        // hang the scope (and the 10s deadline inside the leader would
        // fire first).
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(
        outcomes.iter().all(Result::is_err),
        "every caller observes the failure: {outcomes:?}"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| o.as_ref().is_err_and(|m| m == "synthetic training failure")),
        "the leader re-raises the original panic"
    );
    let relayed = outcomes
        .iter()
        .filter(|o| {
            o.as_ref()
                .is_err_and(|m| m.contains("panicked in another thread"))
        })
        .count();
    assert_eq!(relayed, WAITERS, "each waiter gets the relayed poison");

    // The poisoned slot was unlinked: the key trains afresh and works.
    assert_eq!(cache.stats().entries, 0);
    let model = cache.get_or_train(&k, || Arc::new(Fixed { bytes: 8 }));
    assert_eq!(model.scores(&symbols(&[1, 2, 3])).len(), 2);
    assert_eq!(cache.stats().entries, 1);
}

#[test]
fn double_poison_then_success_serves_every_caller() {
    const CALLERS: usize = 4;
    let cache = ModelCache::with_capacity(8);
    let attempts = AtomicUsize::new(0);
    let k = key("double-poison");

    let models: Vec<Arc<dyn TrainedModel>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let cache = &cache;
                let attempts = &attempts;
                let k = &k;
                scope.spawn(move || loop {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cache.get_or_train(k, || {
                            match attempts.fetch_add(1, Ordering::SeqCst) {
                                0 => {
                                    // The first leader waits until every
                                    // other caller is parked before
                                    // poisoning, so all of them exercise
                                    // the relay-and-retry path.
                                    wait_for_waiters(cache, 0, (CALLERS - 1) as u64);
                                    panic!("transient failure one");
                                }
                                1 => panic!("transient failure two"),
                                _ => Arc::new(Fixed { bytes: 16 }),
                            }
                        })
                    }));
                    match result {
                        Ok(model) => return model,
                        // Relayed poison: retry, as the supervised
                        // harness above the cache would.
                        Err(_) => std::thread::yield_now(),
                    }
                })
            })
            .collect();
        // join() proves nobody wedged on a slot whose leader unwound.
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        attempts.load(Ordering::SeqCst),
        3,
        "two poisoned runs, then exactly one successful training run"
    );
    for m in &models[1..] {
        assert!(
            Arc::ptr_eq(&models[0], m),
            "every caller converges on the one published model"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.resident_bytes, 16);
}

#[test]
fn eviction_never_drops_an_in_flight_slot() {
    let cache = ModelCache::with_capacity(1);
    let release = AtomicBool::new(false);
    let ka = key("inflight-a");
    let kb = key("inflight-b");

    std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            cache.get_or_train(&ka, || {
                // Hold the flight open until the main thread has forced
                // an eviction pass with this slot still in flight.
                let deadline = Instant::now() + Duration::from_secs(10);
                while !release.load(Ordering::SeqCst) {
                    assert!(Instant::now() < deadline, "leader never released");
                    std::thread::yield_now();
                }
                Arc::new(Fixed { bytes: 64 })
            })
        });
        // Make sure the leader has claimed its slot before the waiter
        // arrives, so the waiter cannot accidentally lead.
        let deadline = Instant::now() + Duration::from_secs(10);
        while cache.stats().misses < 1 {
            assert!(Instant::now() < deadline, "leader never claimed the slot");
            std::thread::yield_now();
        }
        let waiter =
            scope.spawn(|| cache.get_or_train(&ka, || unreachable!("the waiter must never lead")));
        wait_for_waiters(&cache, 0, 1);

        // Publishing a second key overflows capacity 1 while the first
        // is still in flight. The eviction pass must pick the only
        // Ready entry (the one just published) and leave the in-flight
        // slot — and its parked waiter — untouched.
        cache.get_or_train(&kb, || Arc::new(Fixed { bytes: 8 }));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "the ready entry was the victim");
        assert_eq!(stats.evicted_bytes, 8);
        assert_eq!(stats.entries, 1, "only the in-flight slot remains");

        release.store(true, Ordering::SeqCst);
        let a1 = leader.join().unwrap();
        let a2 = waiter.join().unwrap();
        assert!(
            Arc::ptr_eq(&a1, &a2),
            "the parked waiter received the model published after the eviction pass"
        );
    });

    // The in-flight slot survived eviction and is now the resident entry.
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.resident_bytes, 64);
    let again = cache.get_or_train(&ka, || panic!("must be served from cache"));
    assert_eq!(again.scores(&symbols(&[1, 2, 3])).len(), 2);
}

#[test]
fn shrinking_capacity_releases_bytes() {
    let cache = ModelCache::with_capacity(8);
    for (i, bytes) in [10usize, 20, 30, 40].iter().enumerate() {
        cache.get_or_train(&key(&format!("cap-{i}")), || {
            Arc::new(Fixed { bytes: *bytes })
        });
    }
    assert_eq!(cache.stats().resident_bytes, 100);
    assert_eq!(cache.stats().entries, 4);

    // Shrinking evicts the least recently used entries immediately.
    cache.set_capacity(2);
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.evictions, 2);
    assert_eq!(stats.evicted_bytes, 10 + 20, "oldest two evicted");
    assert_eq!(stats.resident_bytes, 30 + 40);
}

//! `DETDIV_CACHE=off` inertness: a disabled cache is a pure
//! pass-through — every call trains, nothing is retained, and no
//! statistics are recorded.
//!
//! This lives in its own integration-test binary because it initialises
//! the process-wide enable flag from the environment and then flips it
//! with [`detdiv_cache::set_enabled`]; sharing a process with tests
//! that rely on the cache being on would race on that flag.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use detdiv_cache::{enabled, set_enabled, CacheKey, ModelCache};
use detdiv_core::TrainedModel;
use detdiv_sequence::{symbols, Symbol};

struct Fixed;

impl TrainedModel for Fixed {
    fn name(&self) -> &str {
        "fixed"
    }
    fn window(&self) -> usize {
        2
    }
    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        vec![0.5; test.len().saturating_sub(1)]
    }
}

#[test]
fn disabled_cache_is_a_pure_pass_through() {
    // The flag initialises from DETDIV_CACHE exactly once; force the
    // environment before the first read so this binary starts disabled
    // the same way `DETDIV_CACHE=off regenerate` does.
    std::env::set_var("DETDIV_CACHE", "off");
    assert!(!enabled(), "DETDIV_CACHE=off disables the cache at startup");

    let cache = ModelCache::with_capacity(8);
    let k = CacheKey::for_training(&symbols(&[1, 2, 3, 4]), "stide", 2);
    let trained = AtomicUsize::new(0);
    // Captures by reference only, so the closure is `Copy` and can be
    // handed to `get_or_train` (an `FnOnce` bound) repeatedly.
    let train = || {
        trained.fetch_add(1, Ordering::SeqCst);
        Arc::new(Fixed) as Arc<dyn TrainedModel>
    };

    let m1 = cache.get_or_train(&k, train);
    let m2 = cache.get_or_train(&k, train);
    assert_eq!(trained.load(Ordering::SeqCst), 2, "every call trains");
    assert!(!Arc::ptr_eq(&m1, &m2), "no sharing when disabled");
    assert!(cache.is_empty(), "nothing is retained");
    let stats = cache.stats();
    assert_eq!(
        (
            stats.hits,
            stats.misses,
            stats.inflight_waits,
            stats.evictions
        ),
        (0, 0, 0, 0),
        "no statistics are recorded"
    );
    assert_eq!(stats.resident_bytes, 0);

    // Re-enabling at run time (the `set_enabled(true)` path) restores
    // normal memoization on the very next call.
    set_enabled(true);
    let m3 = cache.get_or_train(&k, train);
    let m4 = cache.get_or_train(&k, train);
    assert_eq!(trained.load(Ordering::SeqCst), 3, "one more training run");
    assert!(Arc::ptr_eq(&m3, &m4));
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.len(), 1);
}

//! Single-flight memoization of trained detector models.
//!
//! A full experiment report trains the same (detector kind, window) pair
//! on the same training stream dozens of times — `coverage`, `ablation`,
//! `analysis`, `combination`, `diversity` and `extension` each rebuild
//! their models from scratch. Training dominates the cost of these
//! sequence detectors (Tan & Maxion's companion analysis), so this crate
//! memoizes the **train phase**: the first caller to request a
//! [`CacheKey`] trains the model; every later caller — including callers
//! racing concurrently on other `detdiv-par` workers — shares the same
//! immutable [`TrainedModel`] behind an `Arc`.
//!
//! ## Single-flight protocol
//!
//! The map lock is held only to *look up or insert a slot*, never during
//! training:
//!
//! 1. lock the map; if the key has a slot, unlock and wait on that slot
//!    (`Ready` → hit; `InFlight` → block on the slot's condvar);
//! 2. if the key is vacant, insert a fresh `InFlight` slot, unlock, and
//!    train **outside any lock** — this caller is the *leader*;
//! 3. on success the leader publishes `Ready(model)` and notifies all
//!    waiters; on panic it publishes `Poisoned`, removes the slot from
//!    the map (so later callers retrain), and resumes the panic. Waiters
//!    blocked on a poisoned slot panic with the leader's message instead
//!    of wedging.
//!
//! At pool width 1 no waits ever occur; at width N a burst of identical
//! requests performs exactly one training run. Waiters may park inside
//! `detdiv-par` workers: that cannot deadlock, because the leader makes
//! progress independently of the pool.
//!
//! ## Correctness contract
//!
//! The cache is sound only if (a) scoring is `&self`-pure, and (b)
//! retraining on the same stream yields an equivalent model. Both are
//! enforced for every detector family by the conformance suite in
//! `crates/core/tests/conformance.rs`. The determinism harness further
//! proves the headline claim: report output is byte-identical with the
//! cache on or off, at every thread count.
//!
//! ## Switches
//!
//! * `DETDIV_CACHE=off|0|false` (or [`set_enabled`]`(false)`, or
//!   `regenerate --no-cache`) makes [`ModelCache::get_or_train`] a pure
//!   pass-through: nothing is stored, no counters move.
//! * `DETDIV_CACHE_CAP=N` (or [`set_capacity`]) bounds the number of
//!   resident models; least-recently-used entries are evicted and their
//!   [`TrainedModel::approx_bytes`] are accounted to `evicted_bytes`.
//!
//! ## Observability
//!
//! When telemetry is on (`DETDIV_LOG` ≠ `off`), every event also
//! increments the matching `cache/…` counter in `detdiv-obs`
//! (`cache/hits`, `cache/misses`, `cache/inflight_waits`,
//! `cache/evictions`, `cache/evicted_bytes`), so the numbers land in the
//! `TelemetrySnapshot` attached to the report. When the trace recorder
//! is armed, misses/hits/evictions additionally emit trace instants.
//! Authoritative per-process totals are always available — independent
//! of telemetry — through [`ModelCache::stats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use detdiv_core::TrainedModel;
use detdiv_sequence::Symbol;

/// Identity of one trained model: *what* was trained on *which data*.
///
/// Two requests share a model exactly when all four components agree.
/// The `detector` string is the detector kind's full parameter set (the
/// `Debug` rendering of `DetectorKind`, which includes every
/// hyperparameter), so configurations that would train differently never
/// collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the training stream (see [`fingerprint_stream`]).
    pub corpus: u64,
    /// Full parameter rendering of the detector configuration.
    pub detector: String,
    /// Detector window DW.
    pub window: usize,
    /// Length of the training stream, as a cheap second identity check.
    pub training_len: usize,
}

impl CacheKey {
    /// Builds a key from a training stream and a detector's parameter
    /// rendering + window.
    pub fn for_training(training: &[Symbol], detector: impl Into<String>, window: usize) -> Self {
        CacheKey {
            corpus: fingerprint_stream(training),
            detector: detector.into(),
            window,
            training_len: training.len(),
        }
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@DW={} corpus={:016x} len={}",
            self.detector, self.window, self.corpus, self.training_len
        )
    }
}

/// FNV-1a over the symbol ids of a stream: a cheap, deterministic,
/// platform-independent fingerprint. Collisions between *different*
/// training streams of the same length are the only failure mode, and
/// the 64-bit space plus the `training_len` key component make them
/// vanishingly unlikely for the corpus counts involved here.
pub fn fingerprint_stream(stream: &[Symbol]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for s in stream {
        for b in s.id().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Aggregate cache statistics, independent of the telemetry switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a `Ready` slot (including those that waited
    /// on an in-flight training run).
    pub hits: u64,
    /// Requests that became the training leader for their key.
    pub misses: u64,
    /// Requests that blocked on another caller's in-flight training.
    pub inflight_waits: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Total [`TrainedModel::approx_bytes`] of evicted entries.
    pub evicted_bytes: u64,
    /// Approximate bytes of currently resident models.
    pub resident_bytes: u64,
    /// Currently resident entries (ready or in flight).
    pub entries: usize,
}

/// How one [`ModelCache::get_or_train_traced`] request was satisfied —
/// the cache leg of a detection decision's provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The cache was disabled; the caller trained a private model.
    Disabled,
    /// Served from a `Ready` slot without waiting.
    Hit,
    /// Served from a slot whose leader was still training when the
    /// request arrived (the request parked on the condvar).
    WaitHit,
    /// This request became the training leader for its key.
    Miss,
}

impl CacheOutcome {
    /// Short label for audit records: `off`, `hit`, `wait` or `miss`.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Disabled => "off",
            CacheOutcome::Hit => "hit",
            CacheOutcome::WaitHit => "wait",
            CacheOutcome::Miss => "miss",
        }
    }
}

enum SlotState {
    /// The leader is training; waiters block on the condvar.
    InFlight,
    /// Model published; `bytes` is its `approx_bytes` at publish time.
    Ready {
        model: Arc<dyn TrainedModel>,
        bytes: usize,
    },
    /// The leader's trainer panicked with this message.
    Poisoned(String),
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

struct MapEntry {
    slot: Arc<Slot>,
    /// Monotonic LRU clock value at last touch.
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, MapEntry>,
    clock: u64,
}

/// A concurrent, single-flight cache of trained detector models. See the
/// crate docs for the protocol.
pub struct ModelCache {
    inner: Mutex<Inner>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_waits: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    resident_bytes: AtomicU64,
}

impl std::fmt::Debug for ModelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelCache")
            .field("stats", &self.stats())
            .field("capacity", &self.capacity.load(Ordering::Relaxed))
            .finish()
    }
}

fn lock_ignoring_poison<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A panicking waiter (propagating a poisoned training run) may have
    // poisoned the mutex; the protected state is always consistent at
    // that point, so the poison flag carries no information here.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ModelCache {
    /// Creates an empty cache with the given LRU capacity (entry count).
    pub fn with_capacity(capacity: usize) -> Self {
        ModelCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: AtomicUsize::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
        }
    }

    /// Returns the model for `key`, training it via `train` exactly once
    /// per resident lifetime of the key — concurrent callers with the
    /// same key block until the single training run completes.
    ///
    /// When the cache is disabled ([`enabled`] is false) this is a pure
    /// pass-through: `train` runs unconditionally, nothing is stored,
    /// and no statistics move.
    ///
    /// # Panics
    ///
    /// If `train` panics, the panic propagates to the leader *and* to
    /// every waiter blocked on the same key (with the leader's message);
    /// the key is removed so later callers retrain.
    pub fn get_or_train<F>(&self, key: &CacheKey, train: F) -> Arc<dyn TrainedModel>
    where
        F: FnOnce() -> Arc<dyn TrainedModel>,
    {
        self.get_or_train_traced(key, train).0
    }

    /// [`ModelCache::get_or_train`] plus the request's [`CacheOutcome`]
    /// — whether this call trained (leader), hit a ready slot, waited
    /// on an in-flight training run, or bypassed a disabled cache. The
    /// audit layer records the outcome as detection provenance.
    ///
    /// # Panics
    ///
    /// Exactly as [`ModelCache::get_or_train`].
    pub fn get_or_train_traced<F>(
        &self,
        key: &CacheKey,
        train: F,
    ) -> (Arc<dyn TrainedModel>, CacheOutcome)
    where
        F: FnOnce() -> Arc<dyn TrainedModel>,
    {
        if !enabled() {
            return (train(), CacheOutcome::Disabled);
        }

        // Phase 1: find or claim the slot under the map lock.
        let (slot, leader) = {
            let mut inner = lock_ignoring_poison(&self.inner);
            inner.clock += 1;
            let clock = inner.clock;
            match inner.map.get_mut(key) {
                Some(entry) => {
                    entry.last_used = clock;
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::InFlight),
                        ready: Condvar::new(),
                    });
                    inner.map.insert(
                        key.clone(),
                        MapEntry {
                            slot: Arc::clone(&slot),
                            last_used: clock,
                        },
                    );
                    (slot, true)
                }
            }
        };

        if leader {
            return (self.lead_training(key, &slot, train), CacheOutcome::Miss);
        }

        // Phase 2 (non-leader): hit, wait, or observe poison.
        let mut state = lock_ignoring_poison(&slot.state);
        let mut waited = false;
        loop {
            match &*state {
                SlotState::Ready { model, .. } => {
                    let model = Arc::clone(model);
                    drop(state);
                    self.record_hit(key, waited);
                    let outcome = if waited {
                        CacheOutcome::WaitHit
                    } else {
                        CacheOutcome::Hit
                    };
                    return (model, outcome);
                }
                SlotState::Poisoned(msg) => {
                    let msg = format!("model training for {key} panicked in another thread: {msg}");
                    drop(state);
                    panic!("{msg}");
                }
                SlotState::InFlight => {
                    if !waited {
                        waited = true;
                        self.inflight_waits.fetch_add(1, Ordering::Relaxed);
                        if detdiv_obs::telemetry_enabled() {
                            detdiv_obs::incr_counter("cache/inflight_waits", 1);
                        }
                    }
                    state = slot
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Leader path: train outside all locks, publish, evict if over
    /// capacity; on panic, poison the slot, unlink it, and re-raise.
    fn lead_training<F>(&self, key: &CacheKey, slot: &Arc<Slot>, train: F) -> Arc<dyn TrainedModel>
    where
        F: FnOnce() -> Arc<dyn TrainedModel>,
    {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if detdiv_obs::telemetry_enabled() {
            detdiv_obs::incr_counter("cache/misses", 1);
        }
        if detdiv_obs::trace::armed() {
            detdiv_obs::trace::instant("cache/miss", &[("key", &key)]);
        }

        // The fault point runs *inside* the leader's catch_unwind: an
        // injected panic must follow the ordinary poison/unlink path so
        // parked waiters are released instead of wedged on a slot whose
        // leader unwound past them.
        match catch_unwind(AssertUnwindSafe(|| {
            detdiv_resil::point("cache/lead");
            train()
        })) {
            Ok(model) => {
                let bytes = model.approx_bytes();
                {
                    let mut state = lock_ignoring_poison(&slot.state);
                    *state = SlotState::Ready {
                        model: Arc::clone(&model),
                        bytes,
                    };
                }
                slot.ready.notify_all();
                self.resident_bytes
                    .fetch_add(bytes as u64, Ordering::Relaxed);
                self.evict_over_capacity();
                model
            }
            Err(payload) => {
                let msg = panic_message(&payload);
                {
                    let mut state = lock_ignoring_poison(&slot.state);
                    *state = SlotState::Poisoned(msg);
                }
                slot.ready.notify_all();
                // Unlink so later callers retrain instead of tripping on
                // the poisoned slot forever.
                let mut inner = lock_ignoring_poison(&self.inner);
                if let Some(entry) = inner.map.get(key) {
                    if Arc::ptr_eq(&entry.slot, slot) {
                        inner.map.remove(key);
                    }
                }
                drop(inner);
                resume_unwind(payload)
            }
        }
    }

    fn record_hit(&self, key: &CacheKey, waited: bool) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if detdiv_obs::telemetry_enabled() {
            detdiv_obs::incr_counter("cache/hits", 1);
        }
        if detdiv_obs::trace::armed() {
            let kind = if waited { "wait-hit" } else { "hit" };
            detdiv_obs::trace::instant("cache/hit", &[("key", &key), ("kind", &kind)]);
        }
    }

    /// Evicts least-recently-used **ready** entries until the map fits
    /// the capacity bound. In-flight entries are never evicted: waiters
    /// hold their slot `Arc` and the leader must be able to publish.
    fn evict_over_capacity(&self) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        loop {
            let evicted = {
                let mut inner = lock_ignoring_poison(&self.inner);
                if inner.map.len() <= capacity {
                    return;
                }
                let victim = inner
                    .map
                    .iter()
                    .filter(|(_, e)| {
                        matches!(
                            &*lock_ignoring_poison(&e.slot.state),
                            SlotState::Ready { .. }
                        )
                    })
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                let Some(victim) = victim else {
                    // Everything over capacity is in flight; nothing to
                    // evict yet.
                    return;
                };
                let entry = inner.map.remove(&victim).expect("victim present");
                let bytes = match &*lock_ignoring_poison(&entry.slot.state) {
                    SlotState::Ready { bytes, .. } => *bytes,
                    _ => 0,
                };
                (victim, bytes)
            };
            let (victim, bytes) = evicted;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
            let _ = self
                .resident_bytes
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(bytes as u64))
                });
            if detdiv_obs::telemetry_enabled() {
                detdiv_obs::incr_counter("cache/evictions", 1);
                detdiv_obs::incr_counter("cache/evicted_bytes", bytes as u64);
            }
            if detdiv_obs::trace::armed() {
                detdiv_obs::trace::instant("cache/evict", &[("key", &victim), ("bytes", &bytes)]);
            }
        }
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        let entries = lock_ignoring_poison(&self.inner).map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inflight_waits: self.inflight_waits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Zeroes the event counters (resident bytes and entries are live
    /// state and are not touched). Benchmarks use this to measure one
    /// pass at a time.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inflight_waits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.evicted_bytes.store(0, Ordering::Relaxed);
    }

    /// Drops every resident model (event counters keep their values).
    pub fn clear(&self) {
        let mut inner = lock_ignoring_poison(&self.inner);
        inner.map.clear();
        drop(inner);
        self.resident_bytes.store(0, Ordering::Relaxed);
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.inner).map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overrides the LRU capacity (entry count) for this cache.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        self.evict_over_capacity();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ---------------------------------------------------------------------
// Process-wide switches and the global cache.

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = !matches!(
            std::env::var("DETDIV_CACHE").as_deref(),
            Ok("off") | Ok("0") | Ok("false") | Ok("OFF")
        );
        AtomicBool::new(on)
    })
}

/// Whether the trained-model cache is active. Initialised once from
/// `DETDIV_CACHE` (`off`/`0`/`false` disable it); [`set_enabled`]
/// overrides at run time.
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Enables or disables the cache process-wide (e.g. for
/// `regenerate --no-cache`). Disabling does not drop resident entries;
/// pair with [`ModelCache::clear`] when memory should be released.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Default LRU capacity: generous enough that a full paper report (a few
/// dozen distinct (kind, window) pairs) never evicts, small enough to
/// bound memory on long sweeps.
pub const DEFAULT_CAPACITY: usize = 256;

/// The process-wide model cache shared by the experiment suite. Capacity
/// comes from `DETDIV_CACHE_CAP` (default [`DEFAULT_CAPACITY`]).
pub fn global() -> &'static ModelCache {
    static GLOBAL: OnceLock<ModelCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var("DETDIV_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        ModelCache::with_capacity(capacity)
    })
}

/// Overrides the LRU capacity of the [`global`] cache.
pub fn set_capacity(capacity: usize) {
    global().set_capacity(capacity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    struct Fixed {
        window: usize,
        bytes: usize,
    }

    impl TrainedModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn window(&self) -> usize {
            self.window
        }
        fn scores(&self, test: &[Symbol]) -> Vec<f64> {
            vec![0.0; test.len().saturating_sub(self.window - 1)]
        }
        fn approx_bytes(&self) -> usize {
            self.bytes
        }
    }

    fn key(tag: &str) -> CacheKey {
        CacheKey::for_training(&symbols(&[1, 2, 3, 4]), tag, 2)
    }

    fn model(bytes: usize) -> Arc<dyn TrainedModel> {
        Arc::new(Fixed { window: 2, bytes })
    }

    #[test]
    fn second_request_hits() {
        let cache = ModelCache::with_capacity(8);
        let k = key("a");
        let mut trained = 0;
        let m1 = cache.get_or_train(&k, || {
            trained += 1;
            model(10)
        });
        let m2 = cache.get_or_train(&k, || {
            trained += 1;
            model(10)
        });
        assert_eq!(trained, 1);
        assert!(Arc::ptr_eq(&m1, &m2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_bytes, 10);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn traced_requests_report_their_outcome() {
        let cache = ModelCache::with_capacity(8);
        let k = key("traced");
        let (_, first) = cache.get_or_train_traced(&k, || model(1));
        let (_, second) = cache.get_or_train_traced(&k, || model(1));
        assert_eq!(first, CacheOutcome::Miss);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(first.label(), "miss");
        assert_eq!(second.label(), "hit");
        assert_eq!(CacheOutcome::Disabled.label(), "off");
        assert_eq!(CacheOutcome::WaitHit.label(), "wait");
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ModelCache::with_capacity(8);
        let m1 = cache.get_or_train(&key("a"), || model(1));
        let m2 = cache.get_or_train(&key("b"), || model(2));
        assert!(!Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_accounts_bytes() {
        let cache = ModelCache::with_capacity(2);
        cache.get_or_train(&key("a"), || model(100));
        cache.get_or_train(&key("b"), || model(30));
        // Touch "a" so "b" is the LRU victim.
        cache.get_or_train(&key("a"), || model(100));
        cache.get_or_train(&key("c"), || model(5));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.evicted_bytes, 30);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.resident_bytes, 105);
        // "b" retrains; "a" is still resident.
        cache.get_or_train(&key("b"), || model(30));
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = ModelCache::with_capacity(8);
        cache.get_or_train(&key("a"), || model(7));
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.misses, 1);
        cache.reset_stats();
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn fingerprint_distinguishes_streams() {
        let a = fingerprint_stream(&symbols(&[1, 2, 3]));
        let b = fingerprint_stream(&symbols(&[1, 2, 4]));
        let c = fingerprint_stream(&symbols(&[1, 2, 3]));
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn display_names_the_key() {
        let k = key("stide");
        let s = k.to_string();
        assert!(s.contains("stide@DW=2"), "{s}");
        assert!(s.contains("len=4"), "{s}");
    }
}

//! The process-global telemetry registry.
//!
//! Counters and histograms live behind `Arc`s in mutex-guarded
//! `BTreeMap`s; the maps are locked only to look up or create an
//! instrument, after which updates are plain relaxed atomics. A
//! [`crate::snapshot`] freezes the registry into a serializable
//! [`TelemetrySnapshot`]; [`crate::reset`] clears it so each
//! evaluation run reports only its own telemetry.

use crate::histogram::Histogram;
use crate::level::telemetry_enabled;
use crate::snapshot::{CellTiming, SeriesSummary, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A callback producing the sampled time-series section a snapshot
/// embeds (see [`set_timeseries_source`]).
pub type TimeseriesSource = Box<dyn Fn() -> Vec<SeriesSummary> + Send + Sync>;

fn timeseries_source() -> &'static Mutex<Option<TimeseriesSource>> {
    static SOURCE: OnceLock<Mutex<Option<TimeseriesSource>>> = OnceLock::new();
    SOURCE.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the provider of the snapshot's
/// `timeseries` section. The live-introspection layer (`detdiv-scope`)
/// installs its sampler here while armed, so end-of-run snapshots carry
/// the sampled series; with no source installed — the default — the
/// section is empty and snapshots are unchanged. The source survives
/// [`reset`]: arming happens once per process, before the first run.
pub fn set_timeseries_source(source: Option<TimeseriesSource>) {
    *timeseries_source()
        .lock()
        .expect("timeseries source poisoned") = source;
}

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    cells: Mutex<Vec<CellTiming>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Increments the named counter by `by`. No-op when telemetry is
/// disabled (`DETDIV_LOG=off`).
pub fn incr_counter(name: &str, by: u64) {
    if !telemetry_enabled() {
        return;
    }
    let counter = {
        let mut map = registry()
            .counters
            .lock()
            .expect("counter registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    };
    counter.fetch_add(by, Ordering::Relaxed);
}

/// Sets the named counter to an absolute value, overwriting any
/// previous count. Used to mirror externally-accumulated gauges (e.g.
/// the `detdiv-par` per-worker counters) into the run telemetry. No-op
/// when telemetry is disabled.
pub fn set_counter(name: &str, value: u64) {
    if !telemetry_enabled() {
        return;
    }
    let counter = {
        let mut map = registry()
            .counters
            .lock()
            .expect("counter registry poisoned");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    };
    counter.store(value, Ordering::Relaxed);
}

/// Records a raw nanosecond sample into the named histogram. No-op
/// when telemetry is disabled.
pub fn record_nanos(name: &str, nanos: u64) {
    if !telemetry_enabled() {
        return;
    }
    let histogram = {
        let mut map = registry()
            .histograms
            .lock()
            .expect("histogram registry poisoned");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    };
    histogram.record(nanos);
}

/// Records a [`Duration`] sample into the named histogram.
pub fn record_duration(name: &str, duration: Duration) {
    record_nanos(name, duration.as_nanos().min(u128::from(u64::MAX)) as u64);
}

/// Records one evaluation-grid cell timing. The `experiment` field is
/// filled from the calling thread's current span path (see
/// [`crate::current_path`]). No-op when telemetry is disabled.
pub fn record_cell(detector: &str, window: usize, anomaly_size: usize, duration: Duration) {
    // The trace event is emitted even when telemetry is off: the trace
    // recorder is armed independently of `DETDIV_LOG` (see
    // [`crate::trace`]), and the exported sweep view needs its cells.
    if crate::trace::armed() {
        crate::trace::complete(
            "cell",
            duration,
            &[
                ("detector", &detector),
                ("window", &window),
                ("anomaly_size", &anomaly_size),
            ],
        );
    }
    if !telemetry_enabled() {
        return;
    }
    let nanos = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
    // Per-cell wall-time histogram per detector family, alongside the
    // raw cell rows.
    record_nanos(&format!("grid/{detector}/cell_ns"), nanos);
    let cell = CellTiming {
        experiment: crate::span::current_path(),
        detector: detector.to_owned(),
        window,
        anomaly_size,
        nanos,
    };
    registry()
        .cells
        .lock()
        .expect("cell registry poisoned")
        .push(cell);
}

/// Point-in-time export of every counter's name and value, in name
/// order. This is the registry-iteration hook exposition layers build
/// on (e.g. the `detdiv-scope` Prometheus renderer): unlike
/// [`snapshot`] it copies no histograms or cells, so it is cheap
/// enough to serve on every scrape.
pub fn export_counters() -> Vec<(String, u64)> {
    registry()
        .counters
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
        .collect()
}

/// Point-in-time export of every histogram's name and shared handle,
/// in name order. The returned [`Histogram`]s are the live instruments
/// (behind `Arc`s), so callers can read raw bucket counts and
/// quantiles without copying; recording continues concurrently.
pub fn export_histograms() -> Vec<(String, Arc<Histogram>)> {
    registry()
        .histograms
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|(name, h)| (name.clone(), Arc::clone(h)))
        .collect()
}

/// Freezes the registry into a serializable snapshot.
pub fn snapshot() -> TelemetrySnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|(name, h)| (name.clone(), h.summary()))
        .collect();
    let mut cells = reg.cells.lock().expect("cell registry poisoned").clone();
    // Cells may be recorded from many pool workers whose interleaving
    // varies run to run; sort on the full grid key so the snapshot's
    // ordering is a function of *what* was recorded, never of
    // scheduling.
    cells.sort_by(|a, b| {
        (
            &a.experiment,
            &a.detector,
            a.window,
            a.anomaly_size,
            a.nanos,
        )
            .cmp(&(
                &b.experiment,
                &b.detector,
                b.window,
                b.anomaly_size,
                b.nanos,
            ))
    });
    // The self-profile is a pure function of the frozen maps, so a
    // snapshot stays deterministic given what was recorded.
    let profile = crate::profile::SelfProfile::from_maps(&histograms, &counters);
    // The sampled time series, when a sampler is armed (sorted by name
    // so the section's order never depends on sampling internals).
    let mut timeseries = match timeseries_source()
        .lock()
        .expect("timeseries source poisoned")
        .as_ref()
    {
        Some(source) => source(),
        None => Vec::new(),
    };
    timeseries.sort_by(|a, b| a.name.cmp(&b.name));
    TelemetrySnapshot {
        counters,
        histograms,
        cells,
        profile,
        timeseries,
    }
}

/// Clears all counters, histograms, and cell timings, so a subsequent
/// [`snapshot`] reflects only telemetry recorded after this call.
pub fn reset() {
    let reg = registry();
    reg.counters
        .lock()
        .expect("counter registry poisoned")
        .clear();
    reg.histograms
        .lock()
        .expect("histogram registry poisoned")
        .clear();
    reg.cells.lock().expect("cell registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_under_thread_contention() {
        const THREADS: u64 = 8;
        const INCRS: u64 = 25_000;
        let name = "test/registry/contended_counter";
        let before = snapshot().counter(name);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..INCRS {
                        incr_counter(name, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let after = snapshot().counter(name);
        assert_eq!(after - before, THREADS * INCRS);
    }

    #[test]
    fn histograms_accumulate_durations() {
        let name = "test/registry/duration_histogram";
        record_duration(name, Duration::from_micros(10));
        record_duration(name, Duration::from_micros(20));
        let snap = snapshot();
        let h = snap.histogram(name).expect("histogram recorded");
        assert!(h.count >= 2);
        assert!(h.sum_ns >= 30_000);
        assert!(h.min_ns >= 1_000);
    }

    #[test]
    fn set_counter_stores_absolute_values() {
        let name = "test/registry/absolute_gauge";
        set_counter(name, 41);
        set_counter(name, 7);
        assert_eq!(snapshot().counter(name), 7);
        incr_counter(name, 3);
        assert_eq!(snapshot().counter(name), 10);
    }

    #[test]
    fn cells_snapshot_in_grid_key_order() {
        let _outer = crate::SpanGuard::enter("test_registry_cell_order");
        record_cell("zeta", 5, 2, Duration::from_nanos(10));
        record_cell("alpha", 9, 4, Duration::from_nanos(10));
        record_cell("alpha", 2, 8, Duration::from_nanos(10));
        record_cell("alpha", 2, 3, Duration::from_nanos(10));
        let snap = snapshot();
        let ours: Vec<_> = snap
            .cells
            .iter()
            .filter(|c| c.experiment.contains("test_registry_cell_order"))
            .map(|c| (c.detector.clone(), c.window, c.anomaly_size))
            .collect();
        assert_eq!(
            ours,
            vec![
                ("alpha".to_owned(), 2, 3),
                ("alpha".to_owned(), 2, 8),
                ("alpha".to_owned(), 9, 4),
                ("zeta".to_owned(), 5, 2),
            ]
        );
    }

    #[test]
    fn record_cell_feeds_the_per_detector_histogram() {
        record_cell("histo-det", 3, 2, Duration::from_micros(5));
        record_cell("histo-det", 4, 2, Duration::from_micros(6));
        let snap = snapshot();
        let h = snap
            .histogram("grid/histo-det/cell_ns")
            .expect("cell histogram recorded");
        assert!(h.count >= 2);
        assert!(h.sum_ns >= 11_000);
    }

    #[test]
    fn export_hooks_mirror_the_registry() {
        incr_counter("test/registry/export_counter", 5);
        record_nanos("test/registry/export_histogram", 1000);
        let counters = export_counters();
        let (_, value) = counters
            .iter()
            .find(|(name, _)| name == "test/registry/export_counter")
            .expect("exported counter present");
        assert!(*value >= 5);
        let histograms = export_histograms();
        let (_, h) = histograms
            .iter()
            .find(|(name, _)| name == "test/registry/export_histogram")
            .expect("exported histogram present");
        assert!(h.count() >= 1);
        // Name order, matching the snapshot's BTreeMap iteration.
        let names: Vec<_> = counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn timeseries_source_feeds_snapshots_and_survives_reset() {
        set_timeseries_source(Some(Box::new(|| {
            vec![
                SeriesSummary {
                    name: "zeta/series".into(),
                    interval_ms: 100,
                    samples: vec![1, 2, 3],
                    rate_per_sec: 10.0,
                },
                SeriesSummary {
                    name: "alpha/series".into(),
                    interval_ms: 100,
                    samples: vec![4],
                    rate_per_sec: 0.0,
                },
            ]
        })));
        let snap = snapshot();
        let names: Vec<_> = snap.timeseries.iter().map(|s| s.name.clone()).collect();
        assert!(names.contains(&"alpha/series".to_owned()));
        assert!(names.contains(&"zeta/series".to_owned()));
        let alpha = names.iter().position(|n| n == "alpha/series").unwrap();
        let zeta = names.iter().position(|n| n == "zeta/series").unwrap();
        assert!(alpha < zeta, "series are snapshot in name order");
        // (`reset` deliberately leaves the source armed; calling it
        // here would race the other registry tests in this process, so
        // that property is covered by the `detdiv-scope` suite.)
        set_timeseries_source(None);
        assert!(snapshot().timeseries.is_empty());
    }

    #[test]
    fn cells_capture_span_context() {
        {
            let _outer = crate::SpanGuard::enter("test_registry_cells");
            record_cell("stide", 6, 3, Duration::from_nanos(500));
        }
        let snap = snapshot();
        let cell = snap
            .cells
            .iter()
            .find(|c| c.experiment.contains("test_registry_cells"))
            .expect("cell recorded with span context");
        assert_eq!(cell.detector, "stide");
        assert_eq!(cell.window, 6);
        assert_eq!(cell.anomaly_size, 3);
        assert!(cell.nanos >= 500);
    }
}

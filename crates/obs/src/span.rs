//! Hierarchical timing spans.
//!
//! A span is an RAII guard created with [`crate::span!`] (or
//! [`SpanGuard::enter`]); while alive it sits on a thread-local stack,
//! so nested spans compose into slash-joined paths like
//! `report/fig2_stide/train`. On drop, the span's wall time (measured
//! with [`std::time::Instant`]) is recorded into the global histogram
//! `span/<path>` and logged at [`Level::Debug`].
//!
//! Guards are thread-local by design: a span opened on one thread does
//! not appear in the path of work on another thread. When telemetry is
//! disabled (`DETDIV_LOG=off`) entering a span is an atomic load and a
//! no-op guard.

use crate::level::{enabled, telemetry_enabled, Level};
use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's current span path (`a/b/c`), or the empty
/// string outside any span.
pub fn current_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("/"))
}

/// Depth of the calling thread's span stack.
pub fn current_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

/// RAII guard for one timing span; see the module docs.
#[must_use = "a span guard times the scope it is bound to; dropping it immediately records ~0ns"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Full slash-joined path including this span; `None` when
    /// telemetry is disabled and the guard is inert.
    path: Option<String>,
    /// Span name to emit an `E` trace event for on drop; `None` when
    /// tracing was not armed at entry (so arming mid-span never emits
    /// an unmatched `E`, and disarming mid-span never loses one).
    traced: Option<String>,
    started: Instant,
}

impl SpanGuard {
    /// Opens a span named `name`, pushing it onto the thread's span
    /// stack. Returns an inert guard when telemetry is disabled.
    pub fn enter(name: &str) -> SpanGuard {
        SpanGuard::enter_with(name, &[])
    }

    /// [`SpanGuard::enter`] carrying event arguments: when tracing is
    /// armed (see [`crate::trace`]), the span's begin event records
    /// `args` (e.g. `detector`/`window` for a grid row) so the exported
    /// trace is self-describing. The [`crate::span!`] macro routes its
    /// `key = value` fields here.
    ///
    /// Timing spans themselves are unaffected: when telemetry is
    /// disabled (`DETDIV_LOG=off`) the guard stays inert for the
    /// histogram path even while trace events are emitted.
    pub fn enter_with(name: &str, args: &[(&'static str, &dyn fmt::Display)]) -> SpanGuard {
        let traced = if crate::trace::armed() {
            crate::trace::begin(name, args);
            Some(name.to_owned())
        } else {
            None
        };
        if !telemetry_enabled() {
            return SpanGuard {
                path: None,
                traced,
                started: Instant::now(),
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_owned());
            stack.join("/")
        });
        SpanGuard {
            path: Some(path),
            traced,
            started: Instant::now(),
        }
    }

    /// The span's full path, if active.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// Elapsed wall time since the span was entered.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

/// RAII guard that adopts a parent span *path* on the current thread
/// without timing anything; see [`context`].
#[must_use = "a context guard scopes the adopted span path; dropping it immediately removes it"]
#[derive(Debug)]
pub struct ContextGuard {
    active: bool,
}

/// Adopts `path` (a pre-joined, slash-separated span path, typically a
/// [`current_path`] captured on the submitting thread) as the base of
/// the calling thread's span stack.
///
/// Spans are thread-local, so work fanned out to `detdiv-par` workers
/// would otherwise record rootless paths; a context guard lets each job
/// re-root itself under the experiment that spawned it. Unlike
/// [`SpanGuard`], dropping a context guard records **no** histogram
/// sample — the submitting thread's own span already times the fan-out.
///
/// An empty `path` (or disabled telemetry) yields an inert guard. So
/// does a `path` that is already the calling thread's current span
/// path: fan-outs that short-circuit to inline execution (one worker,
/// one job, nested maps) run their jobs on the submitting thread, and
/// adopting the prefix again there would double it — the guard keeps
/// span paths identical between inline and worker execution.
///
/// # Examples
///
/// ```
/// let parent = {
///     let _outer = detdiv_obs::span!("ctx_doc_outer");
///     detdiv_obs::current_path()
/// };
/// std::thread::scope(|scope| {
///     scope.spawn(|| {
///         let _ctx = detdiv_obs::context(&parent);
///         assert_eq!(detdiv_obs::current_path(), "ctx_doc_outer");
///     });
/// });
/// ```
pub fn context(path: &str) -> ContextGuard {
    if path.is_empty() || !telemetry_enabled() || current_path() == path {
        return ContextGuard { active: false };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(path.to_owned()));
    ContextGuard { active: true }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.active {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // The `E` event pairs with the `B` emitted at entry whenever
        // the guard was created with tracing armed, independent of the
        // histogram path below — per-thread B/E balance is a trace
        // invariant the export checker enforces.
        if let Some(name) = self.traced.take() {
            crate::trace::end_paired(&name);
        }
        let Some(path) = self.path.take() else {
            return;
        };
        let elapsed = self.started.elapsed();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::registry::record_nanos(
            &format!("span/{path}"),
            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        if enabled(Level::Debug) {
            crate::__log(
                Level::Debug,
                module_path!(),
                &"span closed",
                &[
                    ("span", &path as &dyn std::fmt::Display),
                    (
                        "elapsed_us",
                        &(elapsed.as_nanos() as f64 / 1e3) as &dyn std::fmt::Display,
                    ),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_nest_into_slash_paths() {
        assert_eq!(current_path(), "");
        let outer = SpanGuard::enter("outer_span_test");
        assert_eq!(outer.path(), Some("outer_span_test"));
        {
            let inner = SpanGuard::enter("inner");
            assert_eq!(inner.path(), Some("outer_span_test/inner"));
            assert_eq!(current_path(), "outer_span_test/inner");
            assert_eq!(current_depth(), 2);
        }
        assert_eq!(current_path(), "outer_span_test");
        drop(outer);
        assert_eq!(current_path(), "");
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn span_durations_are_monotone_parent_covers_child() {
        {
            let _outer = SpanGuard::enter("mono_outer");
            {
                let _inner = SpanGuard::enter("mono_inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = crate::snapshot();
        let outer = snap
            .histogram("span/mono_outer")
            .expect("outer span recorded");
        let inner = snap
            .histogram("span/mono_outer/mono_inner")
            .expect("inner span recorded")
            .max_ns;
        // The parent encloses the child, so its slowest observation
        // must be at least the child's.
        assert!(
            outer.max_ns >= inner,
            "parent {} < child {}",
            outer.max_ns,
            inner
        );
        assert!(inner >= 2_000_000, "inner span must cover its sleep");
    }

    #[test]
    fn context_guard_adopts_and_releases_a_path() {
        let parent = {
            let _outer = SpanGuard::enter("ctx_outer");
            let _inner = SpanGuard::enter("ctx_inner");
            current_path()
        };
        assert_eq!(parent, "ctx_outer/ctx_inner");
        {
            let _ctx = crate::context(&parent);
            assert_eq!(current_path(), "ctx_outer/ctx_inner");
            let _child = SpanGuard::enter("child");
            assert_eq!(current_path(), "ctx_outer/ctx_inner/child");
        }
        assert_eq!(current_path(), "");
    }

    #[test]
    fn context_guard_records_no_histogram() {
        {
            let _ctx = crate::context("ctx_untimed_parent");
        }
        let snap = crate::snapshot();
        assert!(
            snap.histogram("span/ctx_untimed_parent").is_none(),
            "context guards must not time anything"
        );
    }

    #[test]
    fn empty_context_is_inert() {
        let _ctx = crate::context("");
        assert_eq!(current_path(), "");
    }

    #[test]
    fn context_matching_the_current_path_is_inert() {
        let _outer = SpanGuard::enter("ctx_inline_outer");
        {
            // Inline fan-outs adopt the path they are already under;
            // the guard must not double the prefix.
            let _ctx = crate::context("ctx_inline_outer");
            assert_eq!(current_path(), "ctx_inline_outer");
        }
        assert_eq!(current_path(), "ctx_inline_outer");
    }

    #[test]
    fn spans_are_thread_local() {
        let _outer = SpanGuard::enter("thread_local_outer");
        let other = std::thread::spawn(current_path).join().unwrap();
        assert_eq!(other, "", "span stack must not leak across threads");
        assert_eq!(current_path(), "thread_local_outer");
    }
}

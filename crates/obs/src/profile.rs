//! The self-profile: inclusive/exclusive wall time per span path.
//!
//! Derived from the `span/<path>` histograms of a
//! [`crate::TelemetrySnapshot`]: a path's **inclusive** time is the sum
//! of its recorded span durations; its **exclusive** time subtracts the
//! inclusive time of its *direct* children, i.e. the time spent in the
//! span's own code rather than in instrumented sub-spans. Because the
//! evaluation grid fans children out over `detdiv-par` workers, a
//! parent's children can accumulate more summed wall time than the
//! parent itself spans; exclusive times therefore saturate at zero
//! rather than going negative.
//!
//! The profile also reports **worker utilization**: the pool's summed
//! per-worker busy time divided by `workers × report wall time`,
//! answering "how well did the sweep overlap" without opening the
//! exported trace.

use crate::snapshot::HistogramSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Inclusive/exclusive wall time of one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Slash-joined span path (e.g. `report/fig3_6_coverage`).
    pub path: String,
    /// Number of recorded spans at this path.
    pub count: u64,
    /// Summed wall time of the spans themselves, in nanoseconds.
    pub inclusive_ns: u64,
    /// Inclusive time minus the inclusive time of direct children,
    /// saturating at zero (parallel children can out-sum the parent).
    pub exclusive_ns: u64,
}

/// Per-span-path time table plus worker-overlap summary; attached to
/// [`crate::TelemetrySnapshot::profile`] and rendered by
/// `render_text`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SelfProfile {
    /// Every span path, sorted by descending exclusive time (ties
    /// break on the path so the order is deterministic).
    pub rows: Vec<ProfileRow>,
    /// Wall time of the run, in nanoseconds: the `report` span when
    /// present, otherwise the largest top-level inclusive time.
    pub wall_ns: u64,
    /// Pool worker count mirrored from `par/workers` (0 when the pool
    /// never ran or telemetry was disabled).
    pub workers: u64,
    /// Summed busy time across all pool workers, in nanoseconds
    /// (mirrored from the `par/worker<i>/busy_ns` counters).
    pub worker_busy_ns: u64,
    /// `worker_busy_ns / (workers × wall_ns)`, as a percentage; `None`
    /// when the pool or the wall time is unknown.
    pub utilization_percent: Option<f64>,
}

impl SelfProfile {
    /// Builds the profile from a snapshot's histogram and counter maps.
    pub fn from_maps(
        histograms: &BTreeMap<String, HistogramSummary>,
        counters: &BTreeMap<String, u64>,
    ) -> SelfProfile {
        // Collect span paths with their inclusive times.
        let spans: Vec<(&str, &HistogramSummary)> = histograms
            .iter()
            .filter_map(|(name, h)| name.strip_prefix("span/").map(|path| (path, h)))
            .collect();
        let mut rows: Vec<ProfileRow> = spans
            .iter()
            .map(|&(path, h)| {
                let prefix = format!("{path}/");
                let children_ns: u64 = spans
                    .iter()
                    .filter(|&&(other, _)| {
                        other
                            .strip_prefix(&prefix)
                            .is_some_and(|rest| !rest.contains('/'))
                    })
                    .map(|&(_, child)| child.sum_ns)
                    .sum();
                ProfileRow {
                    path: path.to_owned(),
                    count: h.count,
                    inclusive_ns: h.sum_ns,
                    exclusive_ns: h.sum_ns.saturating_sub(children_ns),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.exclusive_ns
                .cmp(&a.exclusive_ns)
                .then_with(|| a.path.cmp(&b.path))
        });

        let wall_ns = spans
            .iter()
            .find(|&&(path, _)| path == "report")
            .map(|&(_, h)| h.sum_ns)
            .or_else(|| {
                spans
                    .iter()
                    .filter(|&&(path, _)| !path.contains('/'))
                    .map(|&(_, h)| h.sum_ns)
                    .max()
            })
            .unwrap_or(0);

        let workers = counters.get("par/workers").copied().unwrap_or(0);
        let worker_busy_ns: u64 = counters
            .iter()
            .filter(|(name, _)| name.starts_with("par/worker") && name.ends_with("/busy_ns"))
            .map(|(_, &v)| v)
            .sum();
        let utilization_percent = if workers > 0 && wall_ns > 0 {
            Some(worker_busy_ns as f64 / (workers as f64 * wall_ns as f64) * 100.0)
        } else {
            None
        };

        SelfProfile {
            rows,
            wall_ns,
            workers,
            worker_busy_ns,
            utilization_percent,
        }
    }

    /// The top `n` rows by exclusive time.
    pub fn top(&self, n: usize) -> &[ProfileRow] {
        &self.rows[..self.rows.len().min(n)]
    }

    /// Whether the profile carries no rows (e.g. `DETDIV_LOG=off`).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the top-`n` table plus the utilization line, as embedded
    /// in `TelemetrySnapshot::render_text`.
    pub fn render_text(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "self-profile: top {} span paths by exclusive time (wall {:.1} ms)",
            self.top(n).len(),
            self.wall_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  {:<44} {:>6} {:>10} {:>10} {:>6}",
            "path", "count", "incl_ms", "excl_ms", "excl%"
        );
        for row in self.top(n) {
            let share = if self.wall_ns > 0 {
                row.exclusive_ns as f64 / self.wall_ns as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<44} {:>6} {:>10.1} {:>10.1} {:>5.1}%",
                row.path,
                row.count,
                row.inclusive_ns as f64 / 1e6,
                row.exclusive_ns as f64 / 1e6,
                share
            );
        }
        match self.utilization_percent {
            Some(pct) => {
                let _ = writeln!(
                    out,
                    "worker utilization: {:.1}% ({} workers, busy {:.1} ms / wall {:.1} ms)",
                    pct,
                    self.workers,
                    self.worker_busy_ns as f64 / 1e6,
                    self.wall_ns as f64 / 1e6
                );
            }
            None => {
                let _ = writeln!(out, "worker utilization: n/a (pool counters not recorded)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(count: u64, sum_ns: u64) -> HistogramSummary {
        HistogramSummary {
            count,
            sum_ns,
            min_ns: sum_ns / count.max(1),
            max_ns: sum_ns,
            mean_ns: sum_ns / count.max(1),
            p50_ns: sum_ns / count.max(1),
            p90_ns: sum_ns,
            p99_ns: sum_ns,
        }
    }

    fn maps() -> (BTreeMap<String, HistogramSummary>, BTreeMap<String, u64>) {
        let mut h = BTreeMap::new();
        h.insert("span/report".to_owned(), hist(1, 100_000));
        h.insert("span/report/fig3_6_coverage".to_owned(), hist(1, 60_000));
        h.insert(
            "span/report/fig3_6_coverage/train".to_owned(),
            hist(8, 45_000),
        );
        h.insert("span/report/comb1_subset".to_owned(), hist(1, 30_000));
        // A non-span histogram must be ignored.
        h.insert("detector/stide/train_ns".to_owned(), hist(8, 999_999));
        let mut c = BTreeMap::new();
        c.insert("par/workers".to_owned(), 2);
        c.insert("par/worker0/busy_ns".to_owned(), 80_000);
        c.insert("par/worker1/busy_ns".to_owned(), 60_000);
        c.insert("par/worker0/steals".to_owned(), 3);
        (h, c)
    }

    #[test]
    fn exclusive_subtracts_direct_children_only() {
        let (h, c) = maps();
        let profile = SelfProfile::from_maps(&h, &c);
        let row = |path: &str| {
            profile
                .rows
                .iter()
                .find(|r| r.path == path)
                .unwrap_or_else(|| panic!("missing row {path}"))
        };
        // report: 100k - (60k + 30k direct children) = 10k; the
        // grandchild train span must NOT be subtracted again.
        assert_eq!(row("report").exclusive_ns, 10_000);
        assert_eq!(row("report/fig3_6_coverage").exclusive_ns, 15_000);
        assert_eq!(row("report/fig3_6_coverage/train").exclusive_ns, 45_000);
        assert_eq!(row("report/comb1_subset").exclusive_ns, 30_000);
        assert_eq!(profile.rows.len(), 4, "non-span histograms excluded");
    }

    #[test]
    fn rows_sort_by_descending_exclusive_time() {
        let (h, c) = maps();
        let profile = SelfProfile::from_maps(&h, &c);
        let exclusives: Vec<u64> = profile.rows.iter().map(|r| r.exclusive_ns).collect();
        let mut sorted = exclusives.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(exclusives, sorted);
        assert_eq!(profile.rows[0].path, "report/fig3_6_coverage/train");
        assert_eq!(profile.top(2).len(), 2);
        assert_eq!(profile.top(99).len(), 4);
    }

    #[test]
    fn parallel_children_saturate_exclusive_at_zero() {
        let mut h = BTreeMap::new();
        h.insert("span/outer".to_owned(), hist(1, 10_000));
        // Four workers' children out-sum the parent's wall time.
        h.insert("span/outer/child".to_owned(), hist(4, 36_000));
        let profile = SelfProfile::from_maps(&h, &BTreeMap::new());
        let outer = profile.rows.iter().find(|r| r.path == "outer").unwrap();
        assert_eq!(outer.exclusive_ns, 0);
    }

    #[test]
    fn utilization_uses_workers_times_wall() {
        let (h, c) = maps();
        let profile = SelfProfile::from_maps(&h, &c);
        assert_eq!(profile.wall_ns, 100_000);
        assert_eq!(profile.workers, 2);
        assert_eq!(profile.worker_busy_ns, 140_000);
        let pct = profile.utilization_percent.expect("utilization computed");
        assert!((pct - 70.0).abs() < 1e-9, "got {pct}");
    }

    #[test]
    fn wall_falls_back_to_largest_top_level_span() {
        let mut h = BTreeMap::new();
        h.insert("span/alpha".to_owned(), hist(1, 5_000));
        h.insert("span/beta".to_owned(), hist(1, 9_000));
        let profile = SelfProfile::from_maps(&h, &BTreeMap::new());
        assert_eq!(profile.wall_ns, 9_000);
        assert_eq!(profile.utilization_percent, None);
    }

    #[test]
    fn empty_maps_yield_an_empty_profile() {
        let profile = SelfProfile::from_maps(&BTreeMap::new(), &BTreeMap::new());
        assert!(profile.is_empty());
        assert_eq!(profile, SelfProfile::default());
        let text = profile.render_text(10);
        assert!(text.contains("worker utilization: n/a"));
    }

    #[test]
    fn render_text_shows_paths_and_utilization() {
        let (h, c) = maps();
        let profile = SelfProfile::from_maps(&h, &c);
        let text = profile.render_text(3);
        assert!(text.contains("self-profile: top 3"));
        assert!(text.contains("report/fig3_6_coverage/train"));
        assert!(text.contains("worker utilization: 70.0%"));
        // Top-3 renders train, comb1_subset, fig3_6_coverage and cuts
        // the 4th row (`report`, the smallest exclusive time).
        assert_eq!(
            text.matches("\n  report").count(),
            3,
            "exactly three profile rows rendered: {text}"
        );
        assert!(!text.contains("\n  report  "), "the `report` row is cut");
    }

    #[test]
    fn json_round_trip() {
        let (h, c) = maps();
        let profile = SelfProfile::from_maps(&h, &c);
        let json = serde_json::to_string(&profile).unwrap();
        let back: SelfProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(profile, back);
    }
}

//! Per-thread event tracing with Chrome trace-event export.
//!
//! This module is the *event recorder* underneath the timing spans: when
//! armed (via [`arm`], typically driven by `DETDIV_TRACE=<path>` or
//! `regenerate --trace <path>`), every [`crate::SpanGuard`] emits a
//! begin (`B`) event on entry and an end (`E`) event on drop, the
//! evaluation grid emits complete (`X`) events carrying
//! `(detector, window, anomaly_size)` args for every cell, and the
//! `detdiv-par` workers name their threads (`par-worker-N`) and emit
//! steal/chunk instants. The accumulated stream exports as standard
//! [Chrome trace-event JSON] loadable in Perfetto or `chrome://tracing`.
//!
//! # Recording model
//!
//! * Each thread owns a **fixed-capacity event ring** (a thread-local
//!   `Vec` of [`Event`]s, capacity [`RING_CAPACITY`]); recording an
//!   event is a relaxed atomic load (the armed gate), a thread-local
//!   borrow, and a push — **no locks on the hot path**.
//! * When a ring fills, it is **flushed** in one batch into the central
//!   sink (one short mutex acquisition per [`RING_CAPACITY`] events);
//!   a thread's ring is also flushed automatically when the thread
//!   exits, which is how the scoped `detdiv-par` workers hand their
//!   events over before the pool joins them.
//! * The sink itself is capped at [`SINK_CAPACITY`] events; beyond
//!   that, new events are counted as dropped (see [`dropped`]) rather
//!   than growing without bound. Nothing blocks and nothing reallocs
//!   unpredictably mid-sweep.
//! * Timestamps are monotonic nanoseconds from a process-wide epoch
//!   ([`std::time::Instant`]); within one thread, recorded timestamps
//!   never decrease, and flush batches preserve per-thread order, so
//!   the exported stream is monotonic per `tid`.
//!
//! Tracing is deliberately **orthogonal to `DETDIV_LOG`**: `off`
//! disables logging and metrics but an armed tracer still records
//! events, so the byte-identity determinism gate can run with tracing
//! on while the telemetry snapshot stays empty.
//!
//! # Export
//!
//! [`export_chrome_json`] (or [`write_chrome_trace`]) drains the sink
//! — flushing the calling thread first — and renders
//! `{"traceEvents": [...]}` with `B`/`E`/`i`/`X`/`C`/`M` phases,
//! microsecond `ts` values (fractional, nanosecond precision), and
//! per-thread `tid`s. Export is destructive: the sink is left empty.
//!
//! [Chrome trace-event JSON]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Example
//!
//! ```
//! use detdiv_obs as obs;
//!
//! obs::trace::arm();
//! {
//!     let _outer = obs::span!("trace_doc_outer");
//!     obs::trace::instant("milestone", &[("step", &1usize)]);
//! }
//! let json = obs::trace::export_chrome_json();
//! obs::trace::disarm();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("trace_doc_outer"));
//! assert!(json.contains("milestone"));
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-thread ring capacity, in events, before a batch flush to the
/// central sink.
pub const RING_CAPACITY: usize = 8192;

/// Central sink capacity, in events; events beyond this are dropped
/// (and counted) instead of growing memory without bound.
pub const SINK_CAPACITY: usize = 4_000_000;

/// Whether tracing is armed. Checked first by every record path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Events dropped because the sink was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Next trace thread id; 0 is reserved for process-level metadata.
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// The process-wide trace clock epoch; all timestamps are nanoseconds
/// since this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn sink() -> &'static Mutex<Vec<Event>> {
    static SINK: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Chrome trace-event phase of one recorded [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instant event (`"i"`, thread scope).
    Instant,
    /// Complete event (`"X"`) with an explicit duration.
    Complete,
    /// Counter sample (`"C"`).
    Counter,
    /// Metadata (`"M"`), e.g. thread names.
    Meta,
}

impl Phase {
    /// The phase's one-character Chrome trace-event code.
    pub fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Complete => "X",
            Phase::Counter => "C",
            Phase::Meta => "M",
        }
    }
}

/// One event argument value; strings render as JSON strings, counters
/// as JSON numbers (so Perfetto graphs them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// A textual argument.
    Text(String),
    /// A numeric argument.
    Uint(u64),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::Text(s) => f.write_str(s),
            ArgValue::Uint(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch.
    pub nanos: u64,
    /// Duration in nanoseconds ([`Phase::Complete`] only; 0 otherwise).
    pub dur_nanos: u64,
    /// Trace thread id (1-based; 0 is process metadata).
    pub tid: u32,
    /// Event phase.
    pub phase: Phase,
    /// Event name (span name, instant label, counter name, or metadata
    /// key such as `thread_name`).
    pub name: String,
    /// Event arguments, rendered under `"args"`.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// The calling thread's event ring plus its assigned trace id; flushed
/// into the sink when full and when the thread exits.
struct ThreadRing {
    tid: u32,
    events: Vec<Event>,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
        }
    }

    fn push(&mut self, event: Event) {
        if self.events.capacity() == 0 {
            self.events.reserve_exact(RING_CAPACITY);
        }
        self.events.push(event);
        if self.events.len() >= RING_CAPACITY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = sink().lock().expect("trace sink poisoned");
        let room = SINK_CAPACITY.saturating_sub(sink.len());
        if room >= self.events.len() {
            sink.append(&mut self.events);
        } else {
            let overflow = (self.events.len() - room) as u64;
            sink.extend(self.events.drain(..).take(room));
            self.events.clear();
            DROPPED.fetch_add(overflow, Ordering::Relaxed);
        }
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = RefCell::new(ThreadRing::new());
}

/// Whether tracing is armed: one relaxed atomic load, the only cost the
/// event paths pay when tracing is off.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the recorder: subsequent spans, instants, cells, and counter
/// samples are recorded until [`disarm`]. Also pins the trace epoch.
pub fn arm() {
    let _ = epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the recorder. Already-recorded events stay in the sink until
/// drained by an export or [`reset`].
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// The trace output path configured in the environment
/// (`DETDIV_TRACE=<path>`), if any. Reading the variable does **not**
/// arm the recorder; binaries combine this with their `--trace` flag
/// and call [`arm`] themselves.
pub fn env_path() -> Option<String> {
    match std::env::var("DETDIV_TRACE") {
        Ok(path) if !path.trim().is_empty() => Some(path),
        _ => None,
    }
}

/// Events dropped so far because the central sink was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Flushes the calling thread's ring into the central sink. Export
/// helpers call this automatically for the exporting thread; other
/// threads flush when their ring fills and when they exit.
///
/// **Scoped threads must call this before returning.** A
/// [`std::thread::scope`] observes completion when the spawned closure
/// returns, which can be *before* the thread's TLS destructors (the
/// automatic exit flush) have run — so a drain right after the scope
/// could miss the last worker's ring. The `detdiv-par` workers flush
/// explicitly at the end of their closure for exactly this reason.
pub fn flush_thread() {
    RING.with(|ring| ring.borrow_mut().flush());
}

/// Drains every flushed event out of the central sink (flushing the
/// calling thread first), leaving the sink empty. Events are returned
/// in a stable order: ascending timestamp, with per-thread recording
/// order preserved.
pub fn drain() -> Vec<Event> {
    flush_thread();
    let mut events = {
        let mut sink = sink().lock().expect("trace sink poisoned");
        std::mem::take(&mut *sink)
    };
    // Stable: equal timestamps keep their flush order, so per-tid
    // streams stay monotonic and stack-ordered.
    events.sort_by_key(|e| e.nanos);
    events
}

/// Clears the sink, the calling thread's ring, and the dropped-event
/// counter (test hook; also useful between repeated traced runs).
pub fn reset() {
    RING.with(|ring| ring.borrow_mut().events.clear());
    sink().lock().expect("trace sink poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

fn display_args(args: &[(&'static str, &dyn fmt::Display)]) -> Vec<(&'static str, ArgValue)> {
    args.iter()
        .map(|&(key, value)| (key, ArgValue::Text(value.to_string())))
        .collect()
}

/// Records a span-begin (`B`) event. No-op unless [`armed`].
pub fn begin(name: &str, args: &[(&'static str, &dyn fmt::Display)]) {
    if !armed() {
        return;
    }
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let tid = ring.tid;
        ring.push(Event {
            nanos: now_nanos(),
            dur_nanos: 0,
            tid,
            phase: Phase::Begin,
            name: name.to_owned(),
            args: display_args(args),
        });
    });
}

/// Records a span-end (`E`) event. No-op unless [`armed`].
pub fn end(name: &str) {
    if !armed() {
        return;
    }
    end_paired(name);
}

/// Ungated span-end used by [`crate::SpanGuard`]: a guard that emitted
/// a `B` at entry must close it even if the recorder was disarmed
/// while the span was open, so per-thread B/E balance survives
/// mid-span disarms.
pub(crate) fn end_paired(name: &str) {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let tid = ring.tid;
        ring.push(Event {
            nanos: now_nanos(),
            dur_nanos: 0,
            tid,
            phase: Phase::End,
            name: name.to_owned(),
            args: Vec::new(),
        });
    });
}

/// Records an instant (`i`) event. No-op unless [`armed`].
pub fn instant(name: &str, args: &[(&'static str, &dyn fmt::Display)]) {
    if !armed() {
        return;
    }
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let tid = ring.tid;
        ring.push(Event {
            nanos: now_nanos(),
            dur_nanos: 0,
            tid,
            phase: Phase::Instant,
            name: name.to_owned(),
            args: display_args(args),
        });
    });
}

/// Records a complete (`X`) event that *ended now* and lasted
/// `duration` — the timestamp is backdated accordingly. Used for the
/// evaluation grid's per-cell events. No-op unless [`armed`].
pub fn complete(name: &str, duration: Duration, args: &[(&'static str, &dyn fmt::Display)]) {
    if !armed() {
        return;
    }
    let dur_nanos = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
    let nanos = now_nanos().saturating_sub(dur_nanos);
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let tid = ring.tid;
        ring.push(Event {
            nanos,
            dur_nanos,
            tid,
            phase: Phase::Complete,
            name: name.to_owned(),
            args: display_args(args),
        });
    });
}

/// Records a counter (`C`) sample; Perfetto renders successive samples
/// of the same name as a time series. No-op unless [`armed`].
pub fn counter(name: &str, value: u64) {
    if !armed() {
        return;
    }
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let tid = ring.tid;
        ring.push(Event {
            nanos: now_nanos(),
            dur_nanos: 0,
            tid,
            phase: Phase::Counter,
            name: name.to_owned(),
            args: vec![("value", ArgValue::Uint(value))],
        });
    });
}

/// Names the calling thread in the exported trace (a `thread_name`
/// metadata event); `detdiv-par` workers call this with
/// `par-worker-N`. No-op unless [`armed`].
pub fn set_thread_name(name: &str) {
    if !armed() {
        return;
    }
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let tid = ring.tid;
        ring.push(Event {
            nanos: now_nanos(),
            dur_nanos: 0,
            tid,
            phase: Phase::Meta,
            name: "thread_name".to_owned(),
            args: vec![("name", ArgValue::Text(name.to_owned()))],
        });
    });
}

// ---------------------------------------------------------------------
// Chrome trace-event JSON export
// ---------------------------------------------------------------------

/// Escapes `s` into `out` as the contents of a JSON string literal.
fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_event(out: &mut String, event: &Event) {
    use fmt::Write as _;
    out.push_str("{\"name\":\"");
    push_json_escaped(out, &event.name);
    let _ = write!(
        out,
        "\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
        event.phase.code(),
        event.nanos / 1_000,
        event.nanos % 1_000,
        event.tid
    );
    if event.phase == Phase::Complete {
        let _ = write!(
            out,
            ",\"dur\":{}.{:03}",
            event.dur_nanos / 1_000,
            event.dur_nanos % 1_000
        );
    }
    if event.phase == Phase::Instant {
        // Thread-scoped instants render as small arrows on the track.
        out.push_str(",\"s\":\"t\"");
    }
    if !event.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in event.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            push_json_escaped(out, key);
            out.push_str("\":");
            match value {
                ArgValue::Text(text) => {
                    out.push('"');
                    push_json_escaped(out, text);
                    out.push('"');
                }
                ArgValue::Uint(v) => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders `events` as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`), prepending a `process_name` metadata
/// record and appending a `detdiv/trace_dropped` counter when events
/// were dropped.
pub fn render_chrome_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"detdiv\"}}",
    );
    for event in events {
        out.push_str(",\n");
        write_event(&mut out, event);
    }
    let dropped = dropped();
    if dropped > 0 {
        use fmt::Write as _;
        let _ = write!(
            out,
            ",\n{{\"name\":\"detdiv/trace_dropped\",\"ph\":\"C\",\"ts\":{}.000,\
             \"pid\":1,\"tid\":0,\"args\":{{\"value\":{}}}}}",
            now_nanos() / 1_000,
            dropped
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Drains the sink and renders it as Chrome trace-event JSON; see
/// [`render_chrome_json`]. Destructive: the sink is left empty.
pub fn export_chrome_json() -> String {
    render_chrome_json(&drain())
}

/// Drains the sink and writes the Chrome trace-event JSON to `path`
/// (crash-safely, via [`detdiv_resil::AtomicFile`]: the file appears
/// complete or not at all), returning the number of exported events.
///
/// # Errors
///
/// Propagates the underlying file write error; `path` is untouched on
/// failure.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let events = drain();
    detdiv_resil::AtomicFile::write(path, render_chrome_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming is process-global; unit tests that toggle it serialize
    /// here (the integration suite in `tests/trace.rs` has its own
    /// lock — the two binaries are separate processes).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_records_nothing() {
        let _guard = lock();
        disarm();
        reset();
        begin("unit_disarmed_span", &[]);
        end("unit_disarmed_span");
        instant("unit_disarmed_instant", &[]);
        counter("unit_disarmed_counter", 7);
        // Other (non-trace) unit tests share the process and may have
        // recorded events while a sibling trace test was armed; only
        // this test's own names prove the disarmed path is inert.
        assert!(drain().iter().all(|e| !e.name.starts_with("unit_disarmed")));
    }

    #[test]
    fn armed_records_and_exports_all_phases() {
        let _guard = lock();
        reset();
        arm();
        begin("unit_phase_span", &[("detector", &"stide")]);
        instant("unit_phase_instant", &[("n", &3usize)]);
        complete(
            "unit_phase_cell",
            Duration::from_micros(5),
            &[("window", &6usize)],
        );
        counter("unit_phase_counter", 42);
        set_thread_name("unit-thread");
        end("unit_phase_span");
        disarm();
        let events = drain();
        let phases: Vec<Phase> = events.iter().map(|e| e.phase).collect();
        assert!(phases.contains(&Phase::Begin));
        assert!(phases.contains(&Phase::End));
        assert!(phases.contains(&Phase::Instant));
        assert!(phases.contains(&Phase::Complete));
        assert!(phases.contains(&Phase::Counter));
        assert!(phases.contains(&Phase::Meta));
        let json = render_chrome_json(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("unit_phase_cell"));
        assert!(json.contains("\"value\":42"));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn complete_events_backdate_their_timestamp() {
        let _guard = lock();
        reset();
        arm();
        let before = now_nanos();
        complete("unit_backdate", Duration::from_millis(2), &[]);
        disarm();
        let events = drain();
        let cell = events
            .iter()
            .find(|e| e.name == "unit_backdate")
            .expect("complete event recorded");
        assert_eq!(cell.phase, Phase::Complete);
        assert!(cell.dur_nanos >= 2_000_000);
        assert!(
            cell.nanos <= before || cell.nanos.saturating_sub(before) < 2_000_000,
            "X events must start before they end"
        );
    }

    #[test]
    fn json_escapes_hostile_names() {
        let event = Event {
            nanos: 1500,
            dur_nanos: 0,
            tid: 1,
            phase: Phase::Instant,
            name: "quote\" slash\\ newline\n".to_owned(),
            args: vec![("k", ArgValue::Text("\tctrl\u{1}".to_owned()))],
        };
        let mut out = String::new();
        write_event(&mut out, &event);
        assert!(out.contains("quote\\\" slash\\\\ newline\\n"));
        assert!(out.contains("\\tctrl\\u0001"));
        assert!(out.contains("\"ts\":1.500"));
    }

    #[test]
    fn ring_flushes_to_sink_when_full() {
        let _guard = lock();
        reset();
        arm();
        for i in 0..(RING_CAPACITY + 10) {
            instant("unit_ring_fill", &[("i", &i)]);
        }
        disarm();
        // The first RING_CAPACITY events must already be in the sink
        // before any drain-triggered flush.
        let in_sink = sink().lock().expect("trace sink poisoned").len();
        assert!(in_sink >= RING_CAPACITY, "sink has {in_sink} events");
        let events = drain();
        assert!(events.len() >= RING_CAPACITY + 10);
    }
}

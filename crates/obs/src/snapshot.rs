//! Serializable run-telemetry types.
//!
//! A [`TelemetrySnapshot`] is the frozen, JSON-friendly view of the
//! global registry: counters, histogram summaries, and per-cell wall
//! times for the (anomaly size × detector window) evaluation grid.
//! Maps are `BTreeMap`s and the cell rows are sorted on their grid key
//! (experiment, detector, window, anomaly size) when the snapshot is
//! taken, so the serialized form is deterministic field-for-field even
//! when cells were recorded from many `detdiv-par` workers — which the
//! test suite asserts.

use crate::profile::SelfProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Point-in-time summary of one streaming histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample, in nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Largest sample, in nanoseconds (0 when empty).
    pub max_ns: u64,
    /// Mean sample, in nanoseconds (integer division; 0 when empty).
    pub mean_ns: u64,
    /// Estimated median, in nanoseconds.
    pub p50_ns: u64,
    /// Estimated 90th percentile, in nanoseconds.
    pub p90_ns: u64,
    /// Estimated 99th percentile, in nanoseconds.
    pub p99_ns: u64,
}

/// One sampled counter time series, as recorded by a live-introspection
/// sampler (`detdiv-scope`): the ring of absolute counter values it
/// observed at a fixed interval, plus the rate derived from the newest
/// pair. Carries wall-clock-dependent data by construction, so it is
/// only ever non-empty when a sampler was explicitly armed — paper
/// artifacts produced without one are unaffected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// The sampled counter's registry name (e.g.
    /// `detector/stide/windows_scored`), or a sampler-derived
    /// aggregate (`scope/events`).
    pub name: String,
    /// Sampling interval, in milliseconds.
    pub interval_ms: u64,
    /// Ring contents, oldest first: the counter's absolute value at
    /// each tick, up to the ring capacity.
    pub samples: Vec<u64>,
    /// Events per second derived from the two newest samples (0 when
    /// fewer than two samples exist or the counter went backwards).
    pub rate_per_sec: f64,
}

/// Wall time of one evaluation-grid cell: one detector trained at one
/// window, scored against one anomaly size.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Enclosing experiment context (the span path active when the
    /// cell was recorded, e.g. `report/fig2_stide`).
    pub experiment: String,
    /// Detector name (e.g. `stide`).
    pub detector: String,
    /// Detector window (DW).
    pub window: usize,
    /// Anomaly size (AS).
    pub anomaly_size: usize,
    /// Wall time spent training + scoring the cell, in nanoseconds.
    pub nanos: u64,
}

/// Frozen view of the telemetry registry for one run.
///
/// Attached to `FullReport` output and written as
/// `paper_telemetry.json` by the regeneration binary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Monotonic event counters, keyed by counter name.
    pub counters: BTreeMap<String, u64>,
    /// Timing histograms, keyed by histogram name (span paths use the
    /// `span/` prefix, per-detector timers the `detector/` prefix).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-cell wall times for every evaluation-grid cell, sorted on
    /// (experiment, detector, window, anomaly size) so the order never
    /// depends on worker scheduling.
    pub cells: Vec<CellTiming>,
    /// The self-profile derived from the span histograms and pool
    /// counters: inclusive/exclusive time per span path plus worker
    /// utilization. Defaults to empty when deserializing snapshots
    /// written before this field existed.
    #[serde(default)]
    pub profile: SelfProfile,
    /// Sampled counter time series, non-empty only when a
    /// live-introspection sampler (`detdiv-scope`) was armed for the
    /// run. Defaults to empty when deserializing snapshots written
    /// before this field existed.
    #[serde(default)]
    pub timeseries: Vec<SeriesSummary>,
}

impl TelemetrySnapshot {
    /// Whether nothing was recorded (e.g. telemetry was disabled via
    /// `DETDIV_LOG=off`).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.cells.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Renders a compact human-readable table of the snapshot, used by
    /// the telemetry example and the regeneration binary's stderr
    /// summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "telemetry: {} counters", self.counters.len());
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<44} {value:>12}");
        }
        let _ = writeln!(out, "telemetry: {} histograms", self.histograms.len());
        let _ = writeln!(
            out,
            "  {:<44} {:>8} {:>10} {:>10} {:>10}",
            "name", "count", "mean_us", "p50_us", "p99_us"
        );
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                name,
                h.count,
                h.mean_ns as f64 / 1e3,
                h.p50_ns as f64 / 1e3,
                h.p99_ns as f64 / 1e3,
            );
        }
        let _ = writeln!(out, "telemetry: {} grid cells timed", self.cells.len());
        if !self.timeseries.is_empty() {
            let _ = writeln!(out, "telemetry: {} sampled series", self.timeseries.len());
            for s in &self.timeseries {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>8} samples @{:>5} ms {:>12.1}/s",
                    s.name,
                    s.samples.len(),
                    s.interval_ms,
                    s.rate_per_sec,
                );
            }
        }
        if !self.profile.is_empty() {
            out.push_str(&self.profile.render_text(12));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        snap.counters.insert("eval/cases".into(), 12);
        snap.counters.insert("detector/stide/alarms".into(), 3);
        snap.histograms.insert(
            "span/report".into(),
            HistogramSummary {
                count: 1,
                sum_ns: 1000,
                min_ns: 1000,
                max_ns: 1000,
                mean_ns: 1000,
                p50_ns: 1000,
                p90_ns: 1000,
                p99_ns: 1000,
            },
        );
        snap.cells.push(CellTiming {
            experiment: "report/fig2_stide".into(),
            detector: "stide".into(),
            window: 6,
            anomaly_size: 2,
            nanos: 42,
        });
        snap.profile = SelfProfile::from_maps(&snap.histograms, &snap.counters);
        snap.timeseries.push(SeriesSummary {
            name: "detector/stide/windows_scored".into(),
            interval_ms: 250,
            samples: vec![0, 40, 94],
            rate_per_sec: 216.0,
        });
        snap
    }

    #[test]
    fn json_round_trip_preserves_snapshot() {
        let snap = sample();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn json_field_ordering_is_deterministic() {
        let a = serde_json::to_string(&sample()).unwrap();
        let b = serde_json::to_string(&sample()).unwrap();
        assert_eq!(a, b);
        // BTreeMap keys serialize sorted: the detector counter sorts
        // before the eval counter.
        let det = a.find("detector/stide/alarms").unwrap();
        let eval = a.find("eval/cases").unwrap();
        assert!(det < eval, "counter keys must serialize in sorted order");
    }

    #[test]
    fn accessors_and_empty_check() {
        let snap = sample();
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("eval/cases"), 12);
        assert_eq!(snap.counter("absent"), 0);
        assert!(snap.histogram("span/report").is_some());
        assert!(TelemetrySnapshot::default().is_empty());
    }

    #[test]
    fn render_text_mentions_all_sections() {
        let text = sample().render_text();
        assert!(text.contains("counters"));
        assert!(text.contains("histograms"));
        assert!(text.contains("grid cells timed"));
        assert!(text.contains("eval/cases"));
        assert!(text.contains("span/report"));
        assert!(text.contains("self-profile"), "profile table rendered");
        assert!(text.contains("worker utilization"));
    }
}

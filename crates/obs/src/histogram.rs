//! Lock-free streaming histograms with log2 buckets.
//!
//! A [`Histogram`] holds 64 atomic buckets where bucket `i` counts
//! recorded values `v` with `floor(log2(v)) == i` (zero lands in
//! bucket 0). Alongside the buckets it tracks exact count, sum, min
//! and max, all via relaxed atomics, so recording is wait-free and
//! safe under arbitrary thread contention.
//!
//! Quantiles are estimated by walking the cumulative bucket counts and
//! interpolating linearly inside the target bucket; the estimate is
//! therefore always within the bucket's `[2^i, 2^(i+1))` bounds, i.e.
//! within a factor of two of the true order statistic, which is ample
//! for wall-clock timing summaries.

use crate::snapshot::HistogramSummary;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A thread-safe streaming histogram over `u64` samples (nanoseconds,
/// by convention, for the timing histograms in this workspace).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the log2 bucket for `value`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        value.ilog2() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`; `u64::MAX` for
/// the last bucket). This is the `le` bound a cumulative exposition
/// format (e.g. Prometheus text 0.0.4) attaches to the bucket: every
/// sample routed to bucket `i` is `<=` this value.
pub fn bucket_upper_inclusive(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of the recorded
    /// samples; 0 when the histogram is empty.
    ///
    /// The estimate interpolates linearly within the log2 bucket that
    /// contains the target rank, clamped to the observed min/max, so
    /// it is exact for single-bucket distributions and within a factor
    /// of two otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the desired order statistic.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let low = bucket_low(i);
                let high = bucket_high(i);
                let within = (target - seen) as f64 / n as f64;
                let est = low as f64 + within * (high.saturating_sub(low)) as f64;
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return (est as u64).clamp(min, max);
            }
            seen += n;
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the raw log2 bucket counts (bucket `i`
    /// counts samples whose `floor(log2(v)) == i`). Used by exposition
    /// layers that need the distribution itself, not just the
    /// [`HistogramSummary`] quantile estimates.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Produces a serializable point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            (
                self.min.load(Ordering::Relaxed),
                self.max.load(Ordering::Relaxed),
            )
        };
        HistogramSummary {
            count,
            sum_ns: sum,
            min_ns: min,
            max_ns: max,
            mean_ns: sum.checked_div(count).unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert!(bucket_low(5) <= 40 && 40 < bucket_high(5));
    }

    #[test]
    fn inclusive_upper_bounds_cover_their_buckets() {
        // Every representable value in bucket `i` is <= its inclusive
        // upper bound, and the bounds are strictly increasing — the
        // property a cumulative `le` exposition relies on.
        assert_eq!(bucket_upper_inclusive(0), 1);
        assert_eq!(bucket_upper_inclusive(1), 3);
        assert_eq!(bucket_upper_inclusive(62), (1u64 << 63) - 1);
        assert_eq!(bucket_upper_inclusive(63), u64::MAX);
        for i in 0..BUCKETS {
            assert!(bucket_high(i).saturating_sub(1) <= bucket_upper_inclusive(i));
            if i > 0 {
                assert!(bucket_upper_inclusive(i - 1) < bucket_upper_inclusive(i));
            }
        }
    }

    #[test]
    fn bucket_counts_reflect_recordings() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(5); // bucket 2
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 1);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn empty_histogram_summarises_to_zeros() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn quantiles_stay_within_log2_bucket_bounds() {
        let h = Histogram::new();
        // 1000 samples uniform over 0..8192 (deterministic stride).
        for i in 0..1000u64 {
            h.record(i * 8);
        }
        let true_p50 = 500 * 8;
        let true_p90 = 900 * 8;
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        // Log2 buckets guarantee a factor-of-two envelope.
        assert!(
            p50 >= true_p50 / 2 && p50 <= true_p50 * 2,
            "p50 estimate {p50} vs true {true_p50}"
        );
        assert!(
            p90 >= true_p90 / 2 && p90 <= true_p90 * 2,
            "p90 estimate {p90} vs true {true_p90}"
        );
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert_eq!(h.quantile(1.0), h.summary().max_ns);
    }

    #[test]
    fn single_valued_distribution_is_exact() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        let s = h.summary();
        assert_eq!(s.min_ns, 42);
        assert_eq!(s.max_ns, 42);
        assert_eq!(s.p50_ns, 42);
        assert_eq!(s.p90_ns, 42);
        assert_eq!(s.p99_ns, 42);
        assert_eq!(s.mean_ns, 42);
    }

    #[test]
    fn record_is_safe_under_contention() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        let s = h.summary();
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 79_999);
        assert!(s.p50_ns > 0);
    }
}

//! Log levels and the process-wide verbosity gate.
//!
//! The effective level is read once from the `DETDIV_LOG` environment
//! variable (default [`Level::Warn`]) and cached in an atomic; it can
//! be overridden programmatically with [`set_max_level`], which is how
//! tests and the `--quiet`/`--verbose` style CLI flags take control
//! without touching the environment.
//!
//! `DETDIV_LOG=off` is the telemetry kill switch: it disables not only
//! logging but also metrics collection (spans, counters, histograms),
//! so instrumented hot paths reduce to a single relaxed atomic load.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, ordered from most to least severe.
///
/// A record at level `L` is emitted when `L <= max_level()`;
/// [`Level::Off`] suppresses everything including metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// No logging and no metrics collection.
    Off = 0,
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions worth surfacing by default.
    Warn = 2,
    /// High-level progress (per-experiment, per-corpus).
    Info = 3,
    /// Per-span timings and per-cell progress.
    Debug = 4,
    /// Everything, including span entry events.
    Trace = 5,
}

impl Level {
    /// Short lowercase name used in log lines and `DETDIV_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `DETDIV_LOG` value (case-insensitive); `None` when
    /// unrecognised.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Sentinel meaning "not yet initialised from the environment".
const UNINIT: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn level_from_env() -> Level {
    std::env::var("DETDIV_LOG")
        .ok()
        .as_deref()
        .and_then(Level::parse)
        .unwrap_or(Level::Warn)
}

/// The current effective verbosity level.
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    if raw != UNINIT {
        return Level::from_u8(raw);
    }
    let level = level_from_env();
    // Racing initialisers all compute the same env-derived value, so a
    // plain store is fine; an interleaved `set_max_level` wins because
    // it stored after us or we overwrite with the same env value only
    // when still uninitialised.
    let _ = MAX_LEVEL.compare_exchange(UNINIT, level as u8, Ordering::Relaxed, Ordering::Relaxed);
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Overrides the effective level for the rest of the process (or until
/// the next call). Takes precedence over `DETDIV_LOG`.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a record at `level` should be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Whether metrics (spans, counters, histograms, cell timings) are
/// collected. False only under `DETDIV_LOG=off`.
#[inline]
pub fn telemetry_enabled() -> bool {
    max_level() != Level::Off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_level_names() {
        for (name, level) in [
            ("off", Level::Off),
            ("ERROR", Level::Error),
            ("warn", Level::Warn),
            ("warning", Level::Warn),
            ("Info", Level::Info),
            ("debug", Level::Debug),
            ("trace", Level::Trace),
        ] {
            assert_eq!(Level::parse(name), Some(level), "{name}");
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn display_round_trips() {
        for level in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(&level.to_string()), Some(level));
        }
    }
}

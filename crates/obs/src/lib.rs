//! `detdiv-obs`: zero-dependency observability for the detdiv
//! workspace.
//!
//! The crate provides four cooperating layers, all gated by the
//! `DETDIV_LOG` environment variable (default `warn`; `off` disables
//! everything, reducing instrumented hot paths to one relaxed atomic
//! load):
//!
//! 1. **Structured logging** — [`error!`], [`warn!`], [`info!`],
//!    [`debug!`], [`trace!`] emit single-write stderr lines of the
//!    form `[detdiv info target] message key=value ...`.
//! 2. **Hierarchical timing spans** — [`span!`] returns an RAII
//!    [`SpanGuard`]; nested guards compose slash-joined paths
//!    (`report/fig2_stide/train`) and record wall time into the
//!    `span/<path>` histogram on drop.
//! 3. **Metrics** — [`incr_counter`], [`record_duration`], and
//!    [`record_cell`] feed atomic counters and log2-bucket streaming
//!    histograms ([`histogram::Histogram`]) in a process-global
//!    registry.
//! 4. **Run telemetry** — [`snapshot`] freezes the registry into a
//!    serializable [`TelemetrySnapshot`]; [`reset`] scopes it to one
//!    run. The evaluation pipeline attaches the snapshot to
//!    `FullReport` and the regeneration binary writes it as
//!    `paper_telemetry.json`.
//!
//! # Example
//!
//! ```
//! use detdiv_obs as obs;
//!
//! obs::set_max_level(obs::Level::Info);
//! let _run = obs::span!("demo_run");
//! {
//!     let _train = obs::span!("train", detector = "stide", window = 6usize);
//!     obs::incr_counter("demo/windows_scored", 94);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo/windows_scored"), 94);
//! assert!(snap.histogram("span/demo_run/train").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod histogram;
mod level;
mod profile;
mod registry;
mod snapshot;
mod span;
pub mod trace;

pub use histogram::Histogram;
pub use level::{enabled, max_level, set_max_level, telemetry_enabled, Level};
pub use profile::{ProfileRow, SelfProfile};
pub use registry::{
    export_counters, export_histograms, incr_counter, record_cell, record_duration, record_nanos,
    reset, set_counter, set_timeseries_source, snapshot, TimeseriesSource,
};
pub use snapshot::{CellTiming, HistogramSummary, SeriesSummary, TelemetrySnapshot};
pub use span::{context, current_depth, current_path, ContextGuard, SpanGuard};

use std::fmt;

/// Implementation detail of the logging macros: formats one record and
/// writes it to stderr in a single locked write.
#[doc(hidden)]
pub fn __log(
    level: Level,
    target: &str,
    message: &dyn fmt::Display,
    fields: &[(&str, &dyn fmt::Display)],
) {
    use std::fmt::Write as _;
    use std::io::Write as _;
    let mut line = String::with_capacity(96);
    let _ = write!(line, "[detdiv {level:>5} {target}] {message}");
    for (key, value) in fields {
        let _ = write!(line, " {key}={value}");
    }
    line.push('\n');
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

/// Writes pre-formatted multi-line text (e.g. a telemetry summary
/// table) verbatim to stderr when `level` is enabled, bypassing the
/// single-line `key=value` record format.
pub fn raw(level: Level, text: &str) {
    use std::io::Write as _;
    if !enabled(level) {
        return;
    }
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(text.as_bytes());
    if !text.ends_with('\n') {
        let _ = handle.write_all(b"\n");
    }
}

/// Emits one structured log record at an explicit [`Level`].
///
/// `log_event!(Level::Info, "message", key = value, ...)` — the
/// message is any `Display` value; fields are `ident = expr` pairs
/// rendered as `key=value`. Arguments are not evaluated when the
/// level is disabled.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let level = $level;
        if $crate::enabled(level) {
            $crate::__log(
                level,
                module_path!(),
                &$msg,
                &[$((stringify!($key), &$val as &dyn ::std::fmt::Display)),*],
            );
        }
    }};
}

/// Logs at [`Level::Error`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log_event!($crate::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log_event!($crate::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log_event!($crate::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log_event!($crate::Level::Debug, $($arg)*) };
}

/// Logs at [`Level::Trace`]; see [`log_event!`] for the field syntax.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log_event!($crate::Level::Trace, $($arg)*) };
}

/// Opens a hierarchical timing span and returns its RAII
/// [`SpanGuard`]; bind it (`let _span = span!("train")`) so it lives
/// for the scope being timed.
///
/// `span!("train", detector = name, window = dw)` logs the entry at
/// [`Level::Trace`] with the given fields, and on drop records wall
/// time into the `span/<path>` histogram, where `<path>` is the
/// slash-joined stack of enclosing spans on this thread. When the
/// [`trace`] recorder is armed, the span additionally emits paired
/// `B`/`E` trace events carrying the fields as event args.
///
/// Field expressions are evaluated exactly once (they feed both the
/// log record and the trace args), so keep them cheap and
/// side-effect-free — every current call site passes plain accessors.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let name = $name;
        $(let $key = $val;)*
        let args: &[(&'static str, &dyn ::std::fmt::Display)] =
            &[$((stringify!($key), &$key as &dyn ::std::fmt::Display)),*];
        $crate::log_event!($crate::Level::Trace, "span opened", span = name $(, $key = $key)*);
        $crate::SpanGuard::enter_with(name, args)
    }};
}

#[cfg(test)]
mod tests {
    use crate as obs;

    #[test]
    fn macros_compile_in_all_arities() {
        // Logging is gated at warn by default, so these mostly
        // exercise expansion, evaluation, and field rendering.
        obs::log_event!(obs::Level::Trace, "plain message");
        obs::trace!("message", answer = 42);
        obs::debug!("message", a = 1, b = "two", c = 3.5);
        obs::info!(format!("built {}", "dynamically"), extra = true,);
        let _depth_before = obs::current_depth();
        {
            let _span = obs::span!("macro_arity_span", detector = "stide", window = 6usize);
            assert_eq!(obs::current_depth(), _depth_before + 1);
        }
        assert_eq!(obs::current_depth(), _depth_before);
    }

    #[test]
    fn span_macro_records_histogram() {
        {
            let _span = obs::span!("lib_test_span");
        }
        let snap = obs::snapshot();
        assert!(snap.histogram("span/lib_test_span").is_some());
    }

    #[test]
    fn disabled_level_skips_field_evaluation_cheaply() {
        // `Off` cannot be tested here without racing other tests (the
        // level is process-global), but an arbitrarily deep disabled
        // level must still short-circuit before formatting.
        let evaluated = std::cell::Cell::new(false);
        let observe = || {
            evaluated.set(true);
            "value"
        };
        if !obs::enabled(obs::Level::Trace) {
            obs::trace!("never emitted", field = observe());
            assert!(
                !evaluated.get(),
                "disabled trace! must not evaluate its fields"
            );
        }
    }
}

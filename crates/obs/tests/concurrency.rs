//! Concurrency contract tests for the global telemetry registry.
//!
//! The registry is shared by every `detdiv-par` worker, so two things
//! must hold under real thread contention: updates are *exact* (no
//! lost increments or dropped samples), and the frozen
//! [`detdiv_obs::TelemetrySnapshot`] is *deterministic* — its
//! serialized form depends only on what was recorded, never on which
//! thread recorded it first.
//!
//! Every test uses its own counter/histogram/span names and compares
//! before/after deltas, so the tests are safe under the default
//! parallel test runner and alongside the registry's own unit tests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use detdiv_obs as obs;

/// Exactness: T threads × N increments on one counter lose nothing,
/// even with a deliberately racy mix of +1 and +3 steps.
#[test]
fn counter_increments_sum_exactly_across_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let name = "test/concurrency/exact_counter";
    let before = obs::snapshot().counter(name);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Alternate step sizes so torn updates would show
                    // up as a wrong total, not just a wrong count.
                    obs::incr_counter(name, if (t + i) % 2 == 0 { 1 } else { 3 });
                }
            });
        }
    });
    let after = obs::snapshot().counter(name);
    // Each thread contributes PER_THREAD/2 ones and PER_THREAD/2 threes.
    assert_eq!(after - before, THREADS * PER_THREAD * 2);
}

/// Exactness: concurrent histogram recording drops no samples and
/// accumulates the exact nanosecond sum.
#[test]
fn histogram_samples_sum_exactly_across_threads() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5_000;
    let name = "test/concurrency/exact_histogram";
    let before = obs::snapshot().histogram(name).copied().unwrap_or_default();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    obs::record_nanos(name, 100 + (t * PER_THREAD + i) % 7);
                }
            });
        }
    });
    let after = obs::snapshot()
        .histogram(name)
        .copied()
        .expect("histogram exists after recording");
    assert_eq!(after.count - before.count, THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| 100 + (t * PER_THREAD + i) % 7))
        .sum();
    assert_eq!(after.sum_ns - before.sum_ns, expected_sum);
    assert!(after.min_ns >= 100 || before.count > 0);
    assert!(after.max_ns <= before.max_ns.max(106) || before.max_ns > 106);
}

/// Determinism: the same logical set of grid cells, recorded by
/// differently-sized thread fleets in scheduler-chosen order, always
/// serializes to the same bytes once filtered to the round's rows
/// (modulo the round tag itself).
#[test]
fn snapshot_cell_order_is_independent_of_recording_threads() {
    // The logical cell set: every (detector, window, AS) combination
    // with a deterministic fake duration derived from the key.
    let detectors = ["stide", "markov", "lane-brodley", "neural"];
    let cells: Vec<(&str, usize, usize, u64)> = detectors
        .iter()
        .flat_map(|&d| {
            (2..=6usize)
                .flat_map(move |w| (2..=4usize).map(move |a| (d, w, a, (w * 100 + a * 7) as u64)))
        })
        .collect();

    let record_round = |round: usize, threads: usize| -> String {
        let tag = format!("test_concurrency_order_round{round}");
        std::thread::scope(|scope| {
            for t in 0..threads {
                let tag = tag.clone();
                let cells = &cells;
                scope.spawn(move || {
                    let _span = obs::SpanGuard::enter(&tag);
                    // Strided assignment: each round partitions the
                    // cells across its threads differently.
                    for (d, w, a, ns) in cells.iter().skip(t).step_by(threads) {
                        obs::record_cell(d, *w, *a, Duration::from_nanos(*ns));
                    }
                });
            }
        });
        let snap = obs::snapshot();
        let ours: Vec<String> = snap
            .cells
            .iter()
            .filter(|c| c.experiment.contains(&tag))
            .map(|c| format!("{}/{}/{}/{}", c.detector, c.window, c.anomaly_size, c.nanos))
            .collect();
        assert_eq!(ours.len(), cells.len(), "round {round} lost cells");
        ours.join("\n")
    };

    let reference = record_round(0, 1);
    for (round, threads) in [(1usize, 2usize), (2, 4), (3, 8)] {
        let got = record_round(round, threads);
        assert_eq!(
            got, reference,
            "cell ordering diverged when recorded by {threads} threads"
        );
    }
}

/// Determinism: two snapshots taken with no intervening writes to the
/// test's keys serialize those keys identically, and counter keys come
/// out sorted regardless of creation order.
#[test]
fn snapshot_key_order_is_sorted_not_insertion_ordered() {
    // Create counters in deliberately unsorted order, from two threads.
    let names = [
        "test/concurrency/zkey",
        "test/concurrency/akey",
        "test/concurrency/mkey",
    ];
    std::thread::scope(|scope| {
        scope.spawn(|| obs::incr_counter(names[0], 1));
        scope.spawn(|| {
            obs::incr_counter(names[2], 1);
            obs::incr_counter(names[1], 1);
        });
    });
    let snap = obs::snapshot();
    let ours: Vec<&String> = snap
        .counters
        .keys()
        .filter(|k| k.starts_with("test/concurrency/") && k.ends_with("key"))
        .collect();
    assert_eq!(
        ours,
        vec![
            "test/concurrency/akey",
            "test/concurrency/mkey",
            "test/concurrency/zkey"
        ],
        "counter keys must snapshot in sorted order"
    );
    // And the serialized JSON of the whole snapshot is reproducible
    // when nothing changes in between.
    let a = serde_json::to_string(&obs::snapshot()).unwrap();
    let b = serde_json::to_string(&obs::snapshot()).unwrap();
    // Other tests may be writing concurrently; retry once settles only
    // our keys, so compare the filtered key ordering instead of bytes.
    let sorted = {
        let mut s = names;
        s.sort_unstable();
        s
    };
    let extract = |s: &str| {
        sorted
            .iter()
            .map(|n| s.find(n).expect("key present"))
            .collect::<Vec<_>>()
    };
    let pos_a = extract(&a);
    let pos_b = extract(&b);
    assert!(pos_a.windows(2).all(|w| w[0] < w[1]));
    assert!(pos_b.windows(2).all(|w| w[0] < w[1]));
}

/// `set_counter` mirrors an external gauge: concurrent `store`s of the
/// same value with interleaved snapshots never observe a torn or
/// stale-beyond-last-write value.
#[test]
fn set_counter_gauge_is_stable_under_concurrent_snapshots() {
    let name = "test/concurrency/gauge";
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writer: continually republishes the gauge, alternating
        // between two valid values.
        scope.spawn(|| {
            for i in 0..20_000u64 {
                obs::set_counter(name, if i % 2 == 0 { 1_000 } else { 2_000 });
            }
            stop.store(true, Ordering::Release);
        });
        // Readers: every observed value must be one of the published
        // ones (u64 stores are atomic; this guards against torn reads
        // ever being introduced).
        for _ in 0..3 {
            scope.spawn(|| {
                while !stop.load(Ordering::Acquire) {
                    let v = obs::snapshot().counter(name);
                    assert!(v == 0 || v == 1_000 || v == 2_000, "torn gauge read: {v}");
                }
            });
        }
    });
    let last = obs::snapshot().counter(name);
    assert_eq!(last, 2_000, "final snapshot must see the last write");
}

/// Snapshots taken *during* a write storm are internally consistent:
/// every observed counter value is monotonically non-decreasing across
/// successive snapshots.
#[test]
fn snapshots_during_writes_observe_monotonic_counters() {
    let name = "test/concurrency/monotonic";
    let base = obs::snapshot().counter(name);
    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    for _ in 0..5_000 {
                        obs::incr_counter(name, 1);
                    }
                })
            })
            .collect();
        let mut last = base;
        for _ in 0..200 {
            let now = obs::snapshot().counter(name);
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        for w in writers {
            w.join().unwrap();
        }
    });
    assert_eq!(obs::snapshot().counter(name) - base, 4 * 5_000);
}

//! Integration tests for the per-thread event recorder and its Chrome
//! trace-event export.
//!
//! Arming is process-global, so every test here serializes on one
//! mutex (the test harness runs tests on multiple threads). Each test
//! uses uniquely-prefixed span names and filters on them, so stray
//! events from sibling test binaries' shared fixtures cannot cause
//! false failures.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use detdiv_obs as obs;
use obs::trace::{Event, Phase};
use proptest::prelude::*;
use serde::Value;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-tid B/E stack check over recorded events: every `E` must close
/// the innermost open `B` of the same name, and nothing is left open.
fn assert_balanced(events: &[Event]) {
    let mut stacks: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for event in events {
        match event.phase {
            Phase::Begin => stacks.entry(event.tid).or_default().push(&event.name),
            Phase::End => {
                let open = stacks
                    .entry(event.tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("tid {}: E without B ({})", event.tid, event.name));
                assert_eq!(open, event.name, "tid {}: mismatched nesting", event.tid);
            }
            _ => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "tid {tid}: spans left open: {stack:?}");
    }
}

/// Per-tid timestamps never decrease in drained order.
fn assert_monotonic(events: &[Event]) {
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for event in events {
        if let Some(&previous) = last.get(&event.tid) {
            assert!(
                event.nanos >= previous,
                "tid {}: timestamp went backwards {previous} -> {}",
                event.tid,
                event.nanos
            );
        }
        last.insert(event.tid, event.nanos);
    }
}

#[test]
fn exported_file_is_valid_chrome_trace_json() {
    let _guard = lock();
    obs::trace::reset();
    obs::trace::arm();
    {
        let _outer = obs::span!("it_export_outer");
        let _inner = obs::span!("it_export_inner", detector = "stide");
        obs::trace::instant("it_export_instant", &[("k", &7usize)]);
        obs::record_cell("it-export-det", 6, 3, Duration::from_micros(10));
    }
    obs::trace::disarm();

    let path = std::env::temp_dir().join(format!("detdiv_trace_it_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let events = obs::trace::write_chrome_trace(path_str).expect("trace written");
    assert!(events >= 6, "B/E pairs + instant + cell, got {events}");

    let raw = std::fs::read_to_string(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    let doc = serde_json::from_str_value(&raw).expect("trace file is valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    for event in trace_events {
        assert!(event.get("name").and_then(Value::as_str).is_some());
        let phase = event.get("ph").and_then(Value::as_str).expect("ph");
        assert!(
            matches!(phase, "B" | "E" | "i" | "X" | "C" | "M"),
            "{phase}"
        );
        assert!(event.get("ts").is_some());
        assert!(event.get("pid").is_some());
        assert!(event.get("tid").is_some());
    }
    // The grid cell rides along as an X slice with its grid args.
    assert!(raw.contains("\"it-export-det\""));
    assert!(raw.contains("\"window\":\"6\""));
    assert!(raw.contains("\"anomaly_size\":\"3\""));
}

/// Spans recorded from several threads at once drain with per-tid
/// monotonic timestamps and balanced B/E stacks — at width 1 and 4.
#[test]
fn multithreaded_spans_balance_per_tid() {
    let _guard = lock();
    for threads in [1usize, 4] {
        obs::trace::reset();
        obs::trace::arm();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                scope.spawn(move || {
                    obs::trace::set_thread_name(&format!("it-worker-{worker}"));
                    for i in 0..40 {
                        let _outer = obs::SpanGuard::enter("it_mt_outer");
                        if i % 3 == 0 {
                            let _inner = obs::SpanGuard::enter("it_mt_inner");
                            obs::trace::instant("it_mt_tick", &[("i", &i)]);
                        }
                    }
                    // Scoped threads flush explicitly: the scope can
                    // complete before TLS destructors run (see
                    // `trace::flush_thread`).
                    obs::trace::flush_thread();
                });
            }
        });
        obs::trace::disarm();
        let events: Vec<Event> = obs::trace::drain()
            .into_iter()
            .filter(|e| e.name.starts_with("it_mt") || e.name == "thread_name")
            .collect();
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, ends, "threads={threads}");
        assert!(begins >= threads * 40, "threads={threads}: {begins} begins");
        assert_monotonic(&events);
        assert_balanced(&events);
        let named = events
            .iter()
            .filter(|e| e.phase == Phase::Meta && e.name == "thread_name")
            .count();
        assert!(named >= threads, "threads={threads}: {named} named");
    }
}

/// A disarmed recorder does no event-path work: spans, instants, and
/// cells leave the sink untouched, and an export renders only the
/// process-metadata preamble.
#[test]
fn disarmed_recorder_is_inert() {
    let _guard = lock();
    obs::trace::disarm();
    obs::trace::reset();
    {
        let _span = obs::span!("it_disarmed_span");
        obs::trace::instant("it_disarmed_instant", &[]);
        obs::record_cell("it-disarmed-det", 2, 2, Duration::from_micros(1));
    }
    let events = obs::trace::drain();
    assert!(
        events
            .iter()
            .all(|e| !e.name.contains("it_disarmed") && !e.name.contains("it-disarmed")),
        "disarmed paths must record nothing: {events:?}"
    );
}

/// Mid-span disarm: a span that emitted its `B` while armed still
/// emits its `E`, so the per-thread stack stays balanced.
#[test]
fn mid_span_disarm_keeps_b_e_balance() {
    let _guard = lock();
    obs::trace::reset();
    obs::trace::arm();
    {
        let _span = obs::SpanGuard::enter("it_midspan");
        obs::trace::disarm();
        // Guard drops here, after the disarm.
    }
    let events: Vec<Event> = obs::trace::drain()
        .into_iter()
        .filter(|e| e.name == "it_midspan")
        .collect();
    assert_eq!(events.len(), 2, "one B and one E: {events:?}");
    assert_balanced(&events);
}

/// Strategy: a stack-disciplined sequence of span operations. `true`
/// opens a nested span, `false` closes the innermost open one (no-op
/// on an empty stack); everything still open closes at the end.
fn span_ops() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(prop_oneof![Just(true), Just(false)], 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random span nesting round-trips through the Chrome export: the
    /// rendered JSON parses, and re-deriving the B/E stream from it
    /// reproduces exactly the recorded nesting, in order.
    #[test]
    fn random_span_nesting_round_trips_through_export(ops in span_ops()) {
        let _guard = lock();
        obs::trace::reset();
        obs::trace::arm();
        let mut open: Vec<obs::SpanGuard> = Vec::new();
        let mut expected: Vec<(char, String)> = Vec::new();
        let mut next_id = 0usize;
        let mut depth_names: Vec<String> = Vec::new();
        for op in &ops {
            if *op {
                let name = format!("it_prop_{next_id}");
                next_id += 1;
                expected.push(('B', name.clone()));
                open.push(obs::SpanGuard::enter(&name));
                depth_names.push(name);
            } else if !open.is_empty() {
                // close the innermost open span
                drop(open.pop());
                let name = depth_names.pop().expect("name stack tracks guard stack");
                expected.push(('E', name));
            }
        }
        while let Some(guard) = open.pop() {
            drop(guard);
            let name = depth_names.pop().expect("name stack tracks guard stack");
            expected.push(('E', name));
        }
        obs::trace::disarm();

        let events: Vec<Event> = obs::trace::drain()
            .into_iter()
            .filter(|e| e.name.starts_with("it_prop_"))
            .collect();
        assert_monotonic(&events);
        assert_balanced(&events);

        // Render and re-parse; the B/E stream from the JSON must match
        // what was recorded, in order.
        let json = obs::trace::render_chrome_json(&events);
        let doc = serde_json::from_str_value(&json).expect("rendered trace parses");
        let mut from_json: Vec<(char, String)> = Vec::new();
        for event in doc.get("traceEvents").and_then(Value::as_array).unwrap() {
            let name = event.get("name").and_then(Value::as_str).unwrap();
            if !name.starts_with("it_prop_") {
                continue;
            }
            match event.get("ph").and_then(Value::as_str).unwrap() {
                "B" => from_json.push(('B', name.to_owned())),
                "E" => from_json.push(('E', name.to_owned())),
                _ => {}
            }
        }
        prop_assert_eq!(&from_json, &expected);
    }
}

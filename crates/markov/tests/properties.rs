//! Property tests for the Markov substrate.

use detdiv_markov::{ConditionalModel, Prediction, TransitionMatrix};
use detdiv_sequence::{Alphabet, Symbol};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn stream(max_sym: u32, min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..max_sym).prop_map(Symbol::new), min_len..=max_len)
}

proptest! {
    /// Estimated transition matrices are row-stochastic for any stream.
    #[test]
    fn estimated_rows_are_stochastic(s in stream(5, 2, 200), smoothing in 0.0f64..2.0) {
        let a = Alphabet::new(5);
        let m = TransitionMatrix::estimate(&s, a, smoothing).unwrap();
        for from in a.symbols() {
            let sum: f64 = m.row(from).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {from} sums to {sum}");
        }
    }

    /// Without smoothing, estimated probability is positive exactly for
    /// observed transitions (over observed source states).
    #[test]
    fn support_matches_observations(s in stream(4, 2, 120)) {
        let a = Alphabet::new(4);
        let m = TransitionMatrix::estimate(&s, a, 0.0).unwrap();
        let mut seen = [false; 16];
        for w in s.windows(2) {
            seen[w[0].index() * 4 + w[1].index()] = true;
        }
        let observed_source = |x: usize| s[..s.len() - 1].iter().any(|sym| sym.index() == x);
        for from in 0..4usize {
            if !observed_source(from) {
                continue; // uniform fallback row
            }
            for to in 0..4usize {
                let p = m.probability(Symbol::new(from as u32), Symbol::new(to as u32));
                prop_assert_eq!(p > 0.0, seen[from * 4 + to], "({}, {})", from, to);
            }
        }
    }

    /// Generated streams only use transitions with positive probability.
    #[test]
    fn generation_respects_support(seed in 0u64..1000, len in 2usize..200) {
        let a = Alphabet::new(6);
        let m = TransitionMatrix::noisy_cycle(a, 0.3);
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = m.generate(Symbol::new(0), len, &mut rng);
        prop_assert_eq!(s.len(), len);
        for w in s.windows(2) {
            prop_assert!(m.probability(w[0], w[1]) > 0.0);
        }
    }

    /// The stationary distribution is a distribution and is fixed under
    /// one (damped) step of the chain.
    #[test]
    fn stationary_is_a_distribution(noise in 0.01f64..0.4) {
        let a = Alphabet::new(8);
        let m = TransitionMatrix::noisy_cycle(a, noise);
        let pi = m.stationary(20_000, 1e-13);
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(pi.iter().all(|&p| p >= 0.0));
        // For the symmetric noisy cycle, uniform by symmetry.
        for &p in &pi {
            prop_assert!((p - 0.125).abs() < 1e-4, "entry {p}");
        }
    }

    /// Conditional-model distributions normalise per observed context,
    /// and predictions for contexts absent from training are
    /// UnseenContext.
    #[test]
    fn conditional_model_normalises(s in stream(4, 5, 150), k in 1usize..4) {
        prop_assume!(s.len() > k);
        let m = ConditionalModel::estimate(&s, k).unwrap();
        // Every k-window except possibly the final one (which has no
        // successor) is a seen context with a normalised distribution.
        for (i, w) in s.windows(k).enumerate() {
            if i + k >= s.len() {
                continue;
            }
            prop_assert!(m.context_seen(w));
            let mut sum = 0.0;
            for next in 0..4u32 {
                sum += m.predict(w, Symbol::new(next)).probability_or_zero();
            }
            prop_assert!((sum - 1.0).abs() < 1e-9, "context {w:?} sums to {sum}");
        }
        // A context containing an unseen symbol is unseen.
        let foreign = vec![Symbol::new(9); k];
        prop_assert_eq!(m.predict(&foreign, Symbol::new(0)), Prediction::UnseenContext);
    }

    /// The conditional model's total observations equal the number of
    /// (context, next) windows.
    #[test]
    fn conditional_model_counts(s in stream(5, 4, 150), k in 1usize..3) {
        prop_assume!(s.len() > k);
        let m = ConditionalModel::estimate(&s, k).unwrap();
        prop_assert_eq!(m.total_observations(), (s.len() - k) as u64);
    }
}

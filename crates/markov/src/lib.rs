//! Markov-chain substrate for the `detdiv` workspace.
//!
//! Two roles, matching the two places the paper uses Markov machinery:
//!
//! 1. **Data generation** (§5.3): the evaluation corpus is produced from a
//!    Markov-model transition matrix — a deterministic cycle over the
//!    alphabet perturbed with a small amount of nondeterminism.
//!    [`TransitionMatrix`] provides construction ([`TransitionMatrix::cycle`],
//!    [`TransitionMatrix::noisy_cycle`]), validation, estimation,
//!    stationary analysis and stream generation.
//! 2. **Detection** (§5.2): the Markov-based detector conditions on the
//!    preceding DW − 1 elements and scores the probability of the next.
//!    [`ConditionalModel`] is that order-k conditional model, with
//!    explicit [`Prediction::UnseenContext`] semantics.
//!
//! ```
//! use detdiv_markov::TransitionMatrix;
//! use detdiv_sequence::{Alphabet, Symbol};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // The paper's generation matrix: 98 % cycle, 2 % nondeterminism.
//! let m = TransitionMatrix::noisy_cycle(Alphabet::new(8), 0.02);
//! let mut rng = SmallRng::seed_from_u64(2005);
//! let stream = m.generate(Symbol::new(0), 10_000, &mut rng);
//! assert_eq!(stream.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod conditional;
mod error;
mod matrix;

pub use conditional::{ConditionalModel, Prediction};
pub use error::MarkovError;
pub use matrix::TransitionMatrix;

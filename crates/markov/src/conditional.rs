//! Order-k conditional next-symbol models.
//!
//! The paper's Markov-based detector "calculates the probability that the
//! DW-th element will follow" the preceding elements of the window (§5.2,
//! with the smallest workable window being 2: "the next expected, single,
//! categorical element is dependent only on the current, single,
//! categorical element"). A window of size DW therefore conditions on a
//! context of DW − 1 elements — an order-(DW − 1) Markov model, realised
//! here as a [`ConditionalModel`].

use std::collections::HashMap;
use std::fmt;

use detdiv_sequence::Symbol;

use crate::error::MarkovError;

/// The outcome of a conditional-probability query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prediction {
    /// The context was observed in training; the wrapped value is the
    /// maximum-likelihood `P(next | context)` (possibly exactly zero for
    /// a never-observed continuation of an observed context).
    Known(f64),
    /// The context itself never occurred in training; no conditional
    /// distribution exists. Detectors treat this as maximally anomalous.
    UnseenContext,
}

impl Prediction {
    /// The probability under the convention that an unseen context has
    /// probability zero.
    #[inline]
    pub fn probability_or_zero(self) -> f64 {
        match self {
            Prediction::Known(p) => p,
            Prediction::UnseenContext => 0.0,
        }
    }
}

/// Per-context successor statistics.
#[derive(Debug, Clone, Default, PartialEq)]
struct SuccessorDist {
    counts: HashMap<Symbol, u64>,
    total: u64,
}

/// An order-k conditional model `P(next | k preceding elements)`,
/// estimated by maximum likelihood from a training stream.
///
/// # Examples
///
/// ```
/// use detdiv_markov::{ConditionalModel, Prediction};
/// use detdiv_sequence::symbols;
///
/// let train = symbols(&[1, 2, 3, 1, 2, 3, 1, 2, 4]);
/// let model = ConditionalModel::estimate(&train, 2).unwrap();
///
/// // Context (1,2) was followed by 3 twice and by 4 once.
/// assert_eq!(
///     model.predict(&symbols(&[1, 2]), symbols(&[3])[0]),
///     Prediction::Known(2.0 / 3.0)
/// );
/// // Context (3,2) never occurred.
/// assert_eq!(
///     model.predict(&symbols(&[3, 2]), symbols(&[1])[0]),
///     Prediction::UnseenContext
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalModel {
    context_len: usize,
    table: HashMap<Box<[Symbol]>, SuccessorDist>,
}

impl ConditionalModel {
    /// Estimates the model from `stream` with contexts of `context_len`
    /// elements.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::ZeroContext`] if `context_len` is zero;
    /// * [`MarkovError::StreamTooShort`] if the stream holds no complete
    ///   `(context, next)` pair.
    pub fn estimate(stream: &[Symbol], context_len: usize) -> Result<Self, MarkovError> {
        if context_len == 0 {
            return Err(MarkovError::ZeroContext);
        }
        if stream.len() < context_len + 1 {
            return Err(MarkovError::StreamTooShort {
                len: stream.len(),
                needed: context_len + 1,
            });
        }
        let mut table: HashMap<Box<[Symbol]>, SuccessorDist> = HashMap::new();
        for w in stream.windows(context_len + 1) {
            let (context, next) = (&w[..context_len], w[context_len]);
            if let Some(dist) = table.get_mut(context) {
                *dist.counts.entry(next).or_insert(0) += 1;
                dist.total += 1;
            } else {
                let mut dist = SuccessorDist::default();
                dist.counts.insert(next, 1);
                dist.total = 1;
                table.insert(context.to_vec().into_boxed_slice(), dist);
            }
        }
        Ok(ConditionalModel { context_len, table })
    }

    /// The context length `k` of this model.
    #[inline]
    pub const fn context_len(&self) -> usize {
        self.context_len
    }

    /// Number of distinct contexts observed.
    pub fn distinct_contexts(&self) -> usize {
        self.table.len()
    }

    /// `P(next | context)` as a [`Prediction`].
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != self.context_len()`.
    pub fn predict(&self, context: &[Symbol], next: Symbol) -> Prediction {
        assert_eq!(
            context.len(),
            self.context_len,
            "context length must match the model's order"
        );
        match self.table.get(context) {
            None => Prediction::UnseenContext,
            Some(dist) => {
                let c = dist.counts.get(&next).copied().unwrap_or(0);
                Prediction::Known(c as f64 / dist.total as f64)
            }
        }
    }

    /// Whether `context` was observed at all.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != self.context_len()`.
    pub fn context_seen(&self, context: &[Symbol]) -> bool {
        assert_eq!(context.len(), self.context_len);
        self.table.contains_key(context)
    }

    /// Iterates over `(context, next, count)` triples, useful for
    /// training approximators (e.g. the neural detector trains on the
    /// weighted empirical distribution rather than on the raw stream).
    pub fn iter_counts(&self) -> impl Iterator<Item = (&[Symbol], Symbol, u64)> {
        self.table.iter().flat_map(|(ctx, dist)| {
            dist.counts
                .iter()
                .map(move |(&next, &c)| (ctx.as_ref(), next, c))
        })
    }

    /// Total number of `(context, next)` observations.
    pub fn total_observations(&self) -> u64 {
        self.table.values().map(|d| d.total).sum()
    }
}

impl fmt::Display for ConditionalModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conditional-model(order={}, contexts={})",
            self.context_len,
            self.table.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    #[test]
    fn estimate_rejects_zero_context_and_short_streams() {
        assert!(matches!(
            ConditionalModel::estimate(&symbols(&[1, 2, 3]), 0),
            Err(MarkovError::ZeroContext)
        ));
        assert!(matches!(
            ConditionalModel::estimate(&symbols(&[1, 2]), 2),
            Err(MarkovError::StreamTooShort { .. })
        ));
    }

    #[test]
    fn probabilities_are_maximum_likelihood() {
        // (1): followed by 2 three times.
        // (2): followed by 1 twice, by 3 once.
        let train = symbols(&[1, 2, 1, 2, 3, 1, 2, 1]);
        let m = ConditionalModel::estimate(&train, 1).unwrap();
        assert_eq!(
            m.predict(&symbols(&[1]), symbols(&[2])[0]),
            Prediction::Known(1.0)
        );
        assert_eq!(
            m.predict(&symbols(&[2]), symbols(&[1])[0]),
            Prediction::Known(2.0 / 3.0)
        );
        assert_eq!(
            m.predict(&symbols(&[2]), symbols(&[3])[0]),
            Prediction::Known(1.0 / 3.0)
        );
        // Seen context, unseen continuation: Known(0).
        assert_eq!(
            m.predict(&symbols(&[2]), symbols(&[2])[0]),
            Prediction::Known(0.0)
        );
        // Symbol 4 never occurs, so context (4) is unseen.
        assert_eq!(
            m.predict(&symbols(&[4]), symbols(&[1])[0]),
            Prediction::UnseenContext
        );
    }

    #[test]
    fn unseen_context_detected() {
        let train = symbols(&[1, 2, 3, 1, 2, 3]);
        let m = ConditionalModel::estimate(&train, 2).unwrap();
        assert_eq!(
            m.predict(&symbols(&[2, 1]), symbols(&[3])[0]),
            Prediction::UnseenContext
        );
        assert!(m.context_seen(&symbols(&[1, 2])));
        assert!(!m.context_seen(&symbols(&[2, 1])));
    }

    #[test]
    #[should_panic(expected = "context length must match")]
    fn predict_rejects_wrong_context_len() {
        let m = ConditionalModel::estimate(&symbols(&[1, 2, 3]), 1).unwrap();
        let _ = m.predict(&symbols(&[1, 2]), Symbol::new(3));
    }

    #[test]
    fn per_context_distributions_normalise() {
        let train = symbols(&[1, 2, 1, 3, 1, 2, 1, 2, 1, 3, 1, 1]);
        let m = ConditionalModel::estimate(&train, 1).unwrap();
        // Sum of P(next | 1) over observed successors must be 1.
        let mut sum = 0.0;
        for next in 0..4u32 {
            sum += m
                .predict(&symbols(&[1]), Symbol::new(next))
                .probability_or_zero();
        }
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_counts_matches_totals() {
        let train = symbols(&[1, 2, 3, 1, 2, 3, 1, 2]);
        let m = ConditionalModel::estimate(&train, 2).unwrap();
        let total: u64 = m.iter_counts().map(|(_, _, c)| c).sum();
        assert_eq!(total, m.total_observations());
        assert_eq!(total, (train.len() - 2) as u64);
    }

    #[test]
    fn prediction_probability_or_zero() {
        assert_eq!(Prediction::Known(0.25).probability_or_zero(), 0.25);
        assert_eq!(Prediction::UnseenContext.probability_or_zero(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = ConditionalModel::estimate(&symbols(&[1, 2, 3]), 1).unwrap();
        assert!(!m.to_string().is_empty());
    }
}

//! First-order transition matrices.
//!
//! The paper's training data is "constructed using a Markov-model
//! transition matrix" (§5.3): a mostly deterministic cycle over the
//! 8-symbol alphabet with "a small amount of nondeterminism in the
//! probabilities of the data generation matrix" supplying the 2 % of rare
//! material. [`TransitionMatrix`] is that generator object; the synthesis
//! crate builds the paper's specific matrix on top of it.

use std::fmt;

use detdiv_sequence::{Alphabet, Symbol};
use rand::Rng;

use crate::error::MarkovError;

/// Tolerance used when validating that each row sums to one.
const ROW_SUM_TOLERANCE: f64 = 1e-9;

/// A row-stochastic first-order transition matrix over an [`Alphabet`].
///
/// # Examples
///
/// ```
/// use detdiv_markov::TransitionMatrix;
/// use detdiv_sequence::{Alphabet, Symbol};
///
/// // A deterministic 3-cycle: 0 -> 1 -> 2 -> 0.
/// let m = TransitionMatrix::cycle(Alphabet::new(3));
/// assert_eq!(m.probability(Symbol::new(0), Symbol::new(1)), 1.0);
/// assert_eq!(m.probability(Symbol::new(0), Symbol::new(2)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    alphabet: Alphabet,
    /// Row-major `n x n` probabilities; `rows[from * n + to]`.
    rows: Vec<f64>,
}

impl TransitionMatrix {
    /// Builds a matrix from explicit per-row probability vectors.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::DimensionMismatch`] if the number of rows or any
    ///   row's length differs from the alphabet size;
    /// * [`MarkovError::NotStochastic`] if any row has a negative entry
    ///   or does not sum to 1 within `1e-9`.
    pub fn from_rows(alphabet: Alphabet, rows: &[Vec<f64>]) -> Result<Self, MarkovError> {
        let n = alphabet.len();
        if rows.len() != n {
            return Err(MarkovError::DimensionMismatch {
                expected: n,
                found: rows.len(),
            });
        }
        let mut flat = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(MarkovError::DimensionMismatch {
                    expected: n,
                    found: row.len(),
                });
            }
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| p < 0.0) || (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(MarkovError::NotStochastic { row: i, sum });
            }
            flat.extend_from_slice(row);
        }
        Ok(TransitionMatrix {
            alphabet,
            rows: flat,
        })
    }

    /// The uniform matrix: every transition equally likely.
    pub fn uniform(alphabet: Alphabet) -> Self {
        let n = alphabet.len();
        TransitionMatrix {
            alphabet,
            rows: vec![1.0 / n as f64; n * n],
        }
    }

    /// The deterministic cycle `0 -> 1 -> ... -> n-1 -> 0`.
    ///
    /// This is the noiseless backbone of the paper's training data: with
    /// an alphabet of 8, repeating the cycle yields the
    /// `1 2 3 4 5 6 7 8` pattern that makes up 98 % of the stream.
    pub fn cycle(alphabet: Alphabet) -> Self {
        let n = alphabet.len();
        let mut rows = vec![0.0; n * n];
        for from in 0..n {
            rows[from * n + (from + 1) % n] = 1.0;
        }
        TransitionMatrix { alphabet, rows }
    }

    /// The cycle matrix perturbed with `noise` total escape probability
    /// per state, spread uniformly over all non-successor symbols.
    ///
    /// With `noise = 0.02` this realises the paper's "98 % cycle, 2 %
    /// nondeterminism" generation matrix.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not within `[0, 1]` or the alphabet has fewer
    /// than two symbols (no non-successor exists to escape to).
    pub fn noisy_cycle(alphabet: Alphabet, noise: f64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
        assert!(
            alphabet.len() >= 2,
            "noisy cycle needs at least two symbols"
        );
        let n = alphabet.len();
        let mut rows = vec![0.0; n * n];
        let escape = noise / (n - 1) as f64;
        for from in 0..n {
            for to in 0..n {
                rows[from * n + to] = if to == (from + 1) % n {
                    1.0 - noise
                } else {
                    escape
                };
            }
        }
        TransitionMatrix { alphabet, rows }
    }

    /// Maximum-likelihood estimate of the transition matrix of `stream`,
    /// with additive (Laplace) smoothing `smoothing` per cell.
    ///
    /// With `smoothing = 0.0`, never-observed transitions get probability
    /// zero and never-observed states fall back to a uniform row.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::StreamTooShort`] if `stream` has fewer than two
    ///   elements;
    /// * [`MarkovError::SymbolOutOfAlphabet`] if any element is outside
    ///   `alphabet`.
    pub fn estimate(
        stream: &[Symbol],
        alphabet: Alphabet,
        smoothing: f64,
    ) -> Result<Self, MarkovError> {
        if stream.len() < 2 {
            return Err(MarkovError::StreamTooShort {
                len: stream.len(),
                needed: 2,
            });
        }
        let n = alphabet.len();
        for &s in stream {
            if !alphabet.contains(s) {
                return Err(MarkovError::SymbolOutOfAlphabet {
                    symbol: s.id(),
                    alphabet: alphabet.size(),
                });
            }
        }
        let mut counts = vec![0.0f64; n * n];
        for w in stream.windows(2) {
            counts[w[0].index() * n + w[1].index()] += 1.0;
        }
        let mut rows = vec![0.0; n * n];
        for from in 0..n {
            let row = &counts[from * n..(from + 1) * n];
            let total: f64 = row.iter().sum::<f64>() + smoothing * n as f64;
            if total == 0.0 {
                // Unobserved state: uniform fallback keeps the matrix
                // stochastic.
                for to in 0..n {
                    rows[from * n + to] = 1.0 / n as f64;
                }
            } else {
                for to in 0..n {
                    rows[from * n + to] = (row[to] + smoothing) / total;
                }
            }
        }
        Ok(TransitionMatrix { alphabet, rows })
    }

    /// The alphabet this matrix is defined over.
    #[inline]
    pub const fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// `P(to | from)`.
    ///
    /// # Panics
    ///
    /// Panics if either symbol is outside the alphabet.
    #[inline]
    pub fn probability(&self, from: Symbol, to: Symbol) -> f64 {
        let n = self.alphabet.len();
        assert!(
            self.alphabet.contains(from) && self.alphabet.contains(to),
            "symbols must belong to the matrix's alphabet"
        );
        self.rows[from.index() * n + to.index()]
    }

    /// The full outgoing distribution of `from` as a slice of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is outside the alphabet.
    pub fn row(&self, from: Symbol) -> &[f64] {
        let n = self.alphabet.len();
        assert!(self.alphabet.contains(from));
        &self.rows[from.index() * n..(from.index() + 1) * n]
    }

    /// Samples a successor of `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is outside the alphabet.
    pub fn sample_next<R: Rng + ?Sized>(&self, from: Symbol, rng: &mut R) -> Symbol {
        let row = self.row(from);
        let mut u: f64 = rng.gen();
        for (to, &p) in row.iter().enumerate() {
            if u < p {
                return Symbol::new(to as u32);
            }
            u -= p;
        }
        // Floating-point slack: fall back to the last symbol with
        // positive probability.
        let last = row
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("stochastic row has a positive entry");
        Symbol::new(last as u32)
    }

    /// The stationary distribution, computed by power iteration.
    ///
    /// Iterates until the L1 change falls below `tol` or `max_iters` is
    /// reached, starting from the uniform distribution. For periodic
    /// chains (e.g. the pure cycle) this converges to the Cesàro limit in
    /// practice only when damped, so a small uniform damping (0.5 % ) is
    /// applied internally; the result for the paper's noisy cycle is the
    /// uniform distribution over the alphabet, as expected by symmetry.
    pub fn stationary(&self, max_iters: usize, tol: f64) -> Vec<f64> {
        let n = self.alphabet.len();
        let damping = 0.005;
        let mut dist = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..max_iters {
            for x in next.iter_mut() {
                *x = 0.0;
            }
            for (from, &p_from) in dist.iter().enumerate() {
                if p_from == 0.0 {
                    continue;
                }
                for (to, x) in next.iter_mut().enumerate() {
                    *x += p_from * self.rows[from * n + to];
                }
            }
            // Damp toward uniform to break periodicity.
            let mut delta = 0.0;
            for to in 0..n {
                next[to] = (1.0 - damping) * next[to] + damping / n as f64;
                delta += (next[to] - dist[to]).abs();
            }
            std::mem::swap(&mut dist, &mut next);
            if delta < tol {
                break;
            }
        }
        dist
    }

    /// Generates a stream of `len` symbols starting from `start`.
    ///
    /// The returned stream begins with `start` itself.
    ///
    /// # Panics
    ///
    /// Panics if `start` is outside the alphabet.
    pub fn generate<R: Rng + ?Sized>(&self, start: Symbol, len: usize, rng: &mut R) -> Vec<Symbol> {
        assert!(self.alphabet.contains(start));
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return out;
        }
        out.push(start);
        let mut state = start;
        for _ in 1..len {
            state = self.sample_next(state, rng);
            out.push(state);
        }
        out
    }
}

impl fmt::Display for TransitionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transition-matrix(n={})", self.alphabet.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sym(i: u32) -> Symbol {
        Symbol::new(i)
    }

    #[test]
    fn from_rows_validates_stochasticity() {
        let a = Alphabet::new(2);
        assert!(TransitionMatrix::from_rows(a, &[vec![0.5, 0.5], vec![1.0, 0.0]]).is_ok());
        assert!(matches!(
            TransitionMatrix::from_rows(a, &[vec![0.5, 0.6], vec![1.0, 0.0]]),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
        assert!(matches!(
            TransitionMatrix::from_rows(a, &[vec![-0.5, 1.5], vec![1.0, 0.0]]),
            Err(MarkovError::NotStochastic { .. })
        ));
        assert!(matches!(
            TransitionMatrix::from_rows(a, &[vec![1.0, 0.0]]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cycle_is_deterministic() {
        let m = TransitionMatrix::cycle(Alphabet::new(4));
        assert_eq!(m.probability(sym(0), sym(1)), 1.0);
        assert_eq!(m.probability(sym(3), sym(0)), 1.0);
        assert_eq!(m.probability(sym(1), sym(3)), 0.0);
    }

    #[test]
    fn noisy_cycle_rows_are_stochastic() {
        let m = TransitionMatrix::noisy_cycle(Alphabet::new(8), 0.02);
        for from in 0..8 {
            let sum: f64 = m.row(sym(from)).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {from} sums to {sum}");
        }
        assert!((m.probability(sym(0), sym(1)) - 0.98).abs() < 1e-12);
        assert!((m.probability(sym(0), sym(5)) - 0.02 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise must be in [0, 1]")]
    fn noisy_cycle_rejects_bad_noise() {
        let _ = TransitionMatrix::noisy_cycle(Alphabet::new(4), 1.5);
    }

    #[test]
    fn estimation_recovers_cycle() {
        let a = Alphabet::new(3);
        let truth = TransitionMatrix::cycle(a);
        let mut rng = SmallRng::seed_from_u64(1);
        let stream = truth.generate(sym(0), 3_000, &mut rng);
        let est = TransitionMatrix::estimate(&stream, a, 0.0).unwrap();
        assert!((est.probability(sym(0), sym(1)) - 1.0).abs() < 1e-12);
        assert_eq!(est.probability(sym(0), sym(2)), 0.0);
    }

    #[test]
    fn estimation_approximates_noisy_cycle() {
        let a = Alphabet::new(4);
        let truth = TransitionMatrix::noisy_cycle(a, 0.1);
        let mut rng = SmallRng::seed_from_u64(42);
        let stream = truth.generate(sym(0), 200_000, &mut rng);
        let est = TransitionMatrix::estimate(&stream, a, 0.0).unwrap();
        for from in 0..4 {
            for to in 0..4 {
                let diff = (est.probability(sym(from), sym(to))
                    - truth.probability(sym(from), sym(to)))
                .abs();
                assert!(diff < 0.01, "({from},{to}) off by {diff}");
            }
        }
    }

    #[test]
    fn estimation_rejects_foreign_symbols_and_short_streams() {
        let a = Alphabet::new(2);
        assert!(matches!(
            TransitionMatrix::estimate(&[sym(0)], a, 0.0),
            Err(MarkovError::StreamTooShort { .. })
        ));
        assert!(matches!(
            TransitionMatrix::estimate(&[sym(0), sym(5)], a, 0.0),
            Err(MarkovError::SymbolOutOfAlphabet { symbol: 5, .. })
        ));
    }

    #[test]
    fn smoothing_fills_zero_cells() {
        let a = Alphabet::new(2);
        let stream = [sym(0), sym(1), sym(0), sym(1)];
        let est = TransitionMatrix::estimate(&stream, a, 1.0).unwrap();
        assert!(est.probability(sym(0), sym(0)) > 0.0);
        let sum: f64 = est.row(sym(0)).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unobserved_state_gets_uniform_row() {
        let a = Alphabet::new(3);
        // Symbol 2 never appears.
        let stream = [sym(0), sym(1), sym(0), sym(1)];
        let est = TransitionMatrix::estimate(&stream, a, 0.0).unwrap();
        for to in 0..3 {
            assert!((est.probability(sym(2), sym(to)) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_respects_support() {
        let m = TransitionMatrix::cycle(Alphabet::new(5));
        let mut rng = SmallRng::seed_from_u64(7);
        for from in 0..5u32 {
            for _ in 0..20 {
                let next = m.sample_next(sym(from), &mut rng);
                assert_eq!(next.id(), (from + 1) % 5);
            }
        }
    }

    #[test]
    fn sampling_frequency_tracks_probability() {
        let a = Alphabet::new(2);
        let m = TransitionMatrix::from_rows(a, &[vec![0.25, 0.75], vec![0.5, 0.5]]).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let stays = (0..n)
            .filter(|_| m.sample_next(sym(0), &mut rng) == sym(0))
            .count();
        let freq = stays as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn stationary_of_noisy_cycle_is_uniform() {
        let m = TransitionMatrix::noisy_cycle(Alphabet::new(8), 0.02);
        let pi = m.stationary(10_000, 1e-12);
        for &p in &pi {
            assert!((p - 0.125).abs() < 1e-6, "stationary entry {p}");
        }
    }

    #[test]
    fn generate_starts_at_start_and_has_len() {
        let m = TransitionMatrix::cycle(Alphabet::new(3));
        let mut rng = SmallRng::seed_from_u64(3);
        let s = m.generate(sym(2), 7, &mut rng);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], sym(2));
        assert_eq!(s[1], sym(0));
        assert!(m.generate(sym(0), 0, &mut rng).is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!TransitionMatrix::uniform(Alphabet::new(2))
            .to_string()
            .is_empty());
    }
}

//! Error types for the Markov substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from Markov-model construction or use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A transition-matrix row did not sum to 1 (within tolerance) or
    /// contained a negative entry.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// The matrix dimensions did not match the alphabet.
    DimensionMismatch {
        /// Expected number of rows/columns.
        expected: usize,
        /// Number found.
        found: usize,
    },
    /// A stream was too short to estimate a model of the requested order.
    StreamTooShort {
        /// Actual stream length.
        len: usize,
        /// Minimum length required.
        needed: usize,
    },
    /// A symbol fell outside the declared alphabet.
    SymbolOutOfAlphabet {
        /// The offending symbol identifier.
        symbol: u32,
        /// The alphabet size it violated.
        alphabet: u32,
    },
    /// A context length of zero was requested for a conditional model.
    ZeroContext,
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::NotStochastic { row, sum } => {
                write!(f, "transition row {row} sums to {sum}, expected 1")
            }
            MarkovError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} transition rows, found {found}")
            }
            MarkovError::StreamTooShort { len, needed } => {
                write!(
                    f,
                    "stream of length {len} is shorter than required {needed}"
                )
            }
            MarkovError::SymbolOutOfAlphabet { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside alphabet of size {alphabet}")
            }
            MarkovError::ZeroContext => {
                write!(
                    f,
                    "conditional models require a context of at least one element"
                )
            }
        }
    }
}

impl Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MarkovError::NotStochastic { row: 2, sum: 0.5 };
        assert!(e.to_string().contains("row 2"));
        let e = MarkovError::ZeroContext;
        assert!(e.to_string().contains("context"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<MarkovError>();
    }
}

//! Synthetic UNM-style trace generation.
//!
//! The paper's evidence that minimal foreign sequences matter in practice
//! is that "natural data was found to be replete with minimal foreign
//! sequences of varying lengths" (§4.1, citing [17]'s analysis of real
//! system traces). The real UNM datasets are not redistributable here, so
//! this module generates *sendmail-like* traces that exercise the same
//! code paths: per-process system-call streams built from a repertoire of
//! behavioural motifs (connection setup, message receipt, delivery,
//! error handling) stitched together with motif-level randomness.
//!
//! Different generator seeds produce behaviourally overlapping but not
//! identical corpora — exactly the situation in which one run's trace
//! contains minimal foreign sequences relative to another run's training
//! data.

use detdiv_sequence::Symbol;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::TraceError;
use crate::format::TraceSet;

/// Symbolic system-call numbers used by the motif repertoire (loosely
/// modelled on common Unix call numbers).
mod calls {
    pub const FORK: u32 = 2;
    pub const READ: u32 = 3;
    pub const WRITE: u32 = 4;
    pub const OPEN: u32 = 5;
    pub const CLOSE: u32 = 6;
    pub const WAIT: u32 = 7;
    pub const UNLINK: u32 = 10;
    pub const CHDIR: u32 = 12;
    pub const LSEEK: u32 = 19;
    pub const GETPID: u32 = 20;
    pub const KILL: u32 = 37;
    pub const PIPE: u32 = 42;
    pub const SIGNAL: u32 = 48;
    pub const IOCTL: u32 = 54;
    pub const SOCKET: u32 = 97;
    pub const CONNECT: u32 = 98;
    pub const ACCEPT: u32 = 99;
    pub const SEND: u32 = 101;
    pub const RECV: u32 = 102;
    pub const STAT: u32 = 106;
    pub const MMAP: u32 = 115;
}

/// One behavioural motif: a fixed call sequence plus an inner loop.
struct Motif {
    prologue: &'static [u32],
    loop_body: &'static [u32],
    epilogue: &'static [u32],
    /// Probability of selecting this motif at each step.
    weight: f64,
}

use calls::*;

/// The repertoire of a sendmail-like daemon.
const MOTIFS: &[Motif] = &[
    // Accept a connection and read an envelope.
    Motif {
        prologue: &[SOCKET, ACCEPT, GETPID, STAT],
        loop_body: &[RECV, WRITE],
        epilogue: &[SEND, CLOSE],
        weight: 0.35,
    },
    // Receive message data into the queue.
    Motif {
        prologue: &[OPEN, LSEEK],
        loop_body: &[READ, WRITE],
        epilogue: &[CLOSE, STAT],
        weight: 0.30,
    },
    // Deliver: fork a local mailer and wait.
    Motif {
        prologue: &[STAT, FORK, PIPE],
        loop_body: &[WRITE, READ],
        epilogue: &[WAIT, UNLINK],
        weight: 0.20,
    },
    // Housekeeping.
    Motif {
        prologue: &[CHDIR, OPEN],
        loop_body: &[READ],
        epilogue: &[CLOSE],
        weight: 0.10,
    },
    // Rare: signal-driven error path.
    Motif {
        prologue: &[SIGNAL, KILL],
        loop_body: &[IOCTL],
        epilogue: &[CONNECT, MMAP, CLOSE],
        weight: 0.05,
    },
];

/// Configuration for the synthetic trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenConfig {
    /// Number of processes in the trace.
    pub processes: usize,
    /// Approximate events per process.
    pub events_per_process: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            processes: 8,
            events_per_process: 2000,
            seed: 1996, // year of "A Sense of Self for Unix Processes"
        }
    }
}

/// Generates a sendmail-like [`TraceSet`].
///
/// # Errors
///
/// Returns [`TraceError::InvalidConfig`] when `processes` or
/// `events_per_process` is zero.
///
/// # Examples
///
/// ```
/// use detdiv_trace::{generate_sendmail_like, TraceGenConfig};
///
/// let traces = generate_sendmail_like(&TraceGenConfig {
///     processes: 3,
///     events_per_process: 500,
///     seed: 7,
/// })
/// .unwrap();
/// assert_eq!(traces.process_count(), 3);
/// assert!(traces.total_events() >= 3 * 500);
/// ```
pub fn generate_sendmail_like(config: &TraceGenConfig) -> Result<TraceSet, TraceError> {
    if config.processes == 0 {
        return Err(TraceError::InvalidConfig {
            reason: "at least one process required".into(),
        });
    }
    if config.events_per_process == 0 {
        return Err(TraceError::InvalidConfig {
            reason: "at least one event per process required".into(),
        });
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut set = TraceSet::new();
    for i in 0..config.processes {
        let pid = 500 + i as u32;
        let stream = generate_process(config.events_per_process, &mut rng);
        for call in stream {
            set.push(pid, call);
        }
    }
    Ok(set)
}

fn pick_motif(rng: &mut SmallRng) -> &'static Motif {
    let mut u: f64 = rng.gen();
    for m in MOTIFS {
        if u < m.weight {
            return m;
        }
        u -= m.weight;
    }
    &MOTIFS[0]
}

fn generate_process(min_events: usize, rng: &mut SmallRng) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(min_events + 32);
    // Process startup.
    for &c in &[FORK, GETPID, OPEN, MMAP, CLOSE] {
        out.push(Symbol::new(c));
    }
    while out.len() < min_events {
        let m = pick_motif(rng);
        out.extend(m.prologue.iter().map(|&c| Symbol::new(c)));
        let iterations = rng.gen_range(1..6);
        for _ in 0..iterations {
            out.extend(m.loop_body.iter().map(|&c| Symbol::new(c)));
        }
        out.extend(m.epilogue.iter().map(|&c| Symbol::new(c)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let t = generate_sendmail_like(&TraceGenConfig {
            processes: 4,
            events_per_process: 300,
            seed: 1,
        })
        .unwrap();
        assert_eq!(t.process_count(), 4);
        for (_, s) in t.iter() {
            assert!(s.len() >= 300);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TraceGenConfig {
            processes: 2,
            events_per_process: 200,
            seed: 5,
        };
        let a = generate_sendmail_like(&cfg).unwrap();
        let b = generate_sendmail_like(&cfg).unwrap();
        assert_eq!(a, b);
        let c = generate_sendmail_like(&TraceGenConfig { seed: 6, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn motif_weights_cover_unit_interval() {
        let total: f64 = MOTIFS.iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(generate_sendmail_like(&TraceGenConfig {
            processes: 0,
            events_per_process: 10,
            seed: 0,
        })
        .is_err());
        assert!(generate_sendmail_like(&TraceGenConfig {
            processes: 1,
            events_per_process: 0,
            seed: 0,
        })
        .is_err());
    }

    #[test]
    fn traces_roundtrip_through_unm_format() {
        let t = generate_sendmail_like(&TraceGenConfig {
            processes: 2,
            events_per_process: 100,
            seed: 3,
        })
        .unwrap();
        let text = t.to_unm_string();
        let back = TraceSet::parse(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn different_seeds_share_vocabulary_but_differ_in_patterns() {
        let a = generate_sendmail_like(&TraceGenConfig {
            processes: 1,
            events_per_process: 1000,
            seed: 10,
        })
        .unwrap();
        let b = generate_sendmail_like(&TraceGenConfig {
            processes: 1,
            events_per_process: 1000,
            seed: 11,
        })
        .unwrap();
        // Same call vocabulary size...
        assert_eq!(a.alphabet().unwrap().size(), b.alphabet().unwrap().size());
        // ...different event sequences.
        assert_ne!(a.process(500).unwrap(), b.process(500).unwrap());
    }
}

//! Error types for the trace substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from trace parsing or generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A line of the trace file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The trace contained no events.
    Empty,
    /// A generation parameter was out of range.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            TraceError::Empty => write!(f, "trace contains no events"),
            TraceError::InvalidConfig { reason } => {
                write!(f, "invalid trace-generation configuration: {reason}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::Parse {
            line: 3,
            reason: "expected two fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(TraceError::Empty.to_string().contains("no events"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<TraceError>();
    }
}

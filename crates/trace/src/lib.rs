//! System-call trace substrate for the `detdiv` workspace.
//!
//! The paper grounds its synthetic methodology in real-world data: §4.1
//! notes that natural traces are "replete with minimal foreign sequences
//! of varying lengths". This crate provides the machinery to make that
//! measurement and to run the detectors on trace-shaped data:
//!
//! * [`TraceSet`] — parser/serialiser for the UNM `pid syscall` trace
//!   format used by the sendmail/lpr intrusion-detection corpora;
//! * [`generate_sendmail_like`] — a motif-based synthetic trace
//!   generator standing in for the (non-redistributable) UNM datasets
//!   (substitution documented in DESIGN.md §2.1);
//! * [`mfs_census`] — counts minimal foreign sequences per length in one
//!   trace relative to another (experiment NAT1);
//! * [`generate_command_stream`] / [`UserProfile`] — synthetic user
//!   command histories for the masquerade experiment (MASQ1).
//!
//! ```
//! use detdiv_trace::{generate_sendmail_like, mfs_census, TraceGenConfig};
//!
//! let normal = generate_sendmail_like(&TraceGenConfig::default()).unwrap();
//! let other = generate_sendmail_like(&TraceGenConfig { seed: 42, ..TraceGenConfig::default() }).unwrap();
//! let report = mfs_census(&normal.concatenated(), &other.concatenated(), 6).unwrap();
//! // Natural-looking data contains MFSs of varying lengths.
//! assert!(report.total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod census;
mod commands;
mod error;
mod format;
mod synthetic;

pub use census::{mfs_census, CensusReport};
pub use commands::{generate_command_stream, UserProfile};
pub use error::TraceError;
pub use format::TraceSet;
pub use synthetic::{generate_sendmail_like, TraceGenConfig};

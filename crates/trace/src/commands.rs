//! Synthetic user command streams for masquerade detection.
//!
//! Lane & Brodley built their detector for *masquerade detection* over
//! Unix command histories — the application the paper alludes to when
//! noting the detector's blindness to MFS anomalies "despite its
//! previous application to masquerade detection" (§8). This module
//! generates per-user command streams so that application can be
//! reproduced (experiment MASQ1): users share a command vocabulary but
//! differ in their habitual command patterns, exactly the regime where
//! positional similarity to a user profile separates self from
//! masquerader.

use detdiv_sequence::{Symbol, SymbolTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::TraceError;

/// A user's behavioural profile: weighted command motifs.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Profile name (for reports).
    pub name: &'static str,
    /// Weighted motifs: command phrases the user habitually types.
    pub motifs: Vec<(&'static [&'static str], f64)>,
}

impl UserProfile {
    /// A software developer: edit/build/test loops.
    pub fn developer() -> Self {
        UserProfile {
            name: "developer",
            motifs: vec![
                (&["cd", "ls", "vim", "make"], 0.30),
                (&["make", "./test", "vim"], 0.25),
                (&["git", "diff", "git", "commit"], 0.15),
                (&["ls", "cat", "vim"], 0.15),
                (&["grep", "vim", "make", "./test"], 0.10),
                (&["man", "vim"], 0.05),
            ],
        }
    }

    /// A data analyst: inspect/filter/plot loops over shared commands.
    pub fn analyst() -> Self {
        UserProfile {
            name: "analyst",
            motifs: vec![
                (&["cd", "ls", "head", "awk"], 0.30),
                (&["grep", "awk", "sort", "head"], 0.25),
                (&["R", "cat", "R"], 0.15),
                (&["ls", "cat", "less"], 0.15),
                (&["scp", "ls", "R"], 0.10),
                (&["man", "awk"], 0.05),
            ],
        }
    }
}

/// Generates a command stream of at least `min_len` commands for
/// `profile`, interning command names into `table` (shared across users
/// so their streams live in one alphabet).
///
/// # Errors
///
/// Returns [`TraceError::InvalidConfig`] if `min_len` is zero or the
/// profile has no motifs.
pub fn generate_command_stream(
    profile: &UserProfile,
    min_len: usize,
    seed: u64,
    table: &mut SymbolTable,
) -> Result<Vec<Symbol>, TraceError> {
    if min_len == 0 {
        return Err(TraceError::InvalidConfig {
            reason: "command stream needs at least one command".into(),
        });
    }
    if profile.motifs.is_empty() {
        return Err(TraceError::InvalidConfig {
            reason: format!("profile {} has no motifs", profile.name),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(min_len + 8);
    while out.len() < min_len {
        let mut u: f64 = rng.gen();
        let mut chosen = profile.motifs[0].0;
        for &(motif, w) in &profile.motifs {
            if u < w {
                chosen = motif;
                break;
            }
            u -= w;
        }
        for name in chosen {
            out.push(table.intern(name));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_have_requested_length_and_shared_alphabet() {
        let mut table = SymbolTable::new();
        let dev = generate_command_stream(&UserProfile::developer(), 500, 1, &mut table).unwrap();
        let ana = generate_command_stream(&UserProfile::analyst(), 500, 2, &mut table).unwrap();
        assert!(dev.len() >= 500);
        assert!(ana.len() >= 500);
        // Shared vocabulary: "ls" maps to the same symbol in both.
        let ls = table.lookup("ls").unwrap();
        assert!(dev.contains(&ls));
        assert!(ana.contains(&ls));
    }

    #[test]
    fn profiles_differ_in_patterns() {
        let mut table = SymbolTable::new();
        let dev = generate_command_stream(&UserProfile::developer(), 2000, 3, &mut table).unwrap();
        let ana = generate_command_stream(&UserProfile::analyst(), 2000, 3, &mut table).unwrap();
        // The developer types vim; the analyst never does.
        let vim = table.lookup("vim").unwrap();
        assert!(dev.contains(&vim));
        assert!(!ana.contains(&vim));
        // Both type cd/ls.
        let cd = table.lookup("cd").unwrap();
        assert!(dev.contains(&cd) && ana.contains(&cd));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        let a = generate_command_stream(&UserProfile::developer(), 300, 7, &mut t1).unwrap();
        let b = generate_command_stream(&UserProfile::developer(), 300, 7, &mut t2).unwrap();
        assert_eq!(a, b);
        let c = generate_command_stream(&UserProfile::developer(), 300, 8, &mut t1).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn motif_weights_sum_to_one() {
        for profile in [UserProfile::developer(), UserProfile::analyst()] {
            let total: f64 = profile.motifs.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", profile.name);
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut table = SymbolTable::new();
        assert!(generate_command_stream(&UserProfile::developer(), 0, 1, &mut table).is_err());
        let empty = UserProfile {
            name: "empty",
            motifs: vec![],
        };
        assert!(generate_command_stream(&empty, 10, 1, &mut table).is_err());
    }
}

//! Minimal-foreign-sequence census over traces (§4.1 / experiment NAT1).
//!
//! "One may question whether the anomaly used in this study, the minimal
//! foreign sequence ... is of any significance in the real world ...
//! Natural data was found to be replete with minimal foreign sequences
//! of varying lengths." This module reproduces that measurement: train
//! on one trace corpus, scan another, and count the MFSs of each length.

use detdiv_sequence::{minimal_foreign_positions, StreamProfile, Symbol};
use serde::{Deserialize, Serialize};

use crate::error::TraceError;

/// MFS counts per anomaly length for one scanned stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensusReport {
    /// `(length, occurrences)` pairs, ascending by length.
    pub counts: Vec<(usize, usize)>,
    /// Number of events scanned.
    pub scanned_events: usize,
}

impl CensusReport {
    /// Total MFS occurrences across all lengths.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// Occurrences of MFSs of exactly `len`.
    pub fn count_for(&self, len: usize) -> usize {
        self.counts
            .iter()
            .find(|&&(l, _)| l == len)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }
}

impl std::fmt::Display for CensusReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "MFS census over {} events:", self.scanned_events)?;
        for &(len, count) in &self.counts {
            writeln!(f, "  length {len:>2}: {count}")?;
        }
        write!(f, "  total: {}", self.total())
    }
}

/// Counts minimal foreign sequences of each length in `2..=max_len` that
/// occur in `test` relative to `training`.
///
/// # Errors
///
/// * [`TraceError::Empty`] if either stream is empty;
/// * [`TraceError::InvalidConfig`] if `max_len < 2` or the training
///   stream is shorter than `max_len`.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::symbols;
/// use detdiv_trace::mfs_census;
///
/// let mut training = Vec::new();
/// for _ in 0..50 { training.extend(symbols(&[5, 3, 4, 6])); }
/// // (3, 6): both elements known, the pair never occurs: a length-2 MFS.
/// let test = symbols(&[5, 3, 6, 4, 6, 5, 3]);
/// let report = mfs_census(&training, &test, 4).unwrap();
/// assert!(report.count_for(2) >= 1);
/// ```
pub fn mfs_census(
    training: &[Symbol],
    test: &[Symbol],
    max_len: usize,
) -> Result<CensusReport, TraceError> {
    if training.is_empty() || test.is_empty() {
        return Err(TraceError::Empty);
    }
    if max_len < 2 {
        return Err(TraceError::InvalidConfig {
            reason: "census needs max_len of at least 2".into(),
        });
    }
    let profile =
        StreamProfile::build(training, max_len).map_err(|e| TraceError::InvalidConfig {
            reason: format!("training profile: {e}"),
        })?;
    let mut counts = Vec::new();
    for len in 2..=max_len {
        let hits = minimal_foreign_positions(&profile, test, len)
            .expect("length validated against profile");
        counts.push((len, hits.len()));
    }
    Ok(CensusReport {
        counts,
        scanned_events: test.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_sendmail_like, TraceGenConfig};
    use detdiv_sequence::symbols;

    #[test]
    fn census_on_identical_streams_is_zero() {
        let mut s = Vec::new();
        for _ in 0..100 {
            s.extend(symbols(&[1, 2, 3, 4]));
        }
        let report = mfs_census(&s, &s, 5).unwrap();
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn census_finds_planted_mfs_lengths() {
        let mut training = Vec::new();
        for _ in 0..100 {
            training.extend(symbols(&[1, 2, 3, 4]));
        }
        training.extend(symbols(&[2, 4])); // make (2,4) and (4,2)? no: (2,4),(4,1)
        training.extend(symbols(&[1, 2, 3, 4]));
        // Test stream with MFS (1,2,4): (1,2) known, (2,4) known, whole foreign.
        let test = symbols(&[1, 2, 3, 4, 1, 2, 4, 1, 2, 3, 4]);
        let report = mfs_census(&training, &test, 4).unwrap();
        assert!(report.count_for(3) >= 1, "{report}");
    }

    #[test]
    fn natural_traces_are_replete_with_mfs() {
        // The paper's §4.1 claim on our synthetic sendmail corpus: train
        // on one run, scan another run, find MFSs of varying lengths.
        let train_run = generate_sendmail_like(&TraceGenConfig {
            processes: 4,
            events_per_process: 3000,
            seed: 100,
        })
        .unwrap();
        let test_run = generate_sendmail_like(&TraceGenConfig {
            processes: 2,
            events_per_process: 2000,
            seed: 200,
        })
        .unwrap();
        let training = train_run.concatenated();
        let test = test_run.concatenated();
        let report = mfs_census(&training, &test, 8).unwrap();
        assert!(report.total() > 0, "expected natural MFSs, got none");
        // "of varying lengths": at least two distinct lengths occur.
        let lengths_with_hits = report.counts.iter().filter(|&&(_, c)| c > 0).count();
        assert!(lengths_with_hits >= 2, "{report}");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let s = symbols(&[1, 2, 3]);
        assert!(matches!(mfs_census(&[], &s, 3), Err(TraceError::Empty)));
        assert!(matches!(mfs_census(&s, &[], 3), Err(TraceError::Empty)));
        assert!(matches!(
            mfs_census(&s, &s, 1),
            Err(TraceError::InvalidConfig { .. })
        ));
        // Training shorter than max_len.
        assert!(matches!(
            mfs_census(&s, &s, 9),
            Err(TraceError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn report_accessors() {
        let report = CensusReport {
            counts: vec![(2, 5), (3, 0), (4, 2)],
            scanned_events: 100,
        };
        assert_eq!(report.total(), 7);
        assert_eq!(report.count_for(2), 5);
        assert_eq!(report.count_for(9), 0);
        let text = report.to_string();
        assert!(text.contains("length  2: 5"));
        assert!(text.contains("total: 7"));
    }
}

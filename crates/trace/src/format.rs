//! UNM-style system-call trace format.
//!
//! The University of New Mexico intrusion-detection datasets (Forrest et
//! al.; used by Warrender et al. [20] and by Tan & Maxion's companion
//! studies [17]) store one event per line as two whitespace-separated
//! integers: a process identifier and a system-call number. A trace file
//! interleaves the events of many processes; analysis is per-process.
//!
//! ```text
//! # sendmail, normal run
//! 554 5
//! 554 4
//! 555 5
//! 554 3
//! ```
//!
//! [`TraceSet::parse`] reads that format (with `#` comments and blank
//! lines tolerated) into per-process [`Symbol`] streams;
//! [`TraceSet::to_unm_string`] writes it back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use detdiv_sequence::{Alphabet, Symbol};

use crate::error::TraceError;

/// A collection of per-process system-call streams.
///
/// # Examples
///
/// ```
/// use detdiv_trace::TraceSet;
///
/// let text = "# comment\n100 5\n100 3\n200 5\n100 6\n";
/// let traces = TraceSet::parse(text).unwrap();
/// assert_eq!(traces.process_count(), 2);
/// assert_eq!(traces.process(100).unwrap().len(), 3);
/// assert_eq!(traces.total_events(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSet {
    processes: BTreeMap<u32, Vec<Symbol>>,
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Parses UNM-format text: one `pid syscall` pair per line, `#`
    /// comments and blank lines ignored.
    ///
    /// # Errors
    ///
    /// * [`TraceError::Parse`] on a malformed line (wrong field count or
    ///   non-integer fields);
    /// * [`TraceError::Empty`] if no events were found.
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let mut set = TraceSet::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (pid, call) = match (fields.next(), fields.next(), fields.next()) {
                (Some(pid), Some(call), None) => (pid, call),
                _ => {
                    return Err(TraceError::Parse {
                        line: i + 1,
                        reason: format!("expected two fields, got {line:?}"),
                    })
                }
            };
            let pid: u32 = pid.parse().map_err(|_| TraceError::Parse {
                line: i + 1,
                reason: format!("invalid process id {pid:?}"),
            })?;
            let call: u32 = call.parse().map_err(|_| TraceError::Parse {
                line: i + 1,
                reason: format!("invalid system-call number {call:?}"),
            })?;
            set.push(pid, Symbol::new(call));
        }
        if set.processes.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(set)
    }

    /// Appends one event to a process stream.
    pub fn push(&mut self, pid: u32, call: Symbol) {
        self.processes.entry(pid).or_default().push(call);
    }

    /// The stream of one process, if present.
    pub fn process(&self, pid: u32) -> Option<&[Symbol]> {
        self.processes.get(&pid).map(Vec::as_slice)
    }

    /// Iterates `(pid, stream)` in ascending pid order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[Symbol])> {
        self.processes.iter().map(|(&pid, s)| (pid, s.as_slice()))
    }

    /// Number of distinct processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Total number of events across all processes.
    pub fn total_events(&self) -> usize {
        self.processes.values().map(Vec::len).sum()
    }

    /// Whether the set holds no events.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// The longest single process stream, if any — the usual choice of
    /// training material in per-process analyses.
    pub fn longest(&self) -> Option<(u32, &[Symbol])> {
        self.iter().max_by_key(|(_, s)| s.len())
    }

    /// Concatenation of all process streams in pid order. Useful when a
    /// single training stream is wanted and per-process boundaries are
    /// acceptable junction noise.
    pub fn concatenated(&self) -> Vec<Symbol> {
        let mut out = Vec::with_capacity(self.total_events());
        for s in self.processes.values() {
            out.extend_from_slice(s);
        }
        out
    }

    /// The smallest alphabet containing every observed system call.
    ///
    /// Returns `None` for an empty set.
    pub fn alphabet(&self) -> Option<Alphabet> {
        self.processes
            .values()
            .flatten()
            .map(|s| s.id() + 1)
            .max()
            .map(Alphabet::new)
    }

    /// Serialises back to UNM text (events in pid order).
    pub fn to_unm_string(&self) -> String {
        let mut out = String::new();
        for (pid, stream) in self.iter() {
            for s in stream {
                writeln!(out, "{pid} {}", s.id()).expect("writing to String cannot fail");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_interleaved_processes() {
        let text = "10 1\n20 2\n10 3\n20 4\n10 5\n";
        let t = TraceSet::parse(text).unwrap();
        assert_eq!(t.process_count(), 2);
        assert_eq!(
            t.process(10).unwrap(),
            &[Symbol::new(1), Symbol::new(3), Symbol::new(5)]
        );
        assert_eq!(t.process(20).unwrap().len(), 2);
        assert!(t.process(30).is_none());
    }

    #[test]
    fn tolerates_comments_and_blanks() {
        let text = "# header\n\n  \n5 1\n# middle\n5 2\n";
        let t = TraceSet::parse(text).unwrap();
        assert_eq!(t.total_events(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            TraceSet::parse("1 2 3\n"),
            Err(TraceError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            TraceSet::parse("abc 2\n"),
            Err(TraceError::Parse { .. })
        ));
        assert!(matches!(
            TraceSet::parse("1 xyz\n"),
            Err(TraceError::Parse { .. })
        ));
        assert!(matches!(
            TraceSet::parse("1\n"),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(matches!(
            TraceSet::parse("# nothing\n"),
            Err(TraceError::Empty)
        ));
        assert!(matches!(TraceSet::parse(""), Err(TraceError::Empty)));
    }

    #[test]
    fn roundtrip_through_unm_text() {
        let text = "10 1\n10 3\n20 2\n";
        let t = TraceSet::parse(text).unwrap();
        let back = TraceSet::parse(&t.to_unm_string()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn alphabet_and_longest() {
        let text = "1 0\n1 9\n1 4\n2 1\n";
        let t = TraceSet::parse(text).unwrap();
        assert_eq!(t.alphabet().unwrap().size(), 10);
        let (pid, stream) = t.longest().unwrap();
        assert_eq!(pid, 1);
        assert_eq!(stream.len(), 3);
        assert!(TraceSet::new().alphabet().is_none());
    }

    #[test]
    fn concatenated_preserves_pid_order() {
        let text = "2 20\n1 10\n2 21\n";
        let t = TraceSet::parse(text).unwrap();
        assert_eq!(
            t.concatenated(),
            vec![Symbol::new(10), Symbol::new(20), Symbol::new(21)]
        );
    }
}

//! Property tests for the trace substrate.

use detdiv_trace::{generate_sendmail_like, mfs_census, TraceGenConfig, TraceSet};
use proptest::prelude::*;

proptest! {
    /// UNM serialisation round-trips for any generated trace set.
    #[test]
    fn unm_roundtrip(processes in 1usize..5, events in 50usize..400, seed in 0u64..1000) {
        let t = generate_sendmail_like(&TraceGenConfig {
            processes,
            events_per_process: events,
            seed,
        })
        .unwrap();
        let back = TraceSet::parse(&t.to_unm_string()).unwrap();
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.total_events(), t.total_events());
    }

    /// Hand-built trace sets round-trip too (pids and calls arbitrary).
    #[test]
    fn arbitrary_sets_roundtrip(
        events in prop::collection::vec((0u32..50, 0u32..200), 1..200),
    ) {
        let mut t = TraceSet::new();
        for (pid, call) in &events {
            t.push(*pid, detdiv_sequence::Symbol::new(*call));
        }
        let back = TraceSet::parse(&t.to_unm_string()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// The census against a training stream that *is* the test stream
    /// finds nothing: no window of a stream is foreign to itself.
    #[test]
    fn self_census_is_empty(processes in 1usize..4, seed in 0u64..500) {
        let t = generate_sendmail_like(&TraceGenConfig {
            processes,
            events_per_process: 400,
            seed,
        })
        .unwrap();
        let s = t.concatenated();
        let report = mfs_census(&s, &s, 5).unwrap();
        prop_assert_eq!(report.total(), 0);
    }

    /// Census totals are consistent: the per-length counts sum to the
    /// total, and every counted length is within the requested range.
    #[test]
    fn census_totals_consistent(seed_a in 0u64..300, seed_b in 301u64..600, max_len in 2usize..7) {
        let a = generate_sendmail_like(&TraceGenConfig {
            processes: 2,
            events_per_process: 800,
            seed: seed_a,
        })
        .unwrap()
        .concatenated();
        let b = generate_sendmail_like(&TraceGenConfig {
            processes: 2,
            events_per_process: 500,
            seed: seed_b,
        })
        .unwrap()
        .concatenated();
        let report = mfs_census(&a, &b, max_len).unwrap();
        let sum: usize = report.counts.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, report.total());
        for &(len, _) in &report.counts {
            prop_assert!((2..=max_len).contains(&len));
        }
        prop_assert_eq!(report.scanned_events, b.len());
    }

    /// Generated traces share a bounded vocabulary: every call number is
    /// one of the motif repertoire's, for any seed.
    #[test]
    fn vocabulary_is_bounded(seed in 0u64..1000) {
        let t = generate_sendmail_like(&TraceGenConfig {
            processes: 1,
            events_per_process: 300,
            seed,
        })
        .unwrap();
        let alphabet = t.alphabet().unwrap();
        prop_assert!(alphabet.size() <= 116, "alphabet {alphabet}");
        let (_, stream) = t.longest().unwrap();
        prop_assert!(stream.iter().all(|s| alphabet.contains(*s)));
    }
}

//! `detdiv-flight`: per-detection provenance for the detdiv workspace
//! (std only, zero dependencies beyond the workspace's own `obs` and
//! `resil` crates).
//!
//! The coverage maps say *which* (detector, DW, AS) cells alarm;
//! nothing else in the system can answer *why a specific alarm fired*
//! or *what the engine was doing when a stream degraded*. This crate is
//! that forensic layer:
//!
//! 1. **Wide-event audit log** ([`record`], [`export`]) — one
//!    structured record per detection decision, emitted from the batch
//!    grid (`detdiv-eval`'s coverage rows), the streaming engine
//!    (`detdiv-stream`), and the supervision failure path
//!    (`detdiv-resil`). Records are buffered in fixed-capacity
//!    per-thread rings (the same lock-free discipline as
//!    `detdiv_obs::trace`) and exported as checksummed JSONL in the
//!    `detdiv-resil` journal wire format, so
//!    [`detdiv_resil::Journal::load`] validates a dump line-by-line.
//!    Records carry **no timestamps** and the export **sorts payloads
//!    lexicographically**, so a dump is byte-deterministic across
//!    repeat runs of the same configuration.
//! 2. **Crash flight recorder** ([`blackbox`]) — a bounded global ring
//!    of the last [`blackbox::BLACKBOX_CAPACITY`] wide events plus
//!    counter deltas, dumped atomically on panic (via a chained panic
//!    hook), on stream degradation, and on demand — every degradation
//!    leaves a post-mortem artifact.
//! 3. **Per-stream statistics registry** ([`streams`]) — labeled
//!    per-stream event/alarm/degradation counts maintained by the
//!    streaming engine and served live by `detdiv-scope`'s
//!    `GET /streams`.
//!
//! Disarmed (the default), every hook is **one relaxed atomic load** —
//! the workspace-wide discipline for optional subsystems. Arming comes
//! from `regenerate --flight PATH` or `DETDIV_FLIGHT=PATH`.
//!
//! Records deliberately exclude wall-clock data: the audit log answers
//! "what was decided and why", the Chrome trace answers "when and how
//! long". Keeping time out of the payload is what makes dumps
//! byte-comparable across runs — the same determinism contract the
//! rest of the workspace enforces on `paper_report.json`.
//!
//! # Example
//!
//! ```
//! use detdiv_flight as flight;
//!
//! flight::arm("unused-in-doctest.flight");
//! flight::record(flight::StreamRecord {
//!     stream_label: "host-a",
//!     stream_hash: 0x1234,
//!     slot: 0,
//!     detector: "ewma",
//!     event_index: 7,
//!     score: 0.25,
//!     confidence: 1.0,
//!     reason: "normal",
//!     warmup: false,
//! }.render());
//! flight::disarm();
//! let records = flight::drain();
//! assert!(records.iter().any(|r| r.contains("\"stream\":\"host-a\"")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod blackbox;
pub mod flags;
mod record;
mod recorder;
pub mod streams;

pub use record::{
    push_json_escaped, CellRecord, DegradedRecord, FailureRecord, GuardRecord, HeaderRecord,
    StreamRecord,
};
pub use recorder::{
    arm, armed, disarm, drain, dropped, env_path, export, flush_thread, path, record, recorded,
    reset, RING_CAPACITY, SINK_CAPACITY,
};

//! The labeled per-stream statistics registry behind `GET /streams`.
//!
//! The streaming engine owns per-stream detector banks; this registry
//! owns the *observable* side: per-stream event/verdict/alarm/
//! degradation counts, the last score seen, and a human label. Entries
//! are `Arc`-shared — the engine caches its stream's handle on first
//! contact, so the steady-state hot path touches only atomics, never
//! the registry lock.
//!
//! The registry is populated when it is **enabled** ([`set_enabled`],
//! flipped by `detdiv-scope` while serving) *or* the flight recorder is
//! armed; otherwise [`handle`] returns `None` and the engine pays one
//! relaxed load per stream creation. A `BTreeMap` keyed by the stream
//! hash keeps [`snapshots`] in deterministic order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A score at or above this is an alarm (the maximal-response
/// convention: adapter scores cap at 1.0 exactly when the batch
/// detector's alarm floor is met).
pub const ALARM_SCORE: f64 = 1.0;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn map() -> &'static Mutex<BTreeMap<u64, Arc<StreamStats>>> {
    static MAP: OnceLock<Mutex<BTreeMap<u64, Arc<StreamStats>>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Live counters for one stream, shared between the engine (writer)
/// and the introspection endpoints (readers). All fields are atomics;
/// no lock is held while updating.
#[derive(Debug, Default)]
pub struct StreamStats {
    label: Mutex<String>,
    events: AtomicU64,
    emitted: AtomicU64,
    alarms: AtomicU64,
    degraded: AtomicU64,
    /// `f64::to_bits` of the most recent score.
    last_score_bits: AtomicU64,
    last_event_index: AtomicU64,
}

impl StreamStats {
    /// Counts one routed event.
    pub fn on_event(&self, event_index: u64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.last_event_index.store(event_index, Ordering::Relaxed);
    }

    /// Counts one emitted verdict (and an alarm when the score reaches
    /// [`ALARM_SCORE`]).
    pub fn on_emit(&self, score: f64) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
        self.last_score_bits
            .store(score.to_bits(), Ordering::Relaxed);
        if score >= ALARM_SCORE {
            self.alarms.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one permanently degraded slot.
    pub fn on_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// The stream's label (empty until [`label`] assigns one).
    pub fn label_string(&self) -> String {
        self.label
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A point-in-time copy of one stream's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// The pre-hashed stream id the engine routes by.
    pub stream_hash: u64,
    /// Human label, or `""` when never labeled.
    pub label: String,
    /// Events routed to this stream.
    pub events: u64,
    /// Verdicts emitted across the stream's bank.
    pub emitted: u64,
    /// Emitted verdicts whose score reached [`ALARM_SCORE`].
    pub alarms: u64,
    /// Slots permanently degraded by a caught panic.
    pub degraded: u64,
    /// The most recent emitted score.
    pub last_score: f64,
    /// Sequence number of the most recent routed event.
    pub last_event_index: u64,
}

/// Whether the registry is populated: enabled explicitly (scope is
/// serving) or implicitly by an armed flight recorder.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || crate::armed()
}

/// Enables or disables registry population. `detdiv-scope` enables it
/// for the lifetime of its server so `/streams` has data even when the
/// flight recorder is disarmed.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Returns (creating if needed) the stats handle for `stream_hash`, or
/// `None` while the registry is disabled. The engine caches the handle
/// per stream, so this lock is taken once per stream lifetime, not per
/// event.
pub fn handle(stream_hash: u64) -> Option<Arc<StreamStats>> {
    if !enabled() {
        return None;
    }
    let mut map = map().lock().unwrap_or_else(PoisonError::into_inner);
    Some(Arc::clone(map.entry(stream_hash).or_default()))
}

/// Assigns a human label to a stream (creating its entry if the
/// registry is enabled); harness binaries call this right after
/// hashing the id so `/streams` shows names, not just hashes.
pub fn label(stream_hash: u64, label: &str) {
    if let Some(stats) = handle(stream_hash) {
        *stats.label.lock().unwrap_or_else(PoisonError::into_inner) = label.to_owned();
    }
}

/// Point-in-time snapshots of every known stream, ascending by stream
/// hash (deterministic order for rendering and tests).
pub fn snapshots() -> Vec<StreamSnapshot> {
    let map = map().lock().unwrap_or_else(PoisonError::into_inner);
    map.iter()
        .map(|(&stream_hash, stats)| StreamSnapshot {
            stream_hash,
            label: stats.label_string(),
            events: stats.events.load(Ordering::Relaxed),
            emitted: stats.emitted.load(Ordering::Relaxed),
            alarms: stats.alarms.load(Ordering::Relaxed),
            degraded: stats.degraded.load(Ordering::Relaxed),
            last_score: f64::from_bits(stats.last_score_bits.load(Ordering::Relaxed)),
            last_event_index: stats.last_event_index.load(Ordering::Relaxed),
        })
        .collect()
}

/// Number of streams with at least one degraded slot — the `/healthz`
/// triage number.
pub fn degraded_streams() -> u64 {
    let map = map().lock().unwrap_or_else(PoisonError::into_inner);
    map.values()
        .filter(|s| s.degraded.load(Ordering::Relaxed) > 0)
        .count() as u64
}

/// Drops every registry entry and disables population (test hook).
pub fn reset() {
    set_enabled(false);
    map().lock().unwrap_or_else(PoisonError::into_inner).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_registry_hands_out_nothing() {
        let _guard = lock();
        reset();
        crate::disarm();
        assert!(handle(1).is_none());
        assert!(snapshots().is_empty());
    }

    #[test]
    fn counters_accumulate_and_snapshot_in_hash_order() {
        let _guard = lock();
        reset();
        set_enabled(true);
        let b = handle(0xbbb).unwrap();
        let a = handle(0xaaa).unwrap();
        label(0xaaa, "host-a");
        a.on_event(0);
        a.on_emit(1.0);
        a.on_event(1);
        a.on_emit(0.2);
        b.on_event(0);
        b.on_degraded();
        let snaps = snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].stream_hash, 0xaaa, "ascending hash order");
        assert_eq!(snaps[0].label, "host-a");
        assert_eq!(snaps[0].events, 2);
        assert_eq!(snaps[0].emitted, 2);
        assert_eq!(snaps[0].alarms, 1, "only the 1.0 score alarmed");
        assert_eq!(snaps[0].last_score, 0.2);
        assert_eq!(snaps[1].degraded, 1);
        assert_eq!(degraded_streams(), 1);
        reset();
    }

    #[test]
    fn handles_are_shared_per_stream() {
        let _guard = lock();
        reset();
        set_enabled(true);
        let one = handle(7).unwrap();
        let two = handle(7).unwrap();
        assert!(Arc::ptr_eq(&one, &two));
        reset();
    }
}

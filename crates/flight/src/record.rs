//! Wide-event record payloads and their deterministic JSON rendering.
//!
//! Each record renders to exactly one JSON object on one line, with
//! keys in a fixed order and no whitespace, so identical decisions
//! produce byte-identical payloads — the property the export's
//! lexicographic sort turns into whole-dump byte-determinism. The
//! discriminating `"t"` key comes first so consumers can dispatch on a
//! prefix without parsing the full object.

use std::fmt::Write as _;

/// Escapes `s` into `out` as the contents of a JSON string literal
/// (the same escaping `detdiv_obs::trace` applies to event names).
pub fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    push_json_escaped(out, value);
    out.push('"');
}

/// Renders a finite float with Rust's shortest round-trip formatting
/// (deterministic for identical bits); non-finite values render as
/// `null` so the payload stays valid JSON.
fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:?}");
    } else {
        out.push_str("null");
    }
}

/// Run identity emitted once per report generation: ties every cell
/// record that follows to the corpus it was scored against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderRecord {
    /// FNV-1a fingerprint of the training stream
    /// ([`detdiv-cache`]'s `fingerprint_stream`).
    pub corpus: u64,
    /// Training stream length (the fingerprint's second identity
    /// check, mirroring `CacheKey`).
    pub training_len: usize,
}

impl HeaderRecord {
    /// Renders the one-line JSON payload.
    pub fn render(&self) -> String {
        format!(
            "{{\"t\":\"header\",\"corpus\":\"{:016x}\",\"training_len\":{}}}",
            self.corpus, self.training_len
        )
    }
}

/// One batch detection decision: a single (detector, DW, AS) cell of a
/// coverage grid, with the evidence behind its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord<'a> {
    /// Fingerprint of the training stream the detector was trained on.
    pub corpus: u64,
    /// Training stream length.
    pub training_len: usize,
    /// Detector family name (e.g. `stide`).
    pub detector: &'a str,
    /// Detector window DW.
    pub window: usize,
    /// Anomaly size AS.
    pub anomaly_size: usize,
    /// Cell verdict glyph: `D`, `W`, `B` or `U` (failed rows emit
    /// [`FailureRecord`]s instead).
    pub verdict: char,
    /// The maximal response registered within the incident span.
    pub score: f64,
    /// The detector's maximal-response floor (the alarm threshold).
    pub threshold: f64,
    /// Window-start position of the maximal response in the test
    /// stream.
    pub event_index: usize,
    /// Inclusive first window-start of the incident span.
    pub span_first: usize,
    /// Inclusive last window-start of the incident span.
    pub span_last: usize,
    /// How the trained model was obtained: `off`, `hit`, `wait` or
    /// `miss`.
    pub cache: &'static str,
    /// Supervised retries the model acquisition needed (0 in healthy
    /// runs).
    pub retries: u32,
}

impl CellRecord<'_> {
    /// Renders the one-line JSON payload.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"t\":\"cell\",\"corpus\":\"{:016x}\",\"training_len\":{},",
            self.corpus, self.training_len
        );
        push_str_field(&mut out, "detector", self.detector);
        let _ = write!(
            out,
            ",\"window\":{},\"anomaly_size\":{},\"verdict\":\"{}\",\"score\":",
            self.window, self.anomaly_size, self.verdict
        );
        push_f64(&mut out, self.score);
        out.push_str(",\"threshold\":");
        push_f64(&mut out, self.threshold);
        let _ = write!(
            out,
            ",\"event_index\":{},\"span_first\":{},\"span_last\":{},\"cache\":\"{}\",\"retries\":{}}}",
            self.event_index, self.span_first, self.span_last, self.cache, self.retries
        );
        out
    }
}

/// One streaming detection decision (or warmup absorption) from
/// `StreamEngine::push`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecord<'a> {
    /// Human label of the stream, or `""` when unlabeled.
    pub stream_label: &'a str,
    /// The pre-hashed stream id the engine routes by.
    pub stream_hash: u64,
    /// Index of the detector within the stream's bank.
    pub slot: usize,
    /// Detector name.
    pub detector: &'a str,
    /// The event's sequence number within its feed.
    pub event_index: u64,
    /// Anomaly score in `[0, 1]` (0 for warmup records).
    pub score: f64,
    /// Verdict confidence in `[0, 1]` (0 for warmup records).
    pub confidence: f64,
    /// Static reason label (`maximal-response`, `normal`, `warmup`, …).
    pub reason: &'a str,
    /// Whether the detector absorbed the event during warmup instead
    /// of scoring it.
    pub warmup: bool,
}

impl StreamRecord<'_> {
    /// Renders the one-line JSON payload.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"t\":\"stream\",");
        push_str_field(&mut out, "stream", self.stream_label);
        let _ = write!(
            out,
            ",\"stream_hash\":\"{:016x}\",\"slot\":{},",
            self.stream_hash, self.slot
        );
        push_str_field(&mut out, "detector", self.detector);
        let _ = write!(out, ",\"event_index\":{},\"score\":", self.event_index);
        push_f64(&mut out, self.score);
        out.push_str(",\"confidence\":");
        push_f64(&mut out, self.confidence);
        out.push(',');
        push_str_field(&mut out, "reason", self.reason);
        let _ = write!(out, ",\"warmup\":{}}}", self.warmup);
        out
    }
}

/// A supervised unit of work that exhausted its retry budget — the
/// provenance of a `Failed` stripe in a coverage map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord<'a> {
    /// The supervision site (e.g. `row/stide/6`).
    pub site: &'a str,
    /// Attempts made before degrading.
    pub attempts: u32,
    /// The final attempt's error rendering.
    pub error: &'a str,
}

impl FailureRecord<'_> {
    /// Renders the one-line JSON payload.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\":\"failure\",");
        push_str_field(&mut out, "site", self.site);
        let _ = write!(out, ",\"attempts\":{},", self.attempts);
        push_str_field(&mut out, "error", self.error);
        out.push('}');
        out
    }
}

/// A streaming slot permanently degraded by a caught panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedRecord<'a> {
    /// Human label of the stream, or `""` when unlabeled.
    pub stream_label: &'a str,
    /// The pre-hashed stream id.
    pub stream_hash: u64,
    /// Index of the degraded detector within the stream's bank.
    pub slot: usize,
    /// Detector name.
    pub detector: &'a str,
    /// The event that triggered the degradation.
    pub event_index: u64,
}

impl DegradedRecord<'_> {
    /// Renders the one-line JSON payload.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"t\":\"degraded\",");
        push_str_field(&mut out, "stream", self.stream_label);
        let _ = write!(
            out,
            ",\"stream_hash\":\"{:016x}\",\"slot\":{},",
            self.stream_hash, self.slot
        );
        push_str_field(&mut out, "detector", self.detector);
        let _ = write!(out, ",\"event_index\":{}}}", self.event_index);
        out
    }
}

/// One guard-subsystem transition: a ladder movement, breaker state
/// change, hibernation/rehydration, or watchdog trip.
///
/// Every numeric field renders as fixed-width hex so the export's
/// lexicographic sort groups a shard's records in chronological order
/// (`seq` is a per-shard monotonic counter), which is what lets
/// `flightcheck --guard` replay each shard's ladder and breaker chains
/// straight off the sorted dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardRecord<'a> {
    /// Shard id.
    pub shard: usize,
    /// Per-shard monotonic record counter (0-based).
    pub seq: u64,
    /// Drain cycle at which the transition took effect.
    pub cycle: u64,
    /// Transition kind: `ladder`, `breaker`, `hibernate`, `rehydrate`
    /// or `watchdog`.
    pub kind: &'a str,
    /// State before (`ladder`/`breaker`/`watchdog` kinds; `""`
    /// otherwise).
    pub from: &'a str,
    /// State after (or the cause label for hibernate/rehydrate).
    pub to: &'a str,
    /// The stream involved (hibernate/rehydrate kinds; 0 otherwise).
    pub stream_hash: u64,
}

impl GuardRecord<'_> {
    /// Renders the one-line JSON payload.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"t\":\"guard\",\"shard\":\"{:04x}\",\"seq\":\"{:016x}\",\"cycle\":\"{:016x}\",",
            self.shard, self.seq, self.cycle
        );
        push_str_field(&mut out, "kind", self.kind);
        out.push(',');
        push_str_field(&mut out, "from", self.from);
        out.push(',');
        push_str_field(&mut out, "to", self.to);
        let _ = write!(out, ",\"stream_hash\":\"{:016x}\"}}", self.stream_hash);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_renders_fixed_width_fingerprint() {
        let r = HeaderRecord {
            corpus: 0xabc,
            training_len: 60_000,
        };
        assert_eq!(
            r.render(),
            "{\"t\":\"header\",\"corpus\":\"0000000000000abc\",\"training_len\":60000}"
        );
    }

    #[test]
    fn cell_renders_every_field_in_order() {
        let r = CellRecord {
            corpus: 1,
            training_len: 10,
            detector: "stide",
            window: 6,
            anomaly_size: 4,
            verdict: 'D',
            score: 1.0,
            threshold: 1.0,
            event_index: 123,
            span_first: 120,
            span_last: 126,
            cache: "hit",
            retries: 0,
        };
        let line = r.render();
        assert!(line.starts_with("{\"t\":\"cell\","), "{line}");
        assert!(line.contains("\"verdict\":\"D\""), "{line}");
        assert!(line.contains("\"score\":1.0,\"threshold\":1.0"), "{line}");
        assert!(line.contains("\"cache\":\"hit\",\"retries\":0"), "{line}");
    }

    #[test]
    fn identical_decisions_render_identical_bytes() {
        let mk = || {
            StreamRecord {
                stream_label: "host-a",
                stream_hash: 7,
                slot: 1,
                detector: "ewma",
                event_index: 42,
                score: 0.5,
                confidence: 0.9,
                reason: "elevated-response",
                warmup: false,
            }
            .render()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn hostile_strings_are_escaped() {
        let r = FailureRecord {
            site: "row/\"evil\"\n",
            attempts: 4,
            error: "tab\there",
        };
        let line = r.render();
        assert!(line.contains("row/\\\"evil\\\"\\n"), "{line}");
        assert!(line.contains("tab\\there"), "{line}");
    }

    #[test]
    fn guard_renders_fixed_width_hex_in_sortable_order() {
        let r = GuardRecord {
            shard: 3,
            seq: 1,
            cycle: 9,
            kind: "ladder",
            from: "full",
            to: "shedding",
            stream_hash: 0,
        };
        assert_eq!(
            r.render(),
            "{\"t\":\"guard\",\"shard\":\"0003\",\"seq\":\"0000000000000001\",\"cycle\":\"0000000000000009\",\"kind\":\"ladder\",\"from\":\"full\",\"to\":\"shedding\",\"stream_hash\":\"0000000000000000\"}"
        );
        // Lexicographic order of rendered lines == (shard, seq) order,
        // the property the export sort relies on.
        let later = GuardRecord {
            seq: 2,
            ..r.clone()
        };
        let other_shard = GuardRecord {
            shard: 4,
            seq: 0,
            ..r.clone()
        };
        assert!(r.render() < later.render());
        assert!(later.render() < other_shard.render());
    }

    #[test]
    fn non_finite_scores_render_null() {
        let r = StreamRecord {
            stream_label: "",
            stream_hash: 0,
            slot: 0,
            detector: "x",
            event_index: 0,
            score: f64::NAN,
            confidence: f64::INFINITY,
            reason: "warmup",
            warmup: true,
        };
        let line = r.render();
        assert!(line.contains("\"score\":null"), "{line}");
        assert!(line.contains("\"confidence\":null"), "{line}");
    }
}

//! The audit-log recorder: per-thread rings, a bounded central sink,
//! and deterministic checksummed export.
//!
//! Same discipline as `detdiv_obs::trace`: recording is a relaxed
//! atomic load (the armed gate), a thread-local borrow, and a push —
//! no locks on the hot path. Full rings batch-flush into a central
//! `Mutex<Vec>`; the sink is capped and overflow is **counted**, never
//! blocking and never growing without bound.
//!
//! Unlike the trace recorder, records carry no timestamps and the
//! export sorts payloads lexicographically before writing, so two runs
//! of the same configuration produce byte-identical dumps regardless
//! of flush interleaving.

use std::cell::RefCell;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::blackbox;

/// Per-thread ring capacity, in records, before a batch flush to the
/// central sink.
pub const RING_CAPACITY: usize = 4096;

/// Central sink capacity, in records; records beyond this are dropped
/// (and counted) instead of growing memory without bound.
pub const SINK_CAPACITY: usize = 1_000_000;

/// Whether the recorder is armed. Checked first by every record path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Records dropped because the sink was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Records accepted since arm (or the last [`reset`]).
static RECORDED: AtomicU64 = AtomicU64::new(0);

fn sink() -> &'static Mutex<Vec<String>> {
    static SINK: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn armed_path() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

struct ThreadRing {
    records: Vec<String>,
}

impl ThreadRing {
    fn push(&mut self, record: String) {
        if self.records.capacity() == 0 {
            self.records.reserve_exact(RING_CAPACITY);
        }
        self.records.push(record);
        if self.records.len() >= RING_CAPACITY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let mut sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
        let room = SINK_CAPACITY.saturating_sub(sink.len());
        if room >= self.records.len() {
            sink.append(&mut self.records);
        } else {
            let overflow = (self.records.len() - room) as u64;
            sink.extend(self.records.drain(..).take(room));
            self.records.clear();
            DROPPED.fetch_add(overflow, Ordering::Relaxed);
        }
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = const { RefCell::new(ThreadRing { records: Vec::new() }) };
}

/// Whether the recorder is armed: one relaxed atomic load, the only
/// cost the decision paths pay when flight recording is off.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the recorder with its eventual export destination, chains the
/// crash-dump panic hook (once per process), and installs the
/// `detdiv-resil` failure observer so every supervised unit that
/// exhausts its retries leaves a `failure` record. Subsequent
/// [`record`] calls are accepted until [`disarm`].
pub fn arm(path: &str) {
    *armed_path().lock().unwrap_or_else(PoisonError::into_inner) = Some(path.to_owned());
    blackbox::install_panic_hook();
    detdiv_resil::set_failure_observer(Box::new(|site, attempts, error| {
        record(
            crate::record::FailureRecord {
                site,
                attempts,
                error,
            }
            .render(),
        );
    }));
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the recorder. Already-buffered records stay in the sink
/// until drained by [`export`] or [`reset`]; the armed path is kept so
/// a post-run export still knows its destination.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// The export path the recorder was armed with, if any.
pub fn path() -> Option<String> {
    armed_path()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// The flight output path configured in the environment
/// (`DETDIV_FLIGHT=<path>`), if any. Reading the variable does **not**
/// arm the recorder; binaries combine this with their `--flight` flag
/// and call [`arm`] themselves.
pub fn env_path() -> Option<String> {
    match std::env::var("DETDIV_FLIGHT") {
        Ok(path) if !path.trim().is_empty() => Some(path),
        _ => None,
    }
}

/// Records one rendered wide-event payload. No-op unless [`armed`].
/// The payload also lands in the crash [`blackbox`] ring, so the last
/// decisions before a failure are always recoverable.
pub fn record(payload: String) {
    if !armed() {
        return;
    }
    RECORDED.fetch_add(1, Ordering::Relaxed);
    blackbox::note(&payload);
    RING.with(|ring| ring.borrow_mut().push(payload));
}

/// Records dropped so far because the central sink was full.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Records accepted so far (including any later dropped at a flush).
pub fn recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

/// Flushes the calling thread's ring into the central sink.
///
/// **Scoped threads must call this before returning** — the same
/// TLS-destructor caveat as `detdiv_obs::trace::flush_thread`: a
/// `std::thread::scope` can observe the closure's return before the
/// thread's exit flush runs, so the `detdiv-par` workers flush
/// explicitly at the end of their closure.
pub fn flush_thread() {
    RING.with(|ring| ring.borrow_mut().flush());
}

/// Drains every buffered record out of the central sink (flushing the
/// calling thread first), leaving the sink empty. Order is flush
/// order, *not* deterministic — [`export`] sorts.
pub fn drain() -> Vec<String> {
    flush_thread();
    let mut sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *sink)
}

/// Clears the sink, the calling thread's ring, the counters, the
/// armed path, and the blackbox (test hook; also useful between
/// repeated armed runs in one process).
pub fn reset() {
    RING.with(|ring| ring.borrow_mut().records.clear());
    sink()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    DROPPED.store(0, Ordering::Relaxed);
    RECORDED.store(0, Ordering::Relaxed);
    *armed_path().lock().unwrap_or_else(PoisonError::into_inner) = None;
    blackbox::reset();
}

/// Renders drained payloads as the on-disk dump: payloads sorted
/// lexicographically, a `footer` record appended, and every line
/// checksummed in the `detdiv-resil` journal wire format.
pub(crate) fn render_dump(payloads: &mut [String]) -> String {
    payloads.sort_unstable();
    let footer = format!(
        "{{\"t\":\"footer\",\"records\":{},\"dropped\":{}}}",
        payloads.len(),
        dropped()
    );
    let mut out = String::with_capacity(payloads.iter().map(|p| p.len() + 18).sum::<usize>() + 64);
    for payload in payloads.iter().chain(std::iter::once(&footer)) {
        out.push_str(&detdiv_resil::checksum_line(payload));
        out.push('\n');
    }
    out
}

/// Drains the sink and writes the sorted, checksummed audit log to
/// `path` (crash-safely, via [`detdiv_resil::AtomicFile`]), returning
/// the number of exported records (excluding the footer line).
/// Destructive: the sink is left empty.
///
/// # Errors
///
/// Propagates the underlying file write error; `path` is untouched on
/// failure.
pub fn export(path: &str) -> io::Result<usize> {
    let mut payloads = drain();
    let text = render_dump(&mut payloads);
    // The recorder is an observer: its write must neither fail under
    // an armed chaos plan nor claim hits at the shared I/O fault site
    // (which would shift injection decisions for the run's real
    // artifacts and break the flight-on/flight-off identity the CI
    // gate `cmp`s).
    let _no_faults = detdiv_resil::suppress();
    detdiv_resil::AtomicFile::write(path, text)?;
    Ok(payloads.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StreamRecord;

    /// Arming is process-global; unit tests that toggle it serialize
    /// here.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn sample(i: u64) -> String {
        StreamRecord {
            stream_label: "unit",
            stream_hash: 1,
            slot: 0,
            detector: "ewma",
            event_index: i,
            score: 0.1,
            confidence: 1.0,
            reason: "normal",
            warmup: false,
        }
        .render()
    }

    #[test]
    fn disarmed_records_nothing() {
        let _guard = lock();
        reset();
        disarm();
        record(sample(0));
        assert!(drain().is_empty());
        assert_eq!(recorded(), 0);
    }

    #[test]
    fn armed_records_and_the_path_is_kept_after_disarm() {
        let _guard = lock();
        reset();
        arm("unit.flight");
        record(sample(1));
        record(sample(2));
        disarm();
        assert_eq!(path().as_deref(), Some("unit.flight"));
        let records = drain();
        assert_eq!(records.len(), 2);
        assert_eq!(recorded(), 2);
        reset();
    }

    #[test]
    fn dump_rendering_is_sorted_and_checksummed() {
        let _guard = lock();
        reset();
        let mut payloads = vec![sample(9), sample(1), sample(5)];
        let dump = render_dump(&mut payloads);
        // Sorted: event_index 1 before 5 before 9.
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "3 records + footer");
        assert!(lines[0].contains("\"event_index\":1"));
        assert!(lines[1].contains("\"event_index\":5"));
        assert!(lines[2].contains("\"event_index\":9"));
        assert!(lines[3].contains("\"t\":\"footer\""));
        // Every line round-trips through the journal checksum parser.
        for line in &lines {
            let (sum, payload) = line.split_at(16);
            let expect = detdiv_resil::checksum_line(payload.strip_prefix(' ').unwrap());
            assert!(expect.starts_with(sum), "checksum mismatch on {line}");
        }
    }

    #[test]
    fn sink_overflow_is_counted_not_grown() {
        let _guard = lock();
        reset();
        arm("overflow.flight");
        // Fill the sink directly to one ring below capacity, then push
        // two rings' worth through the thread ring.
        {
            let mut sink = sink().lock().unwrap();
            sink.clear();
            sink.resize(SINK_CAPACITY - RING_CAPACITY / 2, String::new());
        }
        for i in 0..RING_CAPACITY as u64 {
            record(sample(i));
        }
        flush_thread();
        disarm();
        assert!(dropped() >= RING_CAPACITY as u64 / 2, "{}", dropped());
        let sunk = sink().lock().unwrap().len();
        assert_eq!(sunk, SINK_CAPACITY);
        reset();
    }

    #[test]
    fn export_writes_a_journal_loadable_file() {
        let _guard = lock();
        reset();
        let dir = std::env::temp_dir().join(format!("detdiv-flight-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("unit.flight");
        arm(out.to_str().unwrap());
        record(sample(3));
        record(sample(1));
        disarm();
        let n = export(out.to_str().unwrap()).unwrap();
        assert_eq!(n, 2);
        let loaded = detdiv_resil::Journal::load(&out).unwrap();
        assert_eq!(loaded.len(), 3, "2 records + footer");
        assert!(loaded[0].contains("\"event_index\":1"));
        assert!(loaded[2].contains("\"t\":\"footer\""));
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }
}

//! Armed-subsystem flags for `/healthz` triage.
//!
//! `detdiv-scope`'s liveness endpoint reports which optional
//! subsystems are active in the process it is introspecting. The fault
//! and flight answers come from their own crates; the serve and
//! stream-scoring answers are plain process facts that scope and eval
//! mirror here (this crate sits below both in the dependency graph, so
//! it is the natural meeting point).

use std::sync::atomic::{AtomicBool, Ordering};

static STREAM_SCORING: AtomicBool = AtomicBool::new(false);
static SERVING: AtomicBool = AtomicBool::new(false);

/// Mirrors the evaluation layer's stream-scoring switch
/// (`regenerate --stream` / `DETDIV_STREAM`).
pub fn set_stream_scoring(on: bool) {
    STREAM_SCORING.store(on, Ordering::Relaxed);
}

/// Mirrors whether a scope server is currently serving
/// (`DETDIV_SERVE`); set and cleared by `detdiv-scope`.
pub fn set_serving(on: bool) {
    SERVING.store(on, Ordering::Relaxed);
}

/// Which optional subsystems are armed right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subsystems {
    /// A scope metrics server is live.
    pub serve: bool,
    /// Coverage rows score through the streaming adapter.
    pub stream: bool,
    /// A `detdiv-resil` fault plan is armed.
    pub fault: bool,
    /// The flight recorder is armed.
    pub flight: bool,
}

/// Snapshot of the armed-subsystem flags.
pub fn subsystems() -> Subsystems {
    Subsystems {
        serve: SERVING.load(Ordering::Relaxed),
        stream: STREAM_SCORING.load(Ordering::Relaxed),
        fault: detdiv_resil::armed(),
        flight: crate::armed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_reflect_their_setters() {
        set_stream_scoring(true);
        set_serving(true);
        let s = subsystems();
        assert!(s.serve && s.stream);
        set_stream_scoring(false);
        set_serving(false);
        let s = subsystems();
        assert!(!s.serve && !s.stream);
    }
}

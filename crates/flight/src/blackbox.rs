//! The crash flight recorder: a bounded global ring of the most recent
//! wide events, dumped atomically when something goes wrong.
//!
//! Every record accepted by the armed recorder is also noted here, in
//! a [`BLACKBOX_CAPACITY`]-bounded ring that keeps the **newest**
//! events (oldest are evicted first, like an aircraft flight
//! recorder). Three things trigger a dump to `<armed path>.crash`:
//!
//! * a **panic** anywhere in the process, via a chained panic hook
//!   ([`install_panic_hook`]) — the hook runs even for panics later
//!   caught by `catch_unwind`, so an injected chaos panic or a
//!   degrading stream slot leaves an artifact before supervision
//!   swallows it;
//! * a **stream degradation**, reported by the engine through
//!   [`dump_on_degradation`];
//! * an explicit [`dump`] call (on-demand post-mortems).
//!
//! The dump is checksummed line-by-line in the journal wire format
//! (a `crash` header carrying counter totals *and deltas since the
//! previous dump*, then the ring oldest-first) and written via
//! [`detdiv_resil::AtomicFile`], so a partial artifact can never be
//! observed. `detdiv-scope`'s `GET /flightz` serves the live ring
//! through [`tail`].

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};

/// Bounded size of the crash ring: enough context to reconstruct the
/// moments before a failure without unbounded memory.
pub const BLACKBOX_CAPACITY: usize = 256;

fn ring() -> &'static Mutex<VecDeque<String>> {
    static RING: OnceLock<Mutex<VecDeque<String>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(BLACKBOX_CAPACITY)))
}

/// Counter values at the previous dump, for the header's delta fields:
/// `(recorded, degraded_cells)`.
fn last_dump() -> &'static Mutex<(u64, u64)> {
    static LAST: OnceLock<Mutex<(u64, u64)>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new((0, 0)))
}

/// Appends one payload to the crash ring, evicting the oldest entry
/// when full. Called by the recorder for every accepted record.
pub(crate) fn note(payload: &str) {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    if ring.len() >= BLACKBOX_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(payload.to_owned());
}

/// The newest `limit` ring entries, oldest first. `detdiv-scope`'s
/// `/flightz` endpoint serves this.
pub fn tail(limit: usize) -> Vec<String> {
    let ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    let skip = ring.len().saturating_sub(limit);
    ring.iter().skip(skip).cloned().collect()
}

/// Number of events currently held in the crash ring.
pub fn len() -> usize {
    ring().lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// Clears the crash ring and the delta baseline (test hook).
pub fn reset() {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    *last_dump().lock().unwrap_or_else(PoisonError::into_inner) = (0, 0);
}

/// The crash-dump destination derived from the armed flight path
/// (`<path>.crash`), if the recorder has one.
pub fn crash_path() -> Option<String> {
    crate::recorder::path().map(|p| format!("{p}.crash"))
}

/// Renders the crash dump: a `crash` header line with counter totals
/// and deltas since the previous dump, then the ring oldest-first,
/// every line checksummed in the journal wire format.
pub fn render(reason: &str) -> String {
    let recorded = crate::recorder::recorded();
    let degraded_cells = detdiv_resil::stats().degraded_cells;
    let (delta_recorded, delta_degraded) = {
        let mut last = last_dump().lock().unwrap_or_else(PoisonError::into_inner);
        let deltas = (
            recorded.saturating_sub(last.0),
            degraded_cells.saturating_sub(last.1),
        );
        *last = (recorded, degraded_cells);
        deltas
    };
    let ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    let mut header = String::with_capacity(192);
    header.push_str("{\"t\":\"crash\",\"reason\":\"");
    crate::record::push_json_escaped(&mut header, reason);
    use std::fmt::Write as _;
    let _ = write!(
        header,
        "\",\"events\":{},\"recorded\":{recorded},\"dropped\":{},\
         \"degraded_cells\":{degraded_cells},\"degraded_streams\":{},\
         \"delta_recorded\":{delta_recorded},\"delta_degraded_cells\":{delta_degraded}}}",
        ring.len(),
        crate::recorder::dropped(),
        crate::streams::degraded_streams(),
    );
    let mut out =
        String::with_capacity(header.len() + ring.iter().map(|p| p.len() + 18).sum::<usize>() + 32);
    out.push_str(&detdiv_resil::checksum_line(&header));
    out.push('\n');
    for payload in ring.iter() {
        out.push_str(&detdiv_resil::checksum_line(payload));
        out.push('\n');
    }
    out
}

/// Dumps the crash ring to `path` atomically. Non-destructive: the
/// ring keeps recording after the dump.
///
/// # Errors
///
/// Propagates the underlying file write error.
pub fn dump(path: &str, reason: &str) -> io::Result<usize> {
    let text = render(reason);
    // The dump is a last-resort diagnostic and often runs inside the
    // panic hook: fault injection must be inert here, or an injected
    // panic at the writer's I/O site would be a double panic (abort)
    // under exactly the chaos runs the dump exists to explain.
    let _no_faults = detdiv_resil::suppress();
    detdiv_resil::AtomicFile::write(path, text)?;
    Ok(len())
}

/// Best-effort dump to the derived crash path; errors (and a missing
/// armed path) are swallowed — this runs inside panic hooks and hot
/// engine paths where failing to dump must not cascade.
fn dump_best_effort(reason: &str) {
    static IN_DUMP: AtomicBool = AtomicBool::new(false);
    if IN_DUMP.swap(true, Ordering::SeqCst) {
        // Re-entrant panic while dumping: bail rather than recurse.
        return;
    }
    if let Some(path) = crash_path() {
        let _ = dump(&path, reason);
    }
    IN_DUMP.store(false, Ordering::SeqCst);
}

/// Reports a stream-slot degradation: dumps the crash ring (when the
/// recorder is armed with a path) so every `stream/degraded` increment
/// leaves a post-mortem artifact.
pub fn dump_on_degradation() {
    dump_best_effort("stream-degraded");
}

/// Chains a panic hook (once per process) that dumps the crash ring
/// before delegating to the previously installed hook. Installed by
/// [`crate::arm`]; panics caught later by `catch_unwind` still pass
/// through the hook, so supervised chaos panics leave artifacts too.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_best_effort("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn overflow_keeps_the_newest_events_in_order() {
        let _guard = lock();
        reset();
        for i in 0..(BLACKBOX_CAPACITY + 10) {
            note(&format!("{{\"t\":\"test\",\"i\":{i}}}"));
        }
        assert_eq!(len(), BLACKBOX_CAPACITY);
        let all = tail(usize::MAX);
        // Oldest surviving entry is the 10th pushed; order preserved.
        assert_eq!(all.first().unwrap(), "{\"t\":\"test\",\"i\":10}");
        assert_eq!(
            all.last().unwrap(),
            &format!("{{\"t\":\"test\",\"i\":{}}}", BLACKBOX_CAPACITY + 9)
        );
        assert!(all
            .windows(2)
            .all(|w| w[0] < w[1] || w[0].len() < w[1].len()));
        reset();
    }

    #[test]
    fn tail_limits_from_the_newest_end() {
        let _guard = lock();
        reset();
        for i in 0..5 {
            note(&format!("e{i}"));
        }
        assert_eq!(tail(2), vec!["e3".to_owned(), "e4".to_owned()]);
        reset();
    }

    #[test]
    fn render_is_checksummed_and_ordered() {
        let _guard = lock();
        reset();
        note("{\"t\":\"test\",\"i\":0}");
        note("{\"t\":\"test\",\"i\":1}");
        let text = render("unit");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 events");
        assert!(lines[0].contains("\"t\":\"crash\""), "{}", lines[0]);
        assert!(lines[0].contains("\"reason\":\"unit\""));
        assert!(lines[1].contains("\"i\":0"));
        assert!(lines[2].contains("\"i\":1"));
        reset();
    }

    #[test]
    fn dump_writes_a_journal_loadable_artifact() {
        let _guard = lock();
        reset();
        let dir =
            std::env::temp_dir().join(format!("detdiv-flight-blackbox-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.flight.crash");
        note("{\"t\":\"test\",\"i\":7}");
        dump(path.to_str().unwrap(), "unit-dump").unwrap();
        let loaded = detdiv_resil::Journal::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded[0].contains("\"reason\":\"unit-dump\""));
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }

    #[test]
    fn header_reports_deltas_since_previous_dump() {
        let _guard = lock();
        reset();
        // First render establishes the baseline; the second must show a
        // zero delta when no records were accepted in between.
        let _ = render("first");
        let second = render("second");
        assert!(second.contains("\"delta_recorded\":0"), "{second}");
        reset();
    }
}

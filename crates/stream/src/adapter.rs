//! Streaming adapters over batch-trained models.
//!
//! Every detector family of the experiment suite scores a test stream
//! as a *per-window pure* function: `scores(test)[i]` depends only on
//! the trained state and `test[i..i + DW]` (the conformance suite pins
//! this down). [`ModelAdapter`] exploits that: it keeps the last `DW`
//! symbols in a fixed ring-less buffer and scores each full window with
//! [`TrainedModel::score_one`], which is bit-identical to the batch
//! score at the same position — streamed and batch evaluation are the
//! same numbers, not approximately the same.
//!
//! The hot path allocates nothing: the window buffer is rotated with
//! `copy_within`, the score comes from `score_one` (overridden
//! allocation-free for the closed-form families), and the reason label
//! is a `&'static str`.

use std::sync::Arc;

use detdiv_core::TrainedModel;
use detdiv_sequence::Symbol;

use crate::context::{DetectionResult, SignalContext};
use crate::detector::StreamDetector;

/// Reason label for scores at or above the model's maximal-response
/// floor.
pub const REASON_MAXIMAL: &str = "maximal-response";
/// Reason label for positive scores below the floor.
pub const REASON_ELEVATED: &str = "elevated-response";
/// Reason label for zero scores.
pub const REASON_NORMAL: &str = "normal";

/// A [`StreamDetector`] wrapping an immutable batch-trained model.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::Stide;
/// use detdiv_sequence::symbols;
/// use detdiv_stream::{ModelAdapter, SignalContext, StreamDetector};
///
/// let mut stide = Stide::new(2);
/// stide.train(&symbols(&[1, 2, 3, 1, 2, 3]));
/// let mut adapter = ModelAdapter::new(Arc::new(stide));
///
/// let mut out = Vec::new();
/// for (i, &s) in symbols(&[3, 1, 2, 1]).iter().enumerate() {
///     out.push(adapter.update(&SignalContext::from_symbol(i as u64, 0, s)));
/// }
/// assert!(out[0].is_none()); // warmup: no full window yet
/// let scores: Vec<f64> = out[1..].iter().map(|r| r.unwrap().score).collect();
/// assert_eq!(scores, vec![0.0, 0.0, 1.0]); // == batch scores()
/// ```
pub struct ModelAdapter {
    model: Arc<dyn TrainedModel>,
    floor: f64,
    window: usize,
    buf: Vec<Symbol>,
    filled: usize,
}

impl std::fmt::Debug for ModelAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelAdapter")
            .field("model", &self.model.name())
            .field("window", &self.window)
            .field("filled", &self.filled)
            .finish()
    }
}

impl ModelAdapter {
    /// Wraps `model`; the adapter's window and warmup follow the
    /// model's detector window.
    ///
    /// # Panics
    ///
    /// Panics if the model reports a zero window.
    pub fn new(model: Arc<dyn TrainedModel>) -> ModelAdapter {
        let window = model.window();
        assert!(window > 0, "model window must be positive");
        let floor = model.maximal_response_floor();
        ModelAdapter {
            model,
            floor,
            window,
            buf: Vec::with_capacity(window),
            filled: 0,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn TrainedModel> {
        &self.model
    }
}

impl StreamDetector for ModelAdapter {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn warmup_len(&self) -> usize {
        self.model.window() - 1
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        let window = self.window;
        if self.filled < window {
            self.buf.push(ctx.symbol);
            self.filled += 1;
        } else {
            // Rotate left by one in place; no allocation.
            self.buf.copy_within(1.., 0);
            self.buf[window - 1] = ctx.symbol;
        }
        if self.filled < window {
            return None;
        }
        let score = self.model.score_one(&self.buf);
        let reason = if score >= self.floor {
            REASON_MAXIMAL
        } else if score > 0.0 {
            REASON_ELEVATED
        } else {
            REASON_NORMAL
        };
        Some(DetectionResult::certain(score, reason))
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.filled = 0;
    }

    fn state_bytes(&self) -> Option<Vec<u8>> {
        // The per-stream state is exactly the window buffer: symbol
        // ids, little-endian u32 each (`filled` is its length; it never
        // exceeds the window). The trained model is shared and
        // reconstructed by the factory, never serialized.
        let mut out = Vec::with_capacity(4 * self.buf.len());
        for symbol in &self.buf {
            out.extend_from_slice(&symbol.id().to_le_bytes());
        }
        Some(out)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        if !bytes.len().is_multiple_of(4) || bytes.len() / 4 > self.window {
            self.reset();
            return false;
        }
        self.buf.clear();
        for chunk in bytes.chunks_exact(4) {
            let id = u32::from_le_bytes(chunk.try_into().unwrap());
            self.buf.push(Symbol::new(id));
        }
        self.filled = self.buf.len();
        true
    }

    fn state_bytes_cap(&self) -> usize {
        4 * self.window
    }
}

/// Streams `test` through a fresh [`ModelAdapter`] over `model` and
/// collects the emitted scores.
///
/// The result is bit-identical to `model.scores(test)` — same length
/// (`test.len() − DW + 1`, or empty when the stream is shorter than
/// one window), same values — which is what lets the evaluation
/// pipeline swap scoring modes without perturbing a single artifact
/// byte.
pub fn stream_scores(model: &Arc<dyn TrainedModel>, test: &[Symbol]) -> Vec<f64> {
    let mut adapter = ModelAdapter::new(Arc::clone(model));
    let expected = test.len().saturating_sub(model.window() - 1);
    let mut out = Vec::with_capacity(expected);
    for (i, &s) in test.iter().enumerate() {
        if let Some(r) = adapter.update(&SignalContext::from_symbol(i as u64, 0, s)) {
            out.push(r.score);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_core::SequenceAnomalyDetector;
    use detdiv_detectors::{MarkovDetector, Stide};
    use detdiv_sequence::symbols;

    fn trained_stide(window: usize) -> Arc<dyn TrainedModel> {
        let mut s = Stide::new(window);
        let mut train = Vec::new();
        for _ in 0..20 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }
        s.train(&train);
        Arc::new(s)
    }

    #[test]
    fn warmup_emits_none_then_every_event_scores() {
        let model = trained_stide(4);
        let mut adapter = ModelAdapter::new(Arc::clone(&model));
        assert_eq!(adapter.warmup_len(), 3);
        let test = symbols(&[1, 2, 3, 4, 1, 2]);
        let mut emitted = 0;
        for (i, &s) in test.iter().enumerate() {
            let r = adapter.update(&SignalContext::from_symbol(i as u64, 0, s));
            if i < adapter.warmup_len() {
                assert!(r.is_none(), "event {i} should be warmup");
            } else {
                assert!(r.is_some(), "event {i} should score");
                emitted += 1;
            }
        }
        assert_eq!(emitted, test.len() - 3);
    }

    #[test]
    fn streamed_equals_batch_bitwise() {
        let model = trained_stide(3);
        let test = symbols(&[1, 2, 3, 4, 2, 4, 1, 2, 3]);
        let batch = model.scores(&test);
        let streamed = stream_scores(&model, &test);
        assert_eq!(batch.len(), streamed.len());
        for (b, s) in batch.iter().zip(&streamed) {
            assert_eq!(b.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn short_stream_emits_nothing() {
        let model = trained_stide(5);
        assert!(stream_scores(&model, &symbols(&[1, 2])).is_empty());
        assert!(stream_scores(&model, &[]).is_empty());
    }

    #[test]
    fn reason_labels_track_the_floor() {
        let model = trained_stide(2);
        let mut adapter = ModelAdapter::new(model);
        let test = symbols(&[1, 2, 2]); // (1,2) known, (2,2) foreign
        let mut results = Vec::new();
        for (i, &s) in test.iter().enumerate() {
            if let Some(r) = adapter.update(&SignalContext::from_symbol(i as u64, 0, s)) {
                results.push(r);
            }
        }
        assert_eq!(results[0].reason, REASON_NORMAL);
        assert_eq!(results[1].reason, REASON_MAXIMAL);
        assert!(results.iter().all(|r| r.confidence == 1.0));
    }

    #[test]
    fn reset_restores_warmup() {
        let model = trained_stide(3);
        let mut adapter = ModelAdapter::new(model);
        for (i, &s) in symbols(&[1, 2, 3, 4]).iter().enumerate() {
            adapter.update(&SignalContext::from_symbol(i as u64, 0, s));
        }
        adapter.reset();
        let r = adapter.update(&SignalContext::from_symbol(0, 0, symbols(&[1])[0]));
        assert!(r.is_none(), "post-reset first event must be warmup again");
    }

    #[test]
    fn adapter_state_roundtrips_mid_stream() {
        let model = trained_stide(3);
        let test = symbols(&[1, 2, 3, 4, 2, 4, 1, 2, 3, 3, 1]);
        let full = stream_scores(&model, &test);
        // Feed half, snapshot the window buffer, restore, feed the rest.
        let mut first = ModelAdapter::new(Arc::clone(&model));
        for (i, &s) in test[..5].iter().enumerate() {
            first.update(&SignalContext::from_symbol(i as u64, 0, s));
        }
        let state = first.state_bytes().expect("adapter is snapshotable");
        let mut resumed = ModelAdapter::new(Arc::clone(&model));
        assert!(resumed.restore_state(&state));
        let mut tail = Vec::new();
        for (i, &s) in test[5..].iter().enumerate() {
            if let Some(r) = resumed.update(&SignalContext::from_symbol(5 + i as u64, 0, s)) {
                tail.push(r.score);
            }
        }
        // Events 5.. of the uninterrupted run produced full[3..] (the
        // first window completes at event 2); the resumed run must
        // reproduce them bit-for-bit.
        assert_eq!(tail.len(), full.len() - 3);
        for (a, b) in full[3..].iter().zip(&tail) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Oversized or misaligned state degrades to a cold start.
        let mut fresh = ModelAdapter::new(model);
        assert!(!fresh.restore_state(&[0u8; 5]));
        assert!(!fresh.restore_state(&[0u8; 4 * 9]));
    }

    #[test]
    fn elevated_reason_for_sub_floor_positive_scores() {
        // Markov: a rare-but-seen transition scores strictly between 0
        // and the floor... use probability complements: P(2|1) = 5/7.
        let mut det = MarkovDetector::new(2);
        det.train(&symbols(&[1, 2, 1, 2, 1, 3, 1, 2, 1, 2, 1, 3, 1, 2]));
        let model: Arc<dyn TrainedModel> = Arc::new(det);
        let mut adapter = ModelAdapter::new(model);
        adapter.update(&SignalContext::from_symbol(0, 0, symbols(&[1])[0]));
        let r = adapter
            .update(&SignalContext::from_symbol(1, 0, symbols(&[2])[0]))
            .unwrap();
        assert!(r.score > 0.0 && r.score < 1.0);
        assert_eq!(r.reason, REASON_ELEVATED);
    }
}

//! Online streaming detection for the detector-diversity suite.
//!
//! The paper's evaluation (and everything downstream of it in this
//! repository) is *batch*: train, then score a complete test stream in
//! one call. Deployment is not — events arrive one at a time, across
//! many interleaved streams, with no end in sight. This crate bridges
//! the two without forking the science:
//!
//! * [`StreamDetector`] — the push contract (`update` per event,
//!   explicit warmup via `None`, scores and confidences in `[0, 1]`,
//!   static reason labels);
//! * [`ModelAdapter`] / [`stream_scores`] — sliding-window adapters
//!   over any batch-trained [`detdiv_core::TrainedModel`], emitting
//!   scores **bit-identical** to the batch `scores()` vector (the
//!   differential suite in `tests/differential.rs` enforces this for
//!   every family × window cell of the paper grid);
//! * [`Ewma`], [`Cusum`], [`AdaptiveThreshold`], [`FadingHistogram`] —
//!   genuinely-online zero-dependency detectors with no training set at
//!   all;
//! * [`StreamEngine`] — multi-stream routing by pre-hashed id with
//!   per-slot panic isolation, degradation accounting, and per-stream
//!   snapshot/restore ([`SlotState`]) for crash-safe serving.
//!
//! Because streamed and batch scores are the same bits, the evaluation
//! pipeline can swap scoring modes (`regenerate --stream`) and produce
//! byte-identical artifacts — which is exactly what the CI differential
//! gate checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod adapter;
mod context;
mod detector;
mod engine;
mod online;

pub use adapter::{stream_scores, ModelAdapter, REASON_ELEVATED, REASON_MAXIMAL, REASON_NORMAL};
pub use context::{hash_stream_id, DetectionResult, SignalContext};
pub use detector::StreamDetector;
pub use engine::{SlotResult, SlotState, StreamEngine};
pub use online::{AdaptiveThreshold, Cusum, Ewma, FadingHistogram, DEFAULT_WARMUP};

//! The per-event input and output types of the push-based streaming API.
//!
//! A [`SignalContext`] is deliberately `Copy` and carries a *pre-hashed*
//! stream identity: the producer hashes its stream name once (with
//! [`hash_stream_id`]) when the stream is opened, and the per-event hot
//! path — [`crate::StreamDetector::update`] and
//! [`crate::StreamEngine::push`] — never touches a string or allocates.

use detdiv_sequence::Symbol;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a stream identifier to the `u64` carried by every
/// [`SignalContext`] of that stream (FNV-1a, stable across platforms
/// and runs).
///
/// Call this once per stream at open time, not per event.
///
/// # Examples
///
/// ```
/// use detdiv_stream::hash_stream_id;
///
/// let a = hash_stream_id("host-a/auditd");
/// assert_eq!(a, hash_stream_id("host-a/auditd"));
/// assert_ne!(a, hash_stream_id("host-b/auditd"));
/// ```
pub fn hash_stream_id(id: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One event pushed into a stream detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalContext {
    /// Zero-based position of this event within its stream. Producers
    /// must supply consecutive values per stream; detectors use it only
    /// for warmup accounting and decay, never for reordering.
    pub seq: u64,
    /// Pre-hashed stream identity (see [`hash_stream_id`]); the routing
    /// key of [`crate::StreamEngine`].
    pub stream_id_hash: u64,
    /// The categorical event symbol scored by the model adapters.
    pub symbol: Symbol,
    /// Numeric magnitude for the value-based online detectors (EWMA,
    /// CUSUM, adaptive threshold). Adapters and the fading histogram
    /// ignore it.
    pub value: f64,
}

impl SignalContext {
    /// An event with an explicit numeric magnitude.
    pub fn new(seq: u64, stream_id_hash: u64, symbol: Symbol, value: f64) -> SignalContext {
        SignalContext {
            seq,
            stream_id_hash,
            symbol,
            value,
        }
    }

    /// A purely categorical event: the magnitude defaults to the symbol
    /// id, which gives the value-based detectors a deterministic signal
    /// to track without the producer inventing one.
    pub fn from_symbol(seq: u64, stream_id_hash: u64, symbol: Symbol) -> SignalContext {
        SignalContext::new(seq, stream_id_hash, symbol, f64::from(symbol.id()))
    }
}

/// The verdict a [`crate::StreamDetector`] emits for one event once past
/// warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionResult {
    /// Anomaly score in `[0, 1]`; 1 is maximally anomalous. For model
    /// adapters this is bit-identical to the batch
    /// [`detdiv_core::TrainedModel::scores`] value at the same window
    /// position.
    pub score: f64,
    /// Confidence in `[0, 1]`. Adapters over trained models report 1;
    /// the online detectors ramp up from 0 as their running statistics
    /// accumulate evidence.
    pub confidence: f64,
    /// Static reason label (`&'static str` keeps the hot path
    /// allocation-free).
    pub reason: &'static str,
}

impl DetectionResult {
    /// A full-confidence result.
    pub fn certain(score: f64, reason: &'static str) -> DetectionResult {
        DetectionResult {
            score,
            confidence: 1.0,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    #[test]
    fn fnv_reference_values() {
        // FNV-1a test vectors (draft-eastlake-fnv).
        assert_eq!(hash_stream_id(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_stream_id("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_stream_id("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn from_symbol_uses_the_id_as_value() {
        let s = symbols(&[7])[0];
        let ctx = SignalContext::from_symbol(3, 9, s);
        assert_eq!(ctx.seq, 3);
        assert_eq!(ctx.stream_id_hash, 9);
        assert_eq!(ctx.value, 7.0);
    }

    #[test]
    fn certain_result_has_unit_confidence() {
        let r = DetectionResult::certain(0.25, "test");
        assert_eq!(r.confidence, 1.0);
        assert_eq!(r.score, 0.25);
        assert_eq!(r.reason, "test");
    }
}

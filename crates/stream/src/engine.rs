//! The multi-stream engine: routing, per-slot panic isolation, and
//! degradation accounting.
//!
//! A [`StreamEngine`] owns one *bank* of [`StreamDetector`]s per
//! distinct stream id (built lazily by the factory the engine was
//! constructed with) and routes each pushed [`SignalContext`] to its
//! stream's bank by the pre-hashed id — interleaved multi-stream feeds
//! keep every stream's warmup and window state independent, exactly as
//! if each stream were fed alone.
//!
//! A panicking detector must not take down its siblings or the process:
//! each slot's `update` runs under `catch_unwind`, a panic permanently
//! degrades that one slot (subsequent events skip it), and the engine
//! counts degradations for the caller to surface. When a
//! [`detdiv_resil`] fault plan is armed, every update passes the
//! `stream/update` fault site first, so chaos runs exercise exactly
//! this isolation path.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::context::{DetectionResult, SignalContext};
use crate::detector::StreamDetector;

/// One detector verdict routed back to the caller by
/// [`StreamEngine::push`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotResult {
    /// Index of the emitting detector within its stream's bank (banks
    /// are built by one factory, so the index identifies the detector
    /// across streams).
    pub slot: usize,
    /// The verdict.
    pub result: DetectionResult,
}

struct Slot {
    detector: Box<dyn StreamDetector>,
    degraded: bool,
}

/// One slot's captured state in a stream snapshot: the degraded flag
/// plus the detector's serialized per-stream state (`None` when the
/// detector is not snapshotable — that slot restarts from warmup on
/// [`StreamEngine::restore_stream`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotState {
    /// Whether the slot had been permanently degraded by a caught
    /// panic when the snapshot was taken.
    pub degraded: bool,
    /// [`StreamDetector::state_bytes`] at snapshot time.
    pub state: Option<Vec<u8>>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("detector", &self.detector.name())
            .field("degraded", &self.degraded)
            .finish()
    }
}

/// One stream's bank plus its cached introspection handle. The handle
/// is resolved once (when the registry is enabled), so the per-event
/// hot path updates atomics without ever touching the registry lock.
struct StreamEntry {
    slots: Vec<Slot>,
    stats: Option<std::sync::Arc<detdiv_flight::streams::StreamStats>>,
}

/// A push-based engine fanning each event out to a per-stream bank of
/// detectors.
///
/// # Examples
///
/// ```
/// use detdiv_stream::{hash_stream_id, Ewma, SignalContext, StreamDetector, StreamEngine};
/// use detdiv_sequence::Symbol;
///
/// let mut engine = StreamEngine::new(|| {
///     vec![Box::new(Ewma::new(0.1, 4)) as Box<dyn StreamDetector>]
/// });
/// let stream = hash_stream_id("host-a");
/// let mut out = Vec::new();
/// for i in 0..8 {
///     let ctx = SignalContext::new(i, stream, Symbol::new(0), 5.0);
///     engine.push(&ctx, &mut out);
/// }
/// assert_eq!(out.len(), 4); // events 0..=3 were warmup; 4.. score
/// assert_eq!(engine.stream_count(), 1);
/// ```
pub struct StreamEngine<F>
where
    F: FnMut() -> Vec<Box<dyn StreamDetector>>,
{
    factory: F,
    streams: HashMap<u64, StreamEntry>,
    events: u64,
    emitted: u64,
    degraded: u64,
}

impl<F> std::fmt::Debug for StreamEngine<F>
where
    F: FnMut() -> Vec<Box<dyn StreamDetector>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEngine")
            .field("streams", &self.streams.len())
            .field("events", &self.events)
            .field("emitted", &self.emitted)
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl<F> StreamEngine<F>
where
    F: FnMut() -> Vec<Box<dyn StreamDetector>>,
{
    /// Creates an engine whose per-stream banks are built by `factory`
    /// on first contact with each stream id.
    pub fn new(factory: F) -> StreamEngine<F> {
        StreamEngine {
            factory,
            streams: HashMap::new(),
            events: 0,
            emitted: 0,
            degraded: 0,
        }
    }

    /// Routes one event to its stream's bank, appending every emitted
    /// verdict to `out` (which is *not* cleared — callers own the
    /// buffer so the steady-state hot path performs no allocation).
    ///
    /// A slot whose detector panics is degraded: the panic is caught,
    /// counted, and the slot skips all subsequent events. `push` itself
    /// never panics on detector failure.
    pub fn push(&mut self, ctx: &SignalContext, out: &mut Vec<SlotResult>) {
        self.events += 1;
        let entry = self
            .streams
            .entry(ctx.stream_id_hash)
            .or_insert_with(|| StreamEntry {
                slots: (self.factory)()
                    .into_iter()
                    .map(|detector| Slot {
                        detector,
                        degraded: false,
                    })
                    .collect(),
                stats: detdiv_flight::streams::handle(ctx.stream_id_hash),
            });
        // The registry can be enabled after a stream's first contact
        // (scope starting mid-run); re-resolve lazily, but only when
        // enabled — the disarmed path stays atomic-load cheap.
        if entry.stats.is_none() && detdiv_flight::streams::enabled() {
            entry.stats = detdiv_flight::streams::handle(ctx.stream_id_hash);
        }
        if let Some(stats) = &entry.stats {
            stats.on_event(ctx.seq);
        }
        let flight = detdiv_flight::armed();
        let label = if flight {
            entry
                .stats
                .as_ref()
                .map(|s| s.label_string())
                .unwrap_or_default()
        } else {
            String::new()
        };
        let mut newly_degraded = 0u64;
        for (slot_index, slot) in entry.slots.iter_mut().enumerate() {
            if slot.degraded {
                continue;
            }
            let update = catch_unwind(AssertUnwindSafe(|| {
                if detdiv_resil::armed() {
                    detdiv_resil::point("stream/update");
                }
                slot.detector.update(ctx)
            }));
            match update {
                Ok(Some(result)) => {
                    self.emitted += 1;
                    if let Some(stats) = &entry.stats {
                        stats.on_emit(result.score);
                    }
                    if flight {
                        detdiv_flight::record(
                            detdiv_flight::StreamRecord {
                                stream_label: &label,
                                stream_hash: ctx.stream_id_hash,
                                slot: slot_index,
                                detector: slot.detector.name(),
                                event_index: ctx.seq,
                                score: result.score,
                                confidence: result.confidence,
                                reason: result.reason,
                                warmup: false,
                            }
                            .render(),
                        );
                    }
                    out.push(SlotResult {
                        slot: slot_index,
                        result,
                    });
                }
                Ok(None) => {
                    // Warmup absorption is a decision too: the audit
                    // log shows *why* no verdict was emitted.
                    if flight {
                        detdiv_flight::record(
                            detdiv_flight::StreamRecord {
                                stream_label: &label,
                                stream_hash: ctx.stream_id_hash,
                                slot: slot_index,
                                detector: slot.detector.name(),
                                event_index: ctx.seq,
                                score: 0.0,
                                confidence: 0.0,
                                reason: "warmup",
                                warmup: true,
                            }
                            .render(),
                        );
                    }
                }
                Err(_) => {
                    slot.degraded = true;
                    newly_degraded += 1;
                    if let Some(stats) = &entry.stats {
                        stats.on_degraded();
                    }
                    if flight {
                        detdiv_flight::record(
                            detdiv_flight::DegradedRecord {
                                stream_label: &label,
                                stream_hash: ctx.stream_id_hash,
                                slot: slot_index,
                                detector: slot.detector.name(),
                                event_index: ctx.seq,
                            }
                            .render(),
                        );
                    }
                }
            }
        }
        if newly_degraded > 0 {
            self.degraded += newly_degraded;
            if detdiv_obs::telemetry_enabled() {
                detdiv_obs::incr_counter("stream/degraded", newly_degraded);
            }
            // Every degradation leaves a post-mortem artifact: dump the
            // crash ring (no-op unless the flight recorder is armed
            // with a path). The panic hook already dumped once at the
            // panic itself; this second dump also captures the
            // `degraded` record emitted above.
            detdiv_flight::blackbox::dump_on_degradation();
        }
    }

    /// Number of distinct streams seen so far.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Total events pushed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total verdicts emitted across all slots.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of slots permanently degraded by a caught panic.
    pub fn degraded_slots(&self) -> u64 {
        self.degraded
    }

    /// Forgets a stream's bank (its detectors are dropped); returns
    /// whether the stream existed.
    pub fn close_stream(&mut self, stream_id_hash: u64) -> bool {
        self.streams.remove(&stream_id_hash).is_some()
    }

    /// Every stream id seen so far, ascending — the deterministic
    /// iteration order snapshotting callers need.
    pub fn stream_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.streams.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Captures one stream's per-slot state for a snapshot: each
    /// slot's degraded flag plus its detector's
    /// [`StreamDetector::state_bytes`] (which is `None` for
    /// non-snapshotable detectors — such slots restart from warmup on
    /// restore). `None` when the stream is unknown.
    pub fn snapshot_stream(&self, stream_id_hash: u64) -> Option<Vec<SlotState>> {
        let entry = self.streams.get(&stream_id_hash)?;
        Some(
            entry
                .slots
                .iter()
                .map(|slot| SlotState {
                    degraded: slot.degraded,
                    state: slot.detector.state_bytes(),
                })
                .collect(),
        )
    }

    /// Rebuilds one stream from snapshot state: constructs a fresh
    /// bank via the factory, restores each slot's detector state and
    /// degraded flag, and installs the entry (replacing any existing
    /// one). Returns `false` — leaving the engine unchanged — when the
    /// snapshot's slot count does not match the factory's bank (the
    /// bank composition changed since the snapshot was taken).
    ///
    /// A slot whose `state` is `None`, or whose bytes the detector
    /// rejects, starts cold (from warmup): recovery degrades to a
    /// restart for that slot, never to wrong state.
    pub fn restore_stream(&mut self, stream_id_hash: u64, slots: &[SlotState]) -> bool {
        let mut bank: Vec<Slot> = (self.factory)()
            .into_iter()
            .map(|detector| Slot {
                detector,
                degraded: false,
            })
            .collect();
        if bank.len() != slots.len() {
            return false;
        }
        let mut restored_degraded = 0u64;
        for (slot, saved) in bank.iter_mut().zip(slots) {
            slot.degraded = saved.degraded;
            if saved.degraded {
                restored_degraded += 1;
            }
            if let Some(bytes) = &saved.state {
                // A rejected payload leaves the detector reset: the
                // restore_state contract.
                let _ = slot.detector.restore_state(bytes);
            }
        }
        if let Some(previous) = self.streams.insert(
            stream_id_hash,
            StreamEntry {
                slots: bank,
                stats: detdiv_flight::streams::handle(stream_id_hash),
            },
        ) {
            self.degraded -= previous.slots.iter().filter(|s| s.degraded).count() as u64;
        }
        self.degraded += restored_degraded;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::hash_stream_id;
    use crate::online::Ewma;
    use detdiv_sequence::Symbol;

    /// A detector that panics on a chosen event value.
    #[derive(Debug)]
    struct Grenade {
        trigger: f64,
    }

    impl StreamDetector for Grenade {
        fn name(&self) -> &str {
            "grenade"
        }

        fn warmup_len(&self) -> usize {
            0
        }

        fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
            assert!(ctx.value != self.trigger, "boom");
            Some(DetectionResult::certain(0.0, "calm"))
        }

        fn reset(&mut self) {}
    }

    fn bank() -> Vec<Box<dyn StreamDetector>> {
        vec![
            Box::new(Grenade { trigger: 13.0 }),
            Box::new(Ewma::new(0.1, 2)),
        ]
    }

    #[test]
    fn interleaved_streams_warm_up_independently() {
        let mut engine =
            StreamEngine::new(|| vec![Box::new(Ewma::new(0.1, 3)) as Box<dyn StreamDetector>]);
        let a = hash_stream_id("a");
        let b = hash_stream_id("b");
        let mut out = Vec::new();
        // Interleave: a gets 4 events (1 verdict), b gets 2 (0 verdicts).
        for i in 0..4u64 {
            engine.push(&SignalContext::new(i, a, Symbol::new(0), 1.0), &mut out);
            if i < 2 {
                engine.push(&SignalContext::new(i, b, Symbol::new(0), 1.0), &mut out);
            }
        }
        assert_eq!(engine.stream_count(), 2);
        assert_eq!(out.len(), 1, "only stream a is past warmup");
        assert_eq!(engine.events(), 6);
        assert_eq!(engine.emitted(), 1);
    }

    #[test]
    fn a_panicking_slot_degrades_alone_and_stays_down() {
        let mut engine = StreamEngine::new(bank);
        let s = hash_stream_id("s");
        let mut out = Vec::new();
        for (i, v) in [1.0, 2.0, 13.0, 4.0, 5.0].iter().enumerate() {
            engine.push(
                &SignalContext::new(i as u64, s, Symbol::new(0), *v),
                &mut out,
            );
        }
        assert_eq!(engine.degraded_slots(), 1);
        // The grenade emitted for events 0..=1, then died; the EWMA
        // (warmup 2) emitted for events 2..=4 regardless.
        let grenade_emissions = out.iter().filter(|r| r.slot == 0).count();
        let ewma_emissions = out.iter().filter(|r| r.slot == 1).count();
        assert_eq!(grenade_emissions, 2);
        assert_eq!(ewma_emissions, 3);
        // The same trigger value again must not re-panic (slot skipped).
        engine.push(&SignalContext::new(5, s, Symbol::new(0), 13.0), &mut out);
        assert_eq!(engine.degraded_slots(), 1);
    }

    #[test]
    fn degradation_is_per_stream() {
        let mut engine = StreamEngine::new(bank);
        let mut out = Vec::new();
        engine.push(
            &SignalContext::new(0, hash_stream_id("dies"), Symbol::new(0), 13.0),
            &mut out,
        );
        engine.push(
            &SignalContext::new(0, hash_stream_id("lives"), Symbol::new(0), 1.0),
            &mut out,
        );
        assert_eq!(engine.degraded_slots(), 1);
        // The healthy stream's grenade slot still emits.
        assert!(out.iter().any(|r| r.slot == 0));
    }

    #[test]
    fn enabled_registry_tracks_events_alarms_and_degradations() {
        let mut engine = StreamEngine::new(bank);
        detdiv_flight::streams::set_enabled(true);
        let s = hash_stream_id("engine-registry");
        detdiv_flight::streams::label(s, "engine-registry");
        let mut out = Vec::new();
        // Grenade emits score 0.0 for events 0..=1, dies at 13.0; the
        // EWMA (warmup 2) emits thereafter.
        for (i, v) in [1.0, 2.0, 13.0, 4.0].iter().enumerate() {
            engine.push(
                &SignalContext::new(i as u64, s, Symbol::new(0), *v),
                &mut out,
            );
        }
        let snap = detdiv_flight::streams::snapshots()
            .into_iter()
            .find(|snap| snap.stream_hash == s)
            .expect("registry entry for the engine's stream");
        assert_eq!(snap.label, "engine-registry");
        assert_eq!(snap.events, 4);
        assert_eq!(snap.emitted, engine.emitted());
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.last_event_index, 3);
        assert!(detdiv_flight::streams::degraded_streams() >= 1);
        detdiv_flight::streams::set_enabled(false);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let make =
            || StreamEngine::new(|| vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]);
        let s = hash_stream_id("resumable");
        let values: Vec<f64> = (0..40).map(|i| ((i * 13) % 11) as f64).collect();
        // Uninterrupted reference run.
        let mut reference = make();
        let mut expected = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            reference.push(
                &SignalContext::new(i as u64, s, Symbol::new(0), v),
                &mut expected,
            );
        }
        // Run half, snapshot, restore into a fresh engine, run the rest.
        let mut first = make();
        let mut out = Vec::new();
        for (i, &v) in values[..20].iter().enumerate() {
            first.push(
                &SignalContext::new(i as u64, s, Symbol::new(0), v),
                &mut out,
            );
        }
        assert_eq!(first.stream_ids(), vec![s]);
        let saved = first.snapshot_stream(s).expect("known stream snapshots");
        assert!(first.snapshot_stream(s ^ 1).is_none());
        let mut resumed = make();
        assert!(resumed.restore_stream(s, &saved));
        let mut tail = Vec::new();
        for (i, &v) in values[20..].iter().enumerate() {
            resumed.push(
                &SignalContext::new(20 + i as u64, s, Symbol::new(0), v),
                &mut tail,
            );
        }
        let expected_tail: Vec<_> = expected[expected.len() - tail.len()..].to_vec();
        assert_eq!(tail.len(), expected_tail.len());
        for (a, b) in expected_tail.iter().zip(&tail) {
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.result.score.to_bits(), b.result.score.to_bits());
        }
        // A shape-mismatched snapshot is refused, not half-applied.
        let mut other = StreamEngine::new(bank);
        assert!(!other.restore_stream(s, &saved));
        assert_eq!(other.stream_count(), 0);
    }

    #[test]
    fn restore_stream_carries_degraded_flags() {
        let mut engine = StreamEngine::new(bank);
        let s = hash_stream_id("wounded");
        let mut out = Vec::new();
        engine.push(&SignalContext::new(0, s, Symbol::new(0), 13.0), &mut out);
        assert_eq!(engine.degraded_slots(), 1);
        let saved = engine.snapshot_stream(s).unwrap();
        assert!(saved[0].degraded && !saved[1].degraded);
        let mut recovered = StreamEngine::new(bank);
        assert!(recovered.restore_stream(s, &saved));
        assert_eq!(recovered.degraded_slots(), 1, "flag survives recovery");
        // The degraded slot stays down: its trigger value cannot re-panic.
        recovered.push(&SignalContext::new(1, s, Symbol::new(0), 13.0), &mut out);
        assert_eq!(recovered.degraded_slots(), 1);
        // Restoring over an existing entry replaces, not double-counts.
        assert!(recovered.restore_stream(s, &saved));
        assert_eq!(recovered.degraded_slots(), 1);
    }

    #[test]
    fn close_stream_drops_state() {
        let mut engine = StreamEngine::new(bank);
        let s = hash_stream_id("s");
        let mut out = Vec::new();
        engine.push(&SignalContext::new(0, s, Symbol::new(0), 1.0), &mut out);
        assert!(engine.close_stream(s));
        assert!(!engine.close_stream(s));
        assert_eq!(engine.stream_count(), 0);
    }
}

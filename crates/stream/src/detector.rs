//! The push contract every streaming detector implements.

use crate::context::{DetectionResult, SignalContext};

/// A detector consuming one event at a time.
///
/// Implementations are owned by a single stream (the
/// [`crate::StreamEngine`] builds one bank per stream id), so `update`
/// takes `&mut self`; `Send` lets banks migrate across worker threads.
///
/// ## Warmup
///
/// Warmup is explicit: `update` returns `None` for exactly the first
/// [`warmup_len`](StreamDetector::warmup_len) events of a stream and
/// `Some` for every event after. Callers therefore never see a score
/// invented from insufficient state — a sliding-window adapter stays
/// silent until its first full window, an EWMA until its running mean
/// means something.
///
/// ## Score contract
///
/// Every emitted [`DetectionResult`] carries `score` and `confidence`
/// in `[0, 1]` and a static `reason`. Determinism is part of the
/// contract: feeding the same event sequence into a freshly constructed
/// detector must reproduce results bit-identically (the differential
/// suite enforces this for every implementation shipped here).
pub trait StreamDetector: Send {
    /// Stable name of the detector (used in telemetry and reports).
    fn name(&self) -> &str;

    /// Number of leading events consumed silently before the first
    /// `Some` verdict.
    fn warmup_len(&self) -> usize;

    /// Consumes one event; returns a verdict once warm.
    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult>;

    /// Forgets all per-stream state, returning the detector to its
    /// pre-warmup condition (trained model state, if any, is retained).
    fn reset(&mut self);

    /// Serializes the detector's *per-stream* state (never trained
    /// model weights — those are reconstructed by the bank factory on
    /// restore). `None` means the detector is not snapshotable; a
    /// snapshotting caller must treat such a slot as starting from
    /// warmup after recovery.
    ///
    /// The contract, enforced by the serve recovery suite: feeding
    /// events `0..k`, calling `state_bytes`, constructing a fresh
    /// detector from the same factory, restoring, and feeding events
    /// `k..n` must reproduce the uninterrupted run's verdicts
    /// bit-identically.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by
    /// [`state_bytes`](StreamDetector::state_bytes) into a freshly
    /// constructed detector. Returns `false` (leaving the detector
    /// reset) when the bytes do not parse — a snapshot from a
    /// different detector or version is degraded to a cold start, not
    /// a panic.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }

    /// Upper bound on the size of the buffer
    /// [`state_bytes`](StreamDetector::state_bytes) would return, in
    /// bytes. The guard layer sums this across resident detectors to
    /// estimate memory pressure without serializing anything, so the
    /// bound must be cheap and deterministic. The default (64) covers
    /// small fixed-size states and non-snapshotable detectors.
    fn state_bytes_cap(&self) -> usize {
        64
    }
}

impl<D: StreamDetector + ?Sized> StreamDetector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn warmup_len(&self) -> usize {
        (**self).warmup_len()
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        (**self).update(ctx)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn state_bytes(&self) -> Option<Vec<u8>> {
        (**self).state_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        (**self).restore_state(bytes)
    }

    fn state_bytes_cap(&self) -> usize {
        (**self).state_bytes_cap()
    }
}

//! Genuinely-online zero-dependency detectors.
//!
//! The model adapters of [`crate::adapter`] replay a batch-trained model
//! over a sliding window; the detectors here never see a training set at
//! all. They maintain running statistics that adapt as the stream
//! evolves, covering the classic change-detection repertoire:
//!
//! * [`Ewma`] — exponentially weighted moving average and variance with
//!   a squashed z-score response;
//! * [`Cusum`] — two-sided cumulative sums (Page 1954), with an
//!   *enhanced* mode that re-estimates the reference level online;
//! * [`AdaptiveThreshold`] — a decaying envelope that flags values
//!   escaping their own recent range;
//! * [`FadingHistogram`] — exponentially faded symbol frequencies
//!   scoring each event by its recent rarity.
//!
//! All state is plain `f64` arithmetic updated in a fixed order, so
//! replaying a stream reproduces every verdict bit-identically. Scores
//! and confidences stay in `[0, 1]`; confidence ramps linearly while the
//! running statistics accumulate their first `2 × warmup` observations.

use crate::context::{DetectionResult, SignalContext};
use crate::detector::StreamDetector;

/// Default warmup (events consumed before the first verdict).
pub const DEFAULT_WARMUP: usize = 16;

fn ramp_confidence(observed: u64, warmup: usize) -> f64 {
    let full_at = (2 * warmup.max(1)) as f64;
    (observed as f64 / full_at).min(1.0)
}

/// Squashes a non-negative deviation into `[0, 1)`: `d² / (1 + d²)`.
///
/// Monotone, smooth, and exactly 0 at zero deviation; a 3σ excursion
/// maps to 0.9.
fn squash(d: f64) -> f64 {
    let d2 = d * d;
    d2 / (1.0 + d2)
}

/// EWMA mean/variance tracker scoring each value by its squashed
/// z-score against the running statistics.
///
/// # Examples
///
/// ```
/// use detdiv_stream::{Ewma, SignalContext, StreamDetector};
/// use detdiv_sequence::Symbol;
///
/// let mut det = Ewma::new(0.1, 8);
/// let sym = Symbol::new(0);
/// let mut last = None;
/// for i in 0..100 {
///     let v = if i == 99 { 80.0 } else { 5.0 };
///     last = det.update(&SignalContext::new(i, 0, sym, v));
/// }
/// assert!(last.unwrap().score > 0.9); // the spike stands out
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    warmup: usize,
    mean: f64,
    var: f64,
    observed: u64,
}

impl Ewma {
    /// Creates a tracker with smoothing factor `alpha` and the given
    /// warmup length.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is within `(0, 1]`.
    pub fn new(alpha: f64, warmup: usize) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            warmup,
            mean: 0.0,
            var: 0.0,
            observed: 0,
        }
    }

    /// The running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl StreamDetector for Ewma {
    fn name(&self) -> &str {
        "ewma"
    }

    fn warmup_len(&self) -> usize {
        self.warmup
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        let x = ctx.value;
        // Score against the PRE-update statistics — folding the event in
        // first would let a spike partially absorb its own surprise —
        // then update with West's incremental EWM mean/variance.
        let z = if self.observed == 0 {
            self.mean = x;
            self.var = 0.0;
            0.0
        } else {
            let sigma = self.var.sqrt();
            let dev = (x - self.mean).abs();
            let z = if sigma > 0.0 {
                dev / sigma
            } else if dev == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            let delta = x - self.mean;
            self.mean += self.alpha * delta;
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta);
            z
        };
        self.observed += 1;
        if (self.observed as usize) <= self.warmup {
            return None;
        }
        let score = if z.is_finite() { squash(z / 3.0) } else { 1.0 };
        Some(DetectionResult {
            score,
            confidence: ramp_confidence(self.observed, self.warmup),
            reason: "ewma-deviation",
        })
    }

    fn reset(&mut self) {
        self.mean = 0.0;
        self.var = 0.0;
        self.observed = 0;
    }

    fn state_bytes(&self) -> Option<Vec<u8>> {
        // mean, var (f64 bits) then observed, all little-endian: the
        // running statistics are the entire per-stream state.
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.mean.to_bits().to_le_bytes());
        out.extend_from_slice(&self.var.to_bits().to_le_bytes());
        out.extend_from_slice(&self.observed.to_le_bytes());
        Some(out)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Ok(fixed) = <[u8; 24]>::try_from(bytes) else {
            self.reset();
            return false;
        };
        let word = |i: usize| u64::from_le_bytes(fixed[i * 8..(i + 1) * 8].try_into().unwrap());
        self.mean = f64::from_bits(word(0));
        self.var = f64::from_bits(word(1));
        self.observed = word(2);
        true
    }

    fn state_bytes_cap(&self) -> usize {
        24
    }
}

/// Two-sided CUSUM change detector (Page 1954).
///
/// Tracks `g⁺ = max(0, g⁺ + (x − μ − k))` and
/// `g⁻ = max(0, g⁻ − (x − μ + k))` against a reference level `μ`; the
/// score is `max(g⁺, g⁻) / h` clamped to 1, so crossing the decision
/// interval `h` is a maximal response.
///
/// In *enhanced* mode (the default constructor), the reference level is
/// re-estimated online with an EWMA of slack-free observations — the
/// adaptive-reference variant often called enhanced CUSUM — so the
/// detector survives slow drifts that would saturate a fixed-reference
/// CUSUM.
#[derive(Debug, Clone)]
pub struct Cusum {
    k: f64,
    h: f64,
    adapt_alpha: Option<f64>,
    warmup: usize,
    reference: f64,
    g_pos: f64,
    g_neg: f64,
    observed: u64,
}

impl Cusum {
    /// Enhanced CUSUM: slack `k`, decision interval `h`, reference level
    /// adapted online with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `h > 0`, `k ≥ 0` and `alpha` is within `(0, 1]`.
    pub fn enhanced(k: f64, h: f64, alpha: f64, warmup: usize) -> Cusum {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        let mut c = Cusum::fixed(0.0, k, h, warmup);
        c.adapt_alpha = Some(alpha);
        c
    }

    /// Classic CUSUM with a fixed reference level.
    ///
    /// # Panics
    ///
    /// Panics unless `h > 0` and `k ≥ 0`.
    pub fn fixed(reference: f64, k: f64, h: f64, warmup: usize) -> Cusum {
        assert!(h > 0.0, "decision interval must be positive");
        assert!(k >= 0.0, "slack must be non-negative");
        Cusum {
            k,
            h,
            adapt_alpha: None,
            warmup,
            reference,
            g_pos: 0.0,
            g_neg: 0.0,
            observed: 0,
        }
    }

    /// The current reference level.
    pub fn reference(&self) -> f64 {
        self.reference
    }
}

impl StreamDetector for Cusum {
    fn name(&self) -> &str {
        if self.adapt_alpha.is_some() {
            "cusum-enhanced"
        } else {
            "cusum"
        }
    }

    fn warmup_len(&self) -> usize {
        self.warmup
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        let x = ctx.value;
        if let Some(alpha) = self.adapt_alpha {
            if self.observed == 0 {
                self.reference = x;
            } else {
                self.reference += alpha * (x - self.reference);
            }
        }
        let dev = x - self.reference;
        self.g_pos = (self.g_pos + dev - self.k).max(0.0);
        self.g_neg = (self.g_neg - dev - self.k).max(0.0);
        self.observed += 1;
        if (self.observed as usize) <= self.warmup {
            return None;
        }
        let g = self.g_pos.max(self.g_neg);
        Some(DetectionResult {
            score: (g / self.h).min(1.0),
            confidence: ramp_confidence(self.observed, self.warmup),
            reason: if self.g_pos >= self.g_neg {
                "cusum-upward-shift"
            } else {
                "cusum-downward-shift"
            },
        })
    }

    fn reset(&mut self) {
        self.g_pos = 0.0;
        self.g_neg = 0.0;
        self.observed = 0;
        if self.adapt_alpha.is_some() {
            self.reference = 0.0;
        }
    }
}

/// Adaptive-threshold envelope: flags values escaping a decaying
/// min/max band of their own recent history.
///
/// The band contracts geometrically toward the running mean at rate
/// `decay` per event and expands instantly to admit observed values;
/// the score is the squashed relative overshoot outside the band.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    decay: f64,
    warmup: usize,
    lo: f64,
    hi: f64,
    mean: f64,
    observed: u64,
}

impl AdaptiveThreshold {
    /// Creates an envelope with per-event contraction rate `decay`.
    ///
    /// # Panics
    ///
    /// Panics unless `decay` is within `[0, 1)`.
    pub fn new(decay: f64, warmup: usize) -> AdaptiveThreshold {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        AdaptiveThreshold {
            decay,
            warmup,
            lo: 0.0,
            hi: 0.0,
            mean: 0.0,
            observed: 0,
        }
    }

    /// The current envelope as `(low, high)`.
    pub fn band(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

impl StreamDetector for AdaptiveThreshold {
    fn name(&self) -> &str {
        "adaptive-threshold"
    }

    fn warmup_len(&self) -> usize {
        self.warmup
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        let x = ctx.value;
        if self.observed == 0 {
            self.lo = x;
            self.hi = x;
            self.mean = x;
        } else {
            self.mean += 0.05 * (x - self.mean);
            // Contract toward the mean, then admit the new value.
            self.lo += self.decay * (self.mean - self.lo);
            self.hi += self.decay * (self.mean - self.hi);
        }
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE);
        let overshoot = if x > self.hi {
            (x - self.hi) / width
        } else if x < self.lo {
            (self.lo - x) / width
        } else {
            0.0
        };
        self.lo = self.lo.min(x);
        self.hi = self.hi.max(x);
        self.observed += 1;
        if (self.observed as usize) <= self.warmup {
            return None;
        }
        Some(DetectionResult {
            score: squash(overshoot),
            confidence: ramp_confidence(self.observed, self.warmup),
            reason: "threshold-escape",
        })
    }

    fn reset(&mut self) {
        self.lo = 0.0;
        self.hi = 0.0;
        self.mean = 0.0;
        self.observed = 0;
    }
}

/// Exponentially faded symbol histogram scoring each event by recent
/// rarity.
///
/// Per-symbol masses decay by `lambda` per event, applied *lazily*: a
/// bin stores its mass and the event index at which that mass was
/// current, and pays `lambda^Δ` only when touched — the hot path is
/// O(1) regardless of alphabet size. The score for symbol `s` arriving
/// at total faded mass `M` is `1 − mass(s)/M`, so symbols the stream
/// has recently favoured score low and novel or faded-out symbols score
/// high.
#[derive(Debug, Clone)]
pub struct FadingHistogram {
    lambda: f64,
    warmup: usize,
    bins: Vec<(f64, u64)>, // (mass, as-of event index), indexed by symbol id
    total: f64,
    observed: u64,
}

impl FadingHistogram {
    /// Creates a histogram with per-event fading factor `lambda`
    /// (mass surviving each event; 1 disables fading).
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is within `(0, 1]`.
    pub fn new(lambda: f64, warmup: usize) -> FadingHistogram {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        FadingHistogram {
            lambda,
            warmup,
            bins: Vec::new(),
            total: 0.0,
            observed: 0,
        }
    }

    fn faded(&self, mass: f64, as_of: u64) -> f64 {
        let age = self.observed - as_of;
        if age == 0 || mass == 0.0 {
            mass
        } else {
            // powi is exact-deterministic for the u32 ages we see.
            mass * self.lambda.powi(age.min(u64::from(u32::MAX)) as i32)
        }
    }
}

impl StreamDetector for FadingHistogram {
    fn name(&self) -> &str {
        "fading-histogram"
    }

    fn warmup_len(&self) -> usize {
        self.warmup
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        let idx = ctx.symbol.index();
        if idx >= self.bins.len() {
            // Growth happens once per newly seen symbol id, not per event.
            self.bins.resize(idx + 1, (0.0, 0));
        }
        // Fade the total and this bin up to the current event, then add.
        self.total = self.total * self.lambda + 1.0;
        let (mass, as_of) = self.bins[idx];
        let current = self.faded(mass, as_of) * self.lambda + 1.0;
        self.observed += 1;
        self.bins[idx] = (current, self.observed);
        if (self.observed as usize) <= self.warmup {
            return None;
        }
        let score = 1.0 - (current / self.total).clamp(0.0, 1.0);
        Some(DetectionResult {
            score,
            confidence: ramp_confidence(self.observed, self.warmup),
            reason: "symbol-rarity",
        })
    }

    fn reset(&mut self) {
        self.bins.clear();
        self.total = 0.0;
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::Symbol;

    fn feed(det: &mut dyn StreamDetector, values: &[f64]) -> Vec<Option<DetectionResult>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| det.update(&SignalContext::new(i as u64, 0, Symbol::new(0), v)))
            .collect()
    }

    fn feed_symbols(det: &mut dyn StreamDetector, ids: &[u32]) -> Vec<Option<DetectionResult>> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| det.update(&SignalContext::from_symbol(i as u64, 0, Symbol::new(id))))
            .collect()
    }

    fn assert_contract(results: &[Option<DetectionResult>], warmup: usize) {
        for (i, r) in results.iter().enumerate() {
            if i < warmup {
                assert!(r.is_none(), "event {i} within warmup must be None");
            } else {
                let r = r.expect("event past warmup must score");
                assert!((0.0..=1.0).contains(&r.score), "score {} at {i}", r.score);
                assert!(
                    (0.0..=1.0).contains(&r.confidence),
                    "confidence {} at {i}",
                    r.confidence
                );
                assert!(!r.reason.is_empty());
            }
        }
    }

    #[test]
    fn ewma_flags_a_spike_and_forgives_steady_state() {
        let mut det = Ewma::new(0.2, 8);
        let mut values = vec![10.0; 60];
        values[50] = 500.0;
        let results = feed(&mut det, &values);
        assert_contract(&results, 8);
        assert!(results[50].unwrap().score > 0.9, "spike must stand out");
        assert!(results[40].unwrap().score < 0.1, "steady state is normal");
    }

    #[test]
    fn ewma_is_deterministic_on_replay() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 23) as f64).collect();
        let a = feed(&mut Ewma::new(0.1, 4), &values);
        let b = feed(&mut Ewma::new(0.1, 4), &values);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.score.to_bits(), y.score.to_bits()),
                (None, None) => {}
                _ => panic!("emission pattern diverged"),
            }
        }
    }

    #[test]
    fn cusum_detects_a_sustained_shift() {
        let mut det = Cusum::fixed(5.0, 0.5, 8.0, 4);
        let mut values = vec![5.0; 40];
        for v in values.iter_mut().skip(20) {
            *v = 7.0; // persistent +2 shift, accumulates at 1.5/event
        }
        let results = feed(&mut det, &values);
        assert_contract(&results, 4);
        assert!(results[10].unwrap().score < 0.2);
        assert_eq!(results[39].unwrap().score, 1.0, "shift crosses h");
        assert_eq!(results[39].unwrap().reason, "cusum-upward-shift");
    }

    #[test]
    fn enhanced_cusum_absorbs_slow_drift() {
        // Drift of +0.01/event: the adaptive reference follows, the
        // fixed reference saturates.
        let values: Vec<f64> = (0..600).map(|i| 5.0 + 0.01 * i as f64).collect();
        let enhanced = feed(&mut Cusum::enhanced(0.5, 8.0, 0.1, 4), &values);
        let fixed = feed(&mut Cusum::fixed(5.0, 0.5, 8.0, 4), &values);
        assert!(enhanced[599].unwrap().score < 0.2, "drift absorbed");
        assert_eq!(fixed[599].unwrap().score, 1.0, "fixed reference saturates");
        assert_eq!(Cusum::enhanced(0.5, 8.0, 0.1, 4).name(), "cusum-enhanced");
    }

    #[test]
    fn adaptive_threshold_flags_escapes_only() {
        let mut det = AdaptiveThreshold::new(0.05, 8);
        let mut values: Vec<f64> = (0..80).map(|i| 10.0 + ((i % 5) as f64)).collect();
        values[70] = 1_000.0;
        let results = feed(&mut det, &values);
        assert_contract(&results, 8);
        // i = 63 is mid-cycle (value 13), comfortably inside the band.
        assert!(results[63].unwrap().score == 0.0, "in-band is normal");
        assert!(results[70].unwrap().score > 0.9, "escape flagged");
    }

    #[test]
    fn fading_histogram_scores_novelty_high_and_refavours() {
        let mut det = FadingHistogram::new(0.95, 8);
        let mut ids = vec![0u32; 50];
        ids.extend([1u32; 1]); // novel symbol at event 50
        ids.extend([0u32; 10]);
        let results = feed_symbols(&mut det, &ids);
        assert_contract(&results, 8);
        let novel = results[50].unwrap().score;
        let usual = results[49].unwrap().score;
        assert!(novel > 0.9, "novel symbol is rare: {novel}");
        assert!(usual < 0.2, "dominant symbol is common: {usual}");
    }

    #[test]
    fn fading_histogram_lazy_decay_matches_replay() {
        // Alternate two symbols with a long gap; replay must be
        // bit-identical (lazy decay is order-insensitive bookkeeping).
        let ids: Vec<u32> = (0..300).map(|i| u32::from(i % 7 == 0)).collect();
        let a = feed_symbols(&mut FadingHistogram::new(0.9, 4), &ids);
        let b = feed_symbols(&mut FadingHistogram::new(0.9, 4), &ids);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.score.to_bits(), y.score.to_bits()),
                (None, None) => {}
                _ => panic!("emission pattern diverged"),
            }
        }
    }

    #[test]
    fn confidence_ramps_to_one() {
        let mut det = Ewma::new(0.1, 4);
        let values = vec![1.0; 20];
        let results = feed(&mut det, &values);
        let early = results[4].unwrap().confidence;
        let late = results[19].unwrap().confidence;
        assert!(early < 1.0);
        assert_eq!(late, 1.0);
        assert!(results
            .iter()
            .flatten()
            .map(|r| r.confidence)
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0] <= w[1]));
    }

    #[test]
    fn reset_restores_initial_state() {
        let values: Vec<f64> = (0..50).map(|i| (i % 9) as f64).collect();
        let mut det = Cusum::enhanced(0.5, 8.0, 0.1, 4);
        let first = feed(&mut det, &values);
        det.reset();
        let second = feed(&mut det, &values);
        for (x, y) in first.iter().zip(&second) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.score.to_bits(), y.score.to_bits()),
                (None, None) => {}
                _ => panic!("emission pattern diverged after reset"),
            }
        }
    }

    #[test]
    fn ewma_state_roundtrips_mid_stream() {
        let values: Vec<f64> = (0..120).map(|i| ((i * 31) % 17) as f64).collect();
        let mut uninterrupted = Ewma::new(0.15, 6);
        let full = feed(&mut uninterrupted, &values);
        // Run to the midpoint, snapshot, restore into a fresh tracker.
        let mut first_half = Ewma::new(0.15, 6);
        feed(&mut first_half, &values[..60]);
        let state = first_half.state_bytes().expect("ewma is snapshotable");
        let mut resumed = Ewma::new(0.15, 6);
        assert!(resumed.restore_state(&state));
        let tail = feed(&mut resumed, &values[60..]);
        for (x, y) in full[60..].iter().zip(&tail) {
            match (x, y) {
                (Some(x), Some(y)) => assert_eq!(x.score.to_bits(), y.score.to_bits()),
                (None, None) => {}
                _ => panic!("emission pattern diverged after restore"),
            }
        }
        // Garbage bytes degrade to a reset, never a panic.
        let mut fresh = Ewma::new(0.15, 6);
        assert!(!fresh.restore_state(b"short"));
        assert_eq!(fresh.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0, 4);
    }

    #[test]
    #[should_panic(expected = "decision interval")]
    fn cusum_rejects_bad_interval() {
        let _ = Cusum::fixed(0.0, 0.5, 0.0, 4);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn histogram_rejects_bad_lambda() {
        let _ = FadingHistogram::new(1.5, 4);
    }
}

//! Batch ↔ stream differential suite.
//!
//! The streaming adapter's whole value rests on one claim: pushing a
//! test stream event-by-event through [`ModelAdapter`] yields **the
//! same bits** as the one-shot batch
//! [`detdiv_core::TrainedModel::scores`] call — for every detector
//! family of the experiment suite, at every detector window, on any
//! input. This suite enforces the claim three ways:
//!
//! 1. deterministically, over the synthesized corpus grid (every
//!    family × window × anomaly-size cell; the full paper grid runs in
//!    release mode under the `streamcheck` bench binary and the CI
//!    stream gate);
//! 2. structurally, at the warmup boundary (exactly `DW − 1` silent
//!    events; empty and shorter-than-window streams emit nothing);
//! 3. property-based, over random training/test pairs including empty,
//!    short, and duplicate-symbol-run streams, and over interleaved
//!    multi-stream feeds through the [`StreamEngine`].

use std::sync::Arc;

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_detectors::{
    HmmConfig, HmmDetector, LaneBrodley, MarkovDetector, NeuralConfig, NeuralDetector,
    RipperDetector, Stide, TStide,
};
use detdiv_sequence::{symbols, Symbol};
use detdiv_stream::{
    hash_stream_id, stream_scores, ModelAdapter, SignalContext, StreamDetector, StreamEngine,
};
use detdiv_synth::{Corpus, SynthesisConfig};
use proptest::prelude::*;

/// The seven families of the experiment suite, hyperparameters turned
/// down exactly as in the core conformance suite so the iterative
/// substrates stay fast without changing the contract under test.
fn families(window: usize) -> Vec<Box<dyn SequenceAnomalyDetector>> {
    vec![
        Box::new(Stide::new(window)),
        Box::new(TStide::new(window)),
        Box::new(MarkovDetector::new(window)),
        Box::new(HmmDetector::with_config(
            window,
            HmmConfig {
                states: Some(4),
                max_iters: 4,
                max_training_events: 1_000,
                ..HmmConfig::default()
            },
        )),
        Box::new(NeuralDetector::with_config(
            window,
            NeuralConfig {
                hidden: 4,
                epochs: 4,
                min_count: 2,
                ..NeuralConfig::default()
            },
        )),
        Box::new(LaneBrodley::new(window)),
        Box::new(RipperDetector::new(window)),
    ]
}

fn trained_families(training: &[Symbol], window: usize) -> Vec<Arc<dyn TrainedModel>> {
    families(window)
        .into_iter()
        .map(|mut det| {
            det.train(training);
            Arc::new(det) as Arc<dyn TrainedModel>
        })
        .collect()
}

fn corpus(seed: u64) -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(4_000)
        .anomaly_sizes(2..=3)
        .windows(2..=6)
        .background_len(128)
        .plant_repeats(3)
        .seed(seed)
        .build()
        .expect("valid differential config");
    Corpus::synthesize(&config).expect("synthesis succeeds")
}

fn assert_bit_identical(family: &str, context: &str, batch: &[f64], streamed: &[f64]) {
    assert_eq!(
        batch.len(),
        streamed.len(),
        "{family}: {context}: emission count diverges from batch score count"
    );
    for (i, (b, s)) in batch.iter().zip(streamed).enumerate() {
        assert!(
            b.to_bits() == s.to_bits(),
            "{family}: {context}: scores diverge at window {i}: batch {b} vs streamed {s}"
        );
    }
}

/// Every family × window × anomaly-size cell of the reduced grid:
/// streamed scores are bit-identical to batch scores.
#[test]
fn streamed_equals_batch_across_the_grid() {
    let corpus = corpus(41);
    let config = corpus.config();
    for window in config.windows() {
        for model in trained_families(corpus.training(), window) {
            for anomaly_size in config.anomaly_sizes() {
                let case = corpus.case(anomaly_size, window).expect("synthesized case");
                let test: &[Symbol] = detdiv_core::LabeledCase::test_stream(&case);
                let batch = model.scores(test);
                let streamed = stream_scores(&model, test);
                assert_bit_identical(
                    model.name(),
                    &format!("DW={window} AS={anomaly_size}"),
                    &batch,
                    &streamed,
                );
            }
        }
    }
}

/// The warmup boundary is exact for every family: `DW − 1` silent
/// events, a verdict on event `DW`, and one verdict per event after.
#[test]
fn warmup_boundary_is_exact() {
    let corpus = corpus(43);
    for window in [2usize, 4, 6] {
        for model in trained_families(corpus.training(), window) {
            let name = model.name().to_owned();
            let mut adapter = ModelAdapter::new(Arc::clone(&model));
            assert_eq!(adapter.warmup_len(), window - 1, "{name}");
            let test = corpus.training()[..window + 3].to_vec();
            for (i, &s) in test.iter().enumerate() {
                let r = adapter.update(&SignalContext::from_symbol(i as u64, 0, s));
                if i < window - 1 {
                    assert!(r.is_none(), "{name}: event {i} must be silent warmup");
                } else {
                    let r = r.unwrap_or_else(|| panic!("{name}: event {i} must emit"));
                    assert!(
                        (0.0..=1.0).contains(&r.score),
                        "{name}: score {} out of range",
                        r.score
                    );
                }
            }
        }
    }
}

/// Empty and shorter-than-window streams emit nothing, matching the
/// batch contract of an empty scores vector.
#[test]
fn empty_and_short_streams_emit_nothing() {
    let corpus = corpus(47);
    for model in trained_families(corpus.training(), 5) {
        let name = model.name().to_owned();
        assert!(stream_scores(&model, &[]).is_empty(), "{name}: empty");
        assert!(
            stream_scores(&model, &corpus.training()[..4]).is_empty(),
            "{name}: shorter than one window"
        );
        assert!(model.scores(&corpus.training()[..4]).is_empty());
    }
}

/// Interleaved multi-stream feeds through the engine keep every
/// stream's window state independent: each stream's emitted scores are
/// bit-identical to scoring that stream alone in batch.
#[test]
fn interleaved_streams_match_batch_per_stream() {
    let corpus = corpus(53);
    let window = 3;
    let models = trained_families(corpus.training(), window);
    let case_a = corpus.case(2, window).expect("case AS=2");
    let case_b = corpus.case(3, window).expect("case AS=3");
    let stream_a: &[Symbol] = detdiv_core::LabeledCase::test_stream(&case_a);
    let stream_b: &[Symbol] = detdiv_core::LabeledCase::test_stream(&case_b);

    let mut engine = StreamEngine::new(|| {
        models
            .iter()
            .map(|m| Box::new(ModelAdapter::new(Arc::clone(m))) as Box<dyn StreamDetector>)
            .collect()
    });
    let id_a = hash_stream_id("stream-a");
    let id_b = hash_stream_id("stream-b");

    // Interleave with an uneven cadence (two of A, one of B).
    let mut collected_a: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    let mut collected_b: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    let mut out = Vec::new();
    let mut ia = 0usize;
    let mut ib = 0usize;
    while ia < stream_a.len() || ib < stream_b.len() {
        for _ in 0..2 {
            if ia < stream_a.len() {
                out.clear();
                engine.push(
                    &SignalContext::from_symbol(ia as u64, id_a, stream_a[ia]),
                    &mut out,
                );
                for r in &out {
                    collected_a[r.slot].push(r.result.score);
                }
                ia += 1;
            }
        }
        if ib < stream_b.len() {
            out.clear();
            engine.push(
                &SignalContext::from_symbol(ib as u64, id_b, stream_b[ib]),
                &mut out,
            );
            for r in &out {
                collected_b[r.slot].push(r.result.score);
            }
            ib += 1;
        }
    }

    assert_eq!(engine.stream_count(), 2);
    assert_eq!(engine.degraded_slots(), 0);
    for (slot, model) in models.iter().enumerate() {
        assert_bit_identical(
            model.name(),
            "interleaved stream a",
            &model.scores(stream_a),
            &collected_a[slot],
        );
        assert_bit_identical(
            model.name(),
            "interleaved stream b",
            &model.scores(stream_b),
            &collected_b[slot],
        );
    }
}

proptest! {
    // Training the iterative substrates dominates runtime; a handful of
    // randomized cases already sweeps alphabets, lengths and window
    // geometries well beyond the deterministic grid above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random training/test pairs — including empty, shorter-than-window
    /// and duplicate-symbol-run test streams (the tiny alphabet makes
    /// long runs of one symbol common) — stream bit-identically to
    /// batch for all seven families.
    #[test]
    fn random_streams_are_bit_identical(
        window in 2usize..=5,
        training in prop::collection::vec(0u32..4, 200..600),
        test in prop::collection::vec(0u32..4, 0..60),
        run_symbol in 0u32..4,
        run_len in 0usize..30,
    ) {
        let training = symbols(&training);
        // Append a duplicate-symbol run so pathological repetition is
        // exercised on every case, not just when the generator happens
        // to produce one.
        let mut test = symbols(&test);
        test.extend(std::iter::repeat_n(Symbol::new(run_symbol), run_len));
        for model in trained_families(&training, window) {
            let batch = model.scores(&test);
            let streamed = stream_scores(&model, &test);
            prop_assert_eq!(
                batch.len(),
                streamed.len(),
                "{}: emission count diverges", model.name()
            );
            for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
                prop_assert!(
                    b.to_bits() == s.to_bits(),
                    "{}: window {}: batch {} vs streamed {}",
                    model.name(), i, b, s
                );
            }
        }
    }
}

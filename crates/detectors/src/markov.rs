//! The Markov-based detector (Jha, Tan & Maxion 2001; Teng et al. 1990).
//!
//! "The Markov-based anomaly detector employs the sequential ordering of
//! events and conditional probabilities in its detection approach. For
//! every fixed-length sequence ... the detector calculates the
//! probability that the [next] element will follow. ... a score between 0
//! and 1 ... where 1 indicates highly improbable and 0 indicates normal
//! (very probable)." (§5.2.)
//!
//! A window of size DW conditions on its first DW − 1 elements and scores
//! the DW-th; the smallest workable window is therefore 2 (§6).
//!
//! ## Maximal-response semantics
//!
//! The detector's response to a *foreign* transition (zero conditional
//! probability, or an unseen context) is exactly 1. Its response to a
//! *rare* transition is `1 − p` with `0 < p < r` where `r` is the
//! rare-sequence threshold (0.5 % in the paper). The paper's Figure 4
//! credits the Markov detector with detecting minimal foreign sequences
//! composed of rare subsequences across the whole (AS, DW) grid — which
//! requires counting those rare-transition responses as maximal. This
//! implementation therefore reports a maximal-response floor of `1 − r`;
//! [`MarkovDetector::strict`] restores the literal `score == 1` rule for
//! the ablation documented in `DESIGN.md` §2.3.

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_markov::{ConditionalModel, Prediction};
use detdiv_sequence::{Symbol, DEFAULT_RARE_THRESHOLD};

/// The Markov-based anomaly detector.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::MarkovDetector;
/// use detdiv_sequence::symbols;
///
/// let mut det = MarkovDetector::new(2);
/// det.train(&symbols(&[1, 2, 3, 1, 2, 3, 1, 2, 3]));
/// // (1 -> 2) is certain; (2 -> 1) never occurs.
/// let scores = det.scores(&symbols(&[1, 2, 1]));
/// assert_eq!(scores, vec![0.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovDetector {
    window: usize,
    rare_threshold: f64,
    model: Option<ConditionalModel>,
}

impl MarkovDetector {
    /// Creates an untrained detector with window `window` and the
    /// paper's 0.5 % rare-sequence threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`: the Markov assumption needs at least one
    /// context element and one predicted element.
    pub fn new(window: usize) -> Self {
        Self::with_rare_threshold(window, DEFAULT_RARE_THRESHOLD)
    }

    /// Creates a detector whose maximal-response floor is `1 − r` for the
    /// given rare-sequence threshold `r`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or `r` is not within `[0, 1)`.
    pub fn with_rare_threshold(window: usize, rare_threshold: f64) -> Self {
        assert!(
            window >= 2,
            "the Markov detector needs a window of at least 2"
        );
        assert!(
            (0.0..1.0).contains(&rare_threshold),
            "rare threshold must be in [0, 1)"
        );
        MarkovDetector {
            window,
            rare_threshold,
            model: None,
        }
    }

    /// Creates a detector under *strict* semantics: only responses of
    /// exactly 1 (zero-probability transitions) count as maximal.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn strict(window: usize) -> Self {
        Self::with_rare_threshold(window, 0.0)
    }

    /// The rare-sequence threshold determining the maximal-response
    /// floor.
    pub fn rare_threshold(&self) -> f64 {
        self.rare_threshold
    }

    /// The trained conditional model, if any.
    pub fn model(&self) -> Option<&ConditionalModel> {
        self.model.as_ref()
    }
}

impl TrainedModel for MarkovDetector {
    fn name(&self) -> &str {
        "markov"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        let Some(model) = &self.model else {
            // Untrained: everything is maximally anomalous.
            return vec![1.0; test.len() - self.window + 1];
        };
        test.windows(self.window)
            .map(|w| {
                let context = &w[..self.window - 1];
                let next = w[self.window - 1];
                match model.predict(context, next) {
                    Prediction::UnseenContext => 1.0,
                    Prediction::Known(p) => 1.0 - p,
                }
            })
            .collect()
    }

    fn score_one(&self, window: &[Symbol]) -> f64 {
        // Allocation-free streaming form of the batch closure above.
        if window.len() != self.window {
            return 1.0;
        }
        let Some(model) = &self.model else {
            return 1.0;
        };
        let context = &window[..self.window - 1];
        let next = window[self.window - 1];
        match model.predict(context, next) {
            Prediction::UnseenContext => 1.0,
            Prediction::Known(p) => 1.0 - p,
        }
    }

    fn maximal_response_floor(&self) -> f64 {
        1.0 - self.rare_threshold
    }

    fn approx_bytes(&self) -> usize {
        // One (context n-gram, next symbol, count) record per observed
        // transition, plus map bookkeeping.
        let per_entry = (self.window - 1) * std::mem::size_of::<Symbol>()
            + std::mem::size_of::<Symbol>()
            + std::mem::size_of::<u64>()
            + 48;
        self.model
            .as_ref()
            .map_or(0, |m| m.iter_counts().count() * per_entry)
    }
}

impl SequenceAnomalyDetector for MarkovDetector {
    fn train(&mut self, training: &[Symbol]) {
        self.model = ConditionalModel::estimate(training, self.window - 1).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_with_rare(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..reps {
            v.extend(symbols(&[1, 2, 3, 4]));
        }
        // One rare excursion 2 -> 4 -> resumes cycle from 4.
        v.extend(symbols(&[1, 2, 4, 1, 2, 3, 4]));
        for _ in 0..reps {
            v.extend(symbols(&[1, 2, 3, 4]));
        }
        v
    }

    #[test]
    fn certain_transitions_score_zero() {
        let mut det = MarkovDetector::new(2);
        let mut train = Vec::new();
        for _ in 0..100 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }
        det.train(&train);
        let scores = det.scores(&symbols(&[1, 2, 3, 4, 1]));
        assert!(scores.iter().all(|&s| s < 1e-9), "{scores:?}");
    }

    #[test]
    fn foreign_transition_scores_exactly_one() {
        let mut det = MarkovDetector::new(2);
        det.train(&cycle_with_rare(100));
        // 3 -> 2 never occurs.
        let scores = det.scores(&symbols(&[3, 2]));
        assert_eq!(scores, vec![1.0]);
    }

    #[test]
    fn rare_transition_scores_near_one() {
        let mut det = MarkovDetector::new(2);
        det.train(&cycle_with_rare(200));
        // 2 -> 4 occurred once among many 2 -> 3.
        let scores = det.scores(&symbols(&[2, 4]));
        assert_eq!(scores.len(), 1);
        assert!(scores[0] > det.maximal_response_floor(), "{}", scores[0]);
        assert!(scores[0] < 1.0);
    }

    #[test]
    fn unseen_context_is_maximal() {
        let mut det = MarkovDetector::new(3);
        det.train(&cycle_with_rare(50));
        // Context (4,3) never occurs.
        let scores = det.scores(&symbols(&[4, 3, 1]));
        assert_eq!(scores, vec![1.0]);
    }

    #[test]
    fn strict_floor_is_one() {
        let det = MarkovDetector::strict(2);
        assert_eq!(det.maximal_response_floor(), 1.0);
        let det = MarkovDetector::new(2);
        assert!((det.maximal_response_floor() - 0.995).abs() < 1e-12);
        let det = MarkovDetector::with_rare_threshold(2, 0.01);
        assert!((det.maximal_response_floor() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn untrained_detector_is_alarmed_by_everything() {
        let det = MarkovDetector::new(2);
        assert_eq!(det.scores(&symbols(&[1, 2, 3])), vec![1.0, 1.0]);
    }

    #[test]
    fn window_metadata() {
        let det = MarkovDetector::new(4);
        assert_eq!(det.name(), "markov");
        assert_eq!(det.window(), 4);
        assert_eq!(det.min_window(), 2);
        assert!(det.model().is_none());
    }

    #[test]
    #[should_panic(expected = "window of at least 2")]
    fn window_one_rejected() {
        let _ = MarkovDetector::new(1);
    }

    #[test]
    #[should_panic(expected = "rare threshold")]
    fn bad_threshold_rejected() {
        let _ = MarkovDetector::with_rare_threshold(2, 1.0);
    }

    #[test]
    fn short_test_stream_yields_no_scores() {
        let mut det = MarkovDetector::new(3);
        det.train(&cycle_with_rare(10));
        assert!(det.scores(&symbols(&[1, 2])).is_empty());
    }

    #[test]
    fn scores_are_probability_complements() {
        // Context 1 -> next 2 with probability 2/3, next 3 with 1/3.
        let mut det = MarkovDetector::new(2);
        det.train(&symbols(&[1, 2, 1, 2, 1, 3, 1, 2, 1, 2, 1, 3, 1, 2]));
        // P(2|1) = 5/7, P(3|1) = 2/7.
        let s12 = det.scores(&symbols(&[1, 2]))[0];
        let s13 = det.scores(&symbols(&[1, 3]))[0];
        assert!((s12 - (1.0 - 5.0 / 7.0)).abs() < 1e-12);
        assert!((s13 - (1.0 - 2.0 / 7.0)).abs() < 1e-12);
    }
}

//! The diverse sequence-based anomaly detectors of Tan & Maxion
//! (DSN 2005).
//!
//! All detectors share the paper's three-component shape (§4.2): a normal
//! model acquired by sliding a fixed-length window over training data, a
//! **similarity metric** — the sole axis of diversity in the study — and
//! a thresholding mechanism. They implement
//! [`detdiv_core::SequenceAnomalyDetector`] and are interchangeable in
//! the evaluation framework.
//!
//! | Detector | Similarity metric | Responds to |
//! |---|---|---|
//! | [`Stide`] | exact sequence match | foreign sequences only |
//! | [`MarkovDetector`] | conditional probability of the next element | foreign and rare sequences |
//! | [`NeuralDetector`] | feed-forward approximation of those conditionals | foreign and rare sequences (parameter-sensitive) |
//! | [`LaneBrodley`] | adjacency-weighted positional similarity | (blind to MFS anomalies) |
//!
//! Extensions beyond the paper's four: [`TStide`] (Stide with a frequency
//! threshold, Warrender et al. 1999), [`StideLfc`] (Stide with the
//! locality frame count the paper deliberately sets aside) [`HmmDetector`] (the hidden-Markov data model of the same study) and
//! [`RipperDetector`] (its rule-induction data model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod hmm;
mod lane_brodley;
mod markov;
mod neural;
mod ripper;
mod stide;
mod tstide;

pub use hmm::{HmmConfig, HmmDetector};
pub use lane_brodley::{lane_brodley_sim_max, lane_brodley_similarity, LaneBrodley};
pub use markov::MarkovDetector;
pub use neural::{NeuralConfig, NeuralDetector};
pub use ripper::{RipperConfig, RipperDetector};
pub use stide::{Stide, StideLfc};
pub use tstide::TStide;

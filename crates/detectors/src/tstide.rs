//! t-stide — Stide with a frequency threshold (Warrender et al. 1999).
//!
//! The paper contrasts detectors that can respond to *rare* sequences
//! (Markov, neural network) with those that cannot (Stide, L&B), and
//! cites Warrender et al.'s "stide with frequency threshold" as the
//! canonical rare-sequence-aware variant of Stide. t-stide is included
//! here as an extension baseline: it treats both foreign sequences and
//! sequences rarer than a threshold as anomalous, sitting between Stide
//! and the Markov detector in the diversity space.

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_sequence::{NgramCounter, Symbol, DEFAULT_RARE_THRESHOLD};

/// The t-stide detector: foreign *or rare* fixed-length sequences are
/// anomalous.
///
/// Responses: a foreign window scores 1; a window with relative training
/// frequency `f` scores `1 − f`, which exceeds the maximal-response
/// floor `1 − r` exactly when the window is rare (`f < r`).
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::TStide;
/// use detdiv_sequence::symbols;
///
/// let mut train = Vec::new();
/// for _ in 0..300 { train.extend(symbols(&[1, 2, 3, 4])); }
/// train.extend(symbols(&[2, 4])); // one rare bigram
/// for _ in 0..300 { train.extend(symbols(&[1, 2, 3, 4])); }
///
/// let mut det = TStide::new(2);
/// det.train(&train);
/// let common = det.scores(&symbols(&[1, 2]))[0];
/// let rare = det.scores(&symbols(&[2, 4]))[0];
/// let foreign = det.scores(&symbols(&[1, 3]))[0];
/// assert!(common < det.maximal_response_floor());
/// assert!(rare >= det.maximal_response_floor());
/// assert_eq!(foreign, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TStide {
    window: usize,
    rare_threshold: f64,
    db: NgramCounter,
}

impl TStide {
    /// Creates an untrained t-stide with the paper's 0.5 % rarity
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        Self::with_rare_threshold(window, DEFAULT_RARE_THRESHOLD)
    }

    /// Creates a t-stide with rarity threshold `r`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `r` is not within `(0, 1)`.
    pub fn with_rare_threshold(window: usize, rare_threshold: f64) -> Self {
        assert!(window > 0, "detector window must be positive");
        assert!(
            rare_threshold > 0.0 && rare_threshold < 1.0,
            "rare threshold must be in (0, 1)"
        );
        TStide {
            window,
            rare_threshold,
            db: NgramCounter::new(window),
        }
    }

    /// The rarity threshold.
    pub fn rare_threshold(&self) -> f64 {
        self.rare_threshold
    }
}

impl TrainedModel for TStide {
    fn name(&self) -> &str {
        "t-stide"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        test.windows(self.window)
            .map(|w| 1.0 - self.db.relative_frequency(w))
            .collect()
    }

    fn score_one(&self, window: &[Symbol]) -> f64 {
        // Allocation-free streaming form of the batch closure above.
        if window.len() != self.window {
            return 1.0;
        }
        1.0 - self.db.relative_frequency(window)
    }

    fn maximal_response_floor(&self) -> f64 {
        1.0 - self.rare_threshold
    }

    fn approx_bytes(&self) -> usize {
        // One (n-gram, count) record per distinct window, plus map
        // bookkeeping.
        self.db.iter().count()
            * (self.window * std::mem::size_of::<Symbol>() + std::mem::size_of::<u64>() + 48)
    }
}

impl SequenceAnomalyDetector for TStide {
    fn train(&mut self, training: &[Symbol]) {
        self.db = NgramCounter::from_stream(training, self.window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn train_data() -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..500 {
            v.extend(symbols(&[1, 2, 3, 4]));
        }
        v.extend(symbols(&[2, 4]));
        for _ in 0..500 {
            v.extend(symbols(&[1, 2, 3, 4]));
        }
        v
    }

    #[test]
    fn foreign_scores_one() {
        let mut det = TStide::new(2);
        det.train(&train_data());
        assert_eq!(det.scores(&symbols(&[1, 3])), vec![1.0]);
    }

    #[test]
    fn rare_exceeds_floor_common_does_not() {
        let mut det = TStide::new(2);
        det.train(&train_data());
        let rare = det.scores(&symbols(&[2, 4]))[0];
        let common = det.scores(&symbols(&[1, 2]))[0];
        assert!(rare >= det.maximal_response_floor() && rare < 1.0);
        assert!(common < det.maximal_response_floor());
    }

    #[test]
    fn floor_tracks_threshold() {
        let det = TStide::with_rare_threshold(2, 0.01);
        assert!((det.maximal_response_floor() - 0.99).abs() < 1e-12);
        assert_eq!(det.rare_threshold(), 0.01);
    }

    #[test]
    fn stide_coverage_is_subset_of_tstide() {
        // Anything Stide flags (foreign, score 1.0) t-stide also flags.
        use crate::Stide;
        let train = train_data();
        let mut stide = Stide::new(2);
        let mut tstide = TStide::new(2);
        stide.train(&train);
        tstide.train(&train);
        let test = symbols(&[1, 2, 4, 2, 3, 4, 1]);
        let s = stide.scores(&test);
        let t = tstide.scores(&test);
        for (i, (&ss, &ts)) in s.iter().zip(&t).enumerate() {
            if ss >= 1.0 {
                assert!(ts >= tstide.maximal_response_floor(), "position {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rare threshold")]
    fn bad_threshold_rejected() {
        let _ = TStide::with_rare_threshold(2, 0.0);
    }

    #[test]
    fn trait_metadata() {
        let det = TStide::new(3);
        assert_eq!(det.name(), "t-stide");
        assert_eq!(det.window(), 3);
    }
}
